//! Fault injection and the device-health plane.
//!
//! An `(N, c, 1)` declustering tolerates any `c − 1` device failures with
//! zero data loss ([`fqos_decluster::retrieval::degraded`]), and the online
//! engine must keep its per-interval guarantee through them: a failed
//! device may never stall a worker queue or silently blow a deadline.
//!
//! The [`FaultPlane`] is the engine's shared view of device health, driven
//! by three sources:
//!
//! * a scripted [`FaultSchedule`] of `fail` / `recover` (fail-stop) and
//!   `slow` / `restore` (fail-slow) events, fixed at server construction
//!   (deterministic — the test harness and `fqos serve --fault-schedule`
//!   replay these),
//! * live injections ([`crate::QosServer::inject_fault`],
//!   [`crate::QosServer::degrade_device`]), which take effect at the next
//!   unsealed window, and
//! * the **latency health scorer**: an EWMA + windowed-quantile tracker
//!   over per-device completion latencies reported by the worker pool,
//!   classifying each device [`DeviceHealth::Healthy`] / `Suspect` /
//!   `Slow`.
//!
//! Fail-stop health is resolved **per window**: `mask_at(w)` is the bitmap
//! of devices down during window `w`. A request admitted into window `t`
//! executes during window `t + 1`, so admission consults the conservative
//! union `admission_mask(t) = mask_at(t) | mask_at(t + 1)` — a device that
//! is down on arrival *or* scheduled to be down at execution time is
//! excluded from the feasibility graph. With a scripted schedule this makes
//! degraded serving loss-free by construction: the seal-time health view is
//! always a subset of the admission-time view, so every admitted request
//! still owns a live replica and the degraded max-flow bound keeps each
//! survivor within its `M`-access budget. Live injections can land
//! *between* admission and seal; the window ring then drains the failing
//! device at seal and re-dispatches onto surviving replicas within the same
//! interval (counted in [`FaultPlane::redispatches`]).
//!
//! Fail-slow health is deliberately different: a `slow:D@W` event silently
//! multiplies device `D`'s service time — **admission does not see it**.
//! A real GC stall or thermal throttle does not announce itself either;
//! the only honest signal is the latency the device actually delivers.
//! Detection is the scorer's job: once enough anomalous completions
//! promote a device to `Slow`, its bit enters [`FaultPlane::live_slow_mask`]
//! and *new* window schedules exclude it exactly like a failed device,
//! while in-flight work drains (hedged against healthy replicas by the
//! worker pool, see `engine.rs`). A `Slow` device starves of samples once
//! excluded, so the dispatcher probes it again after
//! [`HealthParams::probe_windows`] sealed windows without observations.
//!
//! Lock classes owned by this module (see DESIGN.md "Concurrency
//! invariants"): `fault.inner` (event timeline) and `fault.health` (scorer
//! state) — both leaves, acquired by workers holding no other lock and by
//! the dispatcher under `engine.dispatch`.

use crate::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use crate::sync::Mutex;

/// Largest device count the health bitmap covers.
pub const MAX_FAULT_DEVICES: usize = 64;

/// Service-time multiplier applied by `slow:D@W` tokens that do not carry
/// an explicit `x<factor>` suffix.
pub const DEFAULT_SLOW_FACTOR: u32 = 10;

/// What happens to a device at a scheduled window.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultKind {
    /// The device stops serving at the start of the window.
    Fail,
    /// The device returns to service at the start of the window.
    Recover,
    /// The device keeps serving but every request takes `factor`× the
    /// calibrated latency from the start of the window (fail-slow).
    /// Invisible to admission — detection is the health scorer's job.
    Slow(u32),
    /// The device returns to calibrated speed at the start of the window.
    Restore,
}

/// One scripted health transition: `device` changes state at the start of
/// window `window`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FaultEvent {
    /// Device index.
    pub device: usize,
    /// Window at whose start the transition applies.
    pub window: u64,
    /// Fail, recover, slow or restore.
    pub kind: FaultKind,
}

/// A malformed or geometry-violating fault schedule, reported at parse /
/// validation time instead of deep inside the engine.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FaultSpecError {
    /// A token did not match `kind:<device>@<window>[x<factor>]`.
    BadToken {
        /// The offending token.
        token: String,
        /// What was wrong with it.
        reason: String,
    },
    /// The event keyword was not `fail`/`recover`/`slow`/`restore`.
    UnknownEvent {
        /// The offending token.
        token: String,
        /// The unrecognized keyword.
        event: String,
    },
    /// An event names a device the array does not have.
    DeviceOutOfRange {
        /// Device index named by the event.
        device: usize,
        /// Devices in the deployment.
        devices: usize,
    },
    /// The deployment exceeds what the health bitmap covers.
    TooManyDevices {
        /// Devices in the deployment.
        devices: usize,
    },
    /// An event is scheduled at or past the end of the run.
    WindowBeyondHorizon {
        /// Device index named by the event.
        device: usize,
        /// Window named by the event.
        window: u64,
        /// Number of windows the run will seal.
        horizon: u64,
    },
    /// A `slow` event carries a factor that does not slow anything down.
    SlowFactorTooSmall {
        /// Device index named by the event.
        device: usize,
        /// The offending factor.
        factor: u32,
    },
}

impl std::fmt::Display for FaultSpecError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FaultSpecError::BadToken { token, reason } => {
                write!(f, "fault schedule token '{token}': {reason}")
            }
            FaultSpecError::UnknownEvent { token, event } => write!(
                f,
                "fault schedule token '{token}': unknown event '{event}' \
                 (expected fail, recover, slow or restore)"
            ),
            FaultSpecError::DeviceOutOfRange { device, devices } => write!(
                f,
                "fault event names device {device} but the array has only {devices} \
                 devices (0..={})",
                devices.saturating_sub(1)
            ),
            FaultSpecError::TooManyDevices { devices } => write!(
                f,
                "fault plane covers at most {MAX_FAULT_DEVICES} devices, \
                 deployment has {devices}"
            ),
            FaultSpecError::WindowBeyondHorizon {
                device,
                window,
                horizon,
            } => write!(
                f,
                "fault event for device {device} at window {window} is past the \
                 run horizon ({horizon} windows) and would never fire"
            ),
            FaultSpecError::SlowFactorTooSmall { device, factor } => write!(
                f,
                "slow event for device {device} has factor {factor}; a fail-slow \
                 multiplier must be at least 2 (use restore to clear)"
            ),
        }
    }
}

impl std::error::Error for FaultSpecError {}

/// A scripted sequence of device failures, recoveries and fail-slow
/// degradations.
///
/// ```
/// use fqos_server::FaultSchedule;
/// let s = FaultSchedule::new().fail(0, 20).recover(0, 40).slow(1, 10, 10);
/// assert_eq!(
///     s,
///     FaultSchedule::parse("fail:0@20,recover:0@40,slow:1@10x10").unwrap()
/// );
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FaultSchedule {
    events: Vec<FaultEvent>,
}

impl FaultSchedule {
    /// Empty schedule: all devices healthy forever.
    pub fn new() -> Self {
        FaultSchedule::default()
    }

    /// Script `device` to fail at the start of `window`.
    pub fn fail(mut self, device: usize, window: u64) -> Self {
        self.events.push(FaultEvent {
            device,
            window,
            kind: FaultKind::Fail,
        });
        self
    }

    /// Script `device` to recover at the start of `window`.
    pub fn recover(mut self, device: usize, window: u64) -> Self {
        self.events.push(FaultEvent {
            device,
            window,
            kind: FaultKind::Recover,
        });
        self
    }

    /// Script `device` to serve at `factor`× calibrated latency from the
    /// start of `window` (silent fail-slow; admission is not told).
    pub fn slow(mut self, device: usize, window: u64, factor: u32) -> Self {
        self.events.push(FaultEvent {
            device,
            window,
            kind: FaultKind::Slow(factor),
        });
        self
    }

    /// Script `device` to return to calibrated speed at the start of
    /// `window`.
    pub fn restore(mut self, device: usize, window: u64) -> Self {
        self.events.push(FaultEvent {
            device,
            window,
            kind: FaultKind::Restore,
        });
        self
    }

    /// True when no events are scripted.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// The scripted events, in insertion order.
    pub fn events(&self) -> &[FaultEvent] {
        &self.events
    }

    /// Parse a schedule spec: comma- or whitespace-separated
    /// `fail:<device>@<window>`, `recover:<device>@<window>`,
    /// `slow:<device>@<window>[x<factor>]` (factor defaults to
    /// [`DEFAULT_SLOW_FACTOR`]) and `restore:<device>@<window>` tokens.
    pub fn parse(spec: &str) -> Result<Self, FaultSpecError> {
        let bad = |token: &str, reason: &str| FaultSpecError::BadToken {
            token: token.to_string(),
            reason: reason.to_string(),
        };
        let mut schedule = FaultSchedule::new();
        for token in spec.split([',', ' ', '\n', '\t']).filter(|t| !t.is_empty()) {
            let (kind, rest) = token.split_once(':').ok_or_else(|| {
                bad(
                    token,
                    "expected <event>:<dev>@<win> with event one of \
                     fail/recover/slow/restore",
                )
            })?;
            let (dev, win) = rest
                .split_once('@')
                .ok_or_else(|| bad(token, "missing @<window>"))?;
            let device: usize = dev
                .parse()
                .map_err(|_| bad(token, &format!("bad device '{dev}'")))?;
            // Only `slow` takes an `x<factor>` suffix on the window part.
            let (win, factor) = match (kind, win.split_once('x')) {
                ("slow", Some((w, f))) => {
                    let factor: u32 = f
                        .parse()
                        .map_err(|_| bad(token, &format!("bad slow factor '{f}'")))?;
                    (w, factor)
                }
                _ => (win, DEFAULT_SLOW_FACTOR),
            };
            let window: u64 = win
                .parse()
                .map_err(|_| bad(token, &format!("bad window '{win}'")))?;
            schedule = match kind {
                "fail" => schedule.fail(device, window),
                "recover" => schedule.recover(device, window),
                "slow" => schedule.slow(device, window, factor),
                "restore" => schedule.restore(device, window),
                other => {
                    return Err(FaultSpecError::UnknownEvent {
                        token: token.to_string(),
                        event: other.to_string(),
                    })
                }
            };
        }
        Ok(schedule)
    }

    /// Check every event against the deployment's device count.
    pub fn validate(&self, devices: usize) -> Result<(), FaultSpecError> {
        self.validate_for(devices, None)
    }

    /// Check every event against the deployment's device count and, when
    /// the run length is known up front (`horizon` = number of windows the
    /// run will seal), reject events that could never fire.
    pub fn validate_for(&self, devices: usize, horizon: Option<u64>) -> Result<(), FaultSpecError> {
        if devices > MAX_FAULT_DEVICES {
            return Err(FaultSpecError::TooManyDevices { devices });
        }
        for e in &self.events {
            if e.device >= devices {
                return Err(FaultSpecError::DeviceOutOfRange {
                    device: e.device,
                    devices,
                });
            }
            if let FaultKind::Slow(factor) = e.kind {
                if factor < 2 {
                    return Err(FaultSpecError::SlowFactorTooSmall {
                        device: e.device,
                        factor,
                    });
                }
            }
            if let Some(h) = horizon {
                if e.window >= h {
                    return Err(FaultSpecError::WindowBeyondHorizon {
                        device: e.device,
                        window: e.window,
                        horizon: h,
                    });
                }
            }
        }
        Ok(())
    }
}

/// Events plus the timeline compiled from them: `timeline[i] = (w, mask)`
/// means `mask` holds for windows in `w .. timeline[i+1].0`. Only
/// fail-stop events contribute to the mask; fail-slow events are kept in
/// `events` and scanned by `slow_factor_at` (they are few and silent).
#[derive(Debug, Default)]
struct PlaneInner {
    events: Vec<FaultEvent>,
    timeline: Vec<(u64, u64)>,
}

impl PlaneInner {
    fn recompile(&mut self) {
        // Stable by window: same-window events apply in injection order.
        self.events.sort_by_key(|e| e.window);
        self.timeline.clear();
        let mut mask = 0u64;
        for e in &self.events {
            match e.kind {
                FaultKind::Fail => mask |= 1 << e.device,
                FaultKind::Recover => mask &= !(1 << e.device),
                FaultKind::Slow(_) | FaultKind::Restore => continue,
            }
            match self.timeline.last_mut() {
                Some(last) if last.0 == e.window => last.1 = mask,
                _ => self.timeline.push((e.window, mask)),
            }
        }
    }

    fn mask_at(&self, window: u64) -> u64 {
        match self.timeline.partition_point(|&(w, _)| w <= window) {
            0 => 0,
            i => self.timeline[i - 1].1,
        }
    }

    fn slow_factor_at(&self, device: usize, window: u64) -> u32 {
        let mut factor = 1;
        for e in &self.events {
            if e.window > window {
                break; // events are sorted by window
            }
            if e.device != device {
                continue;
            }
            match e.kind {
                FaultKind::Slow(f) => factor = f.max(1),
                FaultKind::Restore => factor = 1,
                FaultKind::Fail | FaultKind::Recover => {}
            }
        }
        factor
    }
}

/// Tri-state latency health of one device, as judged by the scorer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DeviceHealth {
    /// Serving at (or near) its calibrated latency.
    Healthy,
    /// At least one recent anomalous completion; watching for a streak.
    Suspect,
    /// A sustained anomaly streak: excluded from new window schedules
    /// until it recovers or is re-probed.
    Slow,
}

/// Scorer tuning, derived from `ServerConfig` health/hedge knobs.
#[derive(Debug, Clone)]
pub struct HealthParams {
    /// Recent-latency ring size per device (quantile window).
    pub window: usize,
    /// A completion is anomalous when its service latency exceeds
    /// `suspect_factor ×` the device's EWMA baseline.
    pub suspect_factor: f64,
    /// Consecutive anomalous completions that promote `Suspect → Slow`.
    pub promote_streak: u32,
    /// Consecutive normal completions that demote `Slow → Healthy`.
    pub recover_streak: u32,
    /// Sealed windows without a sample after which a `Slow` device is
    /// re-probed (demoted to `Suspect`, bit cleared, schedulable again).
    pub probe_windows: u64,
    /// Percentile of the recent-latency ring used as the hedge base.
    pub hedge_percentile: f64,
    /// Minimum samples in the ring before a hedge threshold exists.
    pub hedge_min_samples: usize,
    /// Multiplier on the percentile latency: hedging fires only when the
    /// projected latency exceeds `slack × quantile`.
    pub hedge_slack: f64,
}

impl Default for HealthParams {
    fn default() -> Self {
        HealthParams {
            window: 16,
            suspect_factor: 3.0,
            promote_streak: 3,
            recover_streak: 8,
            probe_windows: 8,
            hedge_percentile: 0.9,
            hedge_min_samples: 4,
            hedge_slack: 2.0,
        }
    }
}

/// Per-device scorer state. Latencies recorded are the *service*
/// component (finish − service start): queueing delay behind co-scheduled
/// work says nothing about the device's own speed.
#[derive(Debug, Clone)]
struct DeviceHealthState {
    state: DeviceHealth,
    /// Integer EWMA of normal-looking service latencies (α = 1/8). Not
    /// updated by anomalous samples: the baseline must not chase the
    /// degraded tail it is trying to detect.
    ewma_ns: u64,
    /// Ring of recent service latencies (anomalous or not) for quantiles.
    samples: Vec<u64>,
    next: usize,
    seen: u64,
    bad_streak: u32,
    good_streak: u32,
    last_sample_window: u64,
}

impl DeviceHealthState {
    fn new() -> Self {
        DeviceHealthState {
            state: DeviceHealth::Healthy,
            ewma_ns: 0,
            samples: Vec::new(),
            next: 0,
            seen: 0,
            bad_streak: 0,
            good_streak: 0,
            last_sample_window: 0,
        }
    }
}

/// Scorer state for the whole array; behind the `fault.health` leaf lock.
#[derive(Debug)]
struct HealthBoard {
    params: HealthParams,
    devices: Vec<DeviceHealthState>,
}

/// Shared device-health view plus the degraded-serving audit counters.
///
/// Owned by the engine, consulted by the window ring on every admission and
/// seal and by every worker completion. All counter reads/writes are
/// relaxed atomics; the event timeline sits behind one small mutex
/// (`fault.inner`) with a lock-free fast path while no fault has ever been
/// scripted or injected, and the scorer behind another (`fault.health`).
/// The scorer's verdict is published lock-free in `live_slow`, so the
/// admission hot path never touches the scorer lock.
#[derive(Debug)]
pub struct FaultPlane {
    devices: usize,
    inner: Mutex<PlaneInner>,
    /// False until the first event exists: lets the healthy hot path skip
    /// the timeline lock entirely.
    any: AtomicBool,
    /// False until a fail-slow event exists: lets workers skip the
    /// per-completion factor lookup on healthy arrays.
    any_slow: AtomicBool,
    /// Bitmap of devices the scorer currently classifies `Slow`. Excluded
    /// from new window schedules like failed devices, but their in-flight
    /// work drains.
    live_slow: AtomicU64,
    health: Mutex<HealthBoard>,
    degraded_windows: AtomicU64,
    reroutes: AtomicU64,
    redispatches: AtomicU64,
    overloads: AtomicU64,
    lost: AtomicU64,
    unavailable_rejects: AtomicU64,
    slow_detected: AtomicU64,
    suspects: AtomicU64,
    recoveries: AtomicU64,
    retries: AtomicU64,
    /// Per-device write-amplification EWMA, fixed-point `×256`
    /// (`256` = WA 1.0). Written only by the device's owning worker;
    /// read by window admission to size the GC-pressure reserve.
    gc_pressure: Vec<AtomicU64>,
    /// False until the first GC observation: keeps the per-seal decay a
    /// no-op on read-only workloads.
    any_gc: AtomicBool,
}

/// Fixed-point unit of the GC-pressure EWMA (`256` = write amplification 1.0).
const GC_FP_ONE: u64 = 256;

impl FaultPlane {
    /// Build the plane for `devices` devices from a scripted schedule,
    /// with default scorer tuning.
    pub fn new(devices: usize, schedule: FaultSchedule) -> Result<Self, String> {
        FaultPlane::with_health(devices, schedule, HealthParams::default())
    }

    /// Build the plane with explicit scorer tuning.
    pub fn with_health(
        devices: usize,
        schedule: FaultSchedule,
        params: HealthParams,
    ) -> Result<Self, String> {
        schedule.validate(devices).map_err(|e| e.to_string())?;
        let any_slow = schedule
            .events
            .iter()
            .any(|e| matches!(e.kind, FaultKind::Slow(_)));
        let mut inner = PlaneInner {
            events: schedule.events,
            timeline: Vec::new(),
        };
        inner.recompile();
        let any = !inner.events.is_empty();
        Ok(FaultPlane {
            devices,
            inner: Mutex::new(inner),
            any: AtomicBool::new(any),
            any_slow: AtomicBool::new(any_slow),
            live_slow: AtomicU64::new(0),
            health: Mutex::new(HealthBoard {
                params,
                devices: (0..devices).map(|_| DeviceHealthState::new()).collect(),
            }),
            degraded_windows: AtomicU64::new(0),
            reroutes: AtomicU64::new(0),
            redispatches: AtomicU64::new(0),
            overloads: AtomicU64::new(0),
            lost: AtomicU64::new(0),
            unavailable_rejects: AtomicU64::new(0),
            slow_detected: AtomicU64::new(0),
            suspects: AtomicU64::new(0),
            recoveries: AtomicU64::new(0),
            retries: AtomicU64::new(0),
            gc_pressure: (0..devices).map(|_| AtomicU64::new(GC_FP_ONE)).collect(),
            any_gc: AtomicBool::new(false),
        })
    }

    /// Device count covered by the bitmap.
    pub fn devices(&self) -> usize {
        self.devices
    }

    /// Bitmap of devices down during window `window` (bit `d` set = device
    /// `d` failed).
    pub fn mask_at(&self, window: u64) -> u64 {
        if !self.any.load(Ordering::Acquire) {
            return 0;
        }
        self.inner.lock().mask_at(window)
    }

    /// Conservative health view for admitting into window `window`:
    /// excludes devices down on arrival (`window`) *or* during the
    /// execution interval (`window + 1`).
    pub fn admission_mask(&self, window: u64) -> u64 {
        if !self.any.load(Ordering::Acquire) {
            return 0;
        }
        let inner = self.inner.lock();
        inner.mask_at(window) | inner.mask_at(window + 1)
    }

    /// Everything admission should steer around for window `window`:
    /// fail-stop devices ([`FaultPlane::admission_mask`]) plus devices the
    /// scorer currently classifies `Slow`.
    pub fn exclusion_mask(&self, window: u64) -> u64 {
        self.admission_mask(window) | self.live_slow.load(Ordering::Acquire)
    }

    /// Bitmap of devices the scorer currently classifies `Slow`.
    pub fn live_slow_mask(&self) -> u64 {
        self.live_slow.load(Ordering::Acquire)
    }

    /// The fail-slow service-time multiplier in force on `device` during
    /// window `window` (1 = calibrated speed).
    pub fn slow_factor_at(&self, device: usize, window: u64) -> u32 {
        if !self.any_slow.load(Ordering::Acquire) {
            return 1;
        }
        self.inner.lock().slow_factor_at(device, window)
    }

    /// Inject a live health transition taking effect at window `window`.
    pub fn inject(&self, device: usize, kind: FaultKind, window: u64) -> Result<(), String> {
        if device >= self.devices {
            return Err(format!(
                "device {device} out of range (array has {} devices)",
                self.devices
            ));
        }
        if let FaultKind::Slow(factor) = kind {
            if factor < 2 {
                return Err(FaultSpecError::SlowFactorTooSmall { device, factor }.to_string());
            }
        }
        let mut inner = self.inner.lock();
        inner.events.push(FaultEvent {
            device,
            window,
            kind,
        });
        inner.recompile();
        drop(inner);
        if matches!(kind, FaultKind::Slow(_)) {
            self.any_slow.store(true, Ordering::Release);
        }
        self.any.store(true, Ordering::Release);
        Ok(())
    }

    /// Record one completion's service latency for the scorer. Called by
    /// workers after every (non-cancelled) device completion; takes only
    /// the `fault.health` leaf lock.
    pub fn observe(&self, device: usize, service_ns: u64, window: u64) {
        let mut board = self.health.lock();
        let (suspect_factor, ring, promote, recover) = {
            let p = &board.params;
            (
                p.suspect_factor,
                p.window,
                p.promote_streak,
                p.recover_streak,
            )
        };
        let Some(st) = board.devices.get_mut(device) else {
            return;
        };
        st.last_sample_window = window;
        let anomalous = st.seen > 0 && service_ns as f64 > suspect_factor * st.ewma_ns as f64;
        if st.samples.len() < ring {
            st.samples.push(service_ns);
        } else {
            st.samples[st.next] = service_ns;
            st.next = (st.next + 1) % ring;
        }
        st.seen += 1;
        if st.seen == 1 {
            st.ewma_ns = service_ns.max(1);
        } else if !anomalous {
            let delta = service_ns as i64 - st.ewma_ns as i64;
            st.ewma_ns = (st.ewma_ns as i64 + (delta >> 3)).max(1) as u64;
        }
        let prev = st.state;
        let next = match prev {
            DeviceHealth::Healthy => {
                if anomalous {
                    st.bad_streak = 1;
                    DeviceHealth::Suspect
                } else {
                    DeviceHealth::Healthy
                }
            }
            DeviceHealth::Suspect => {
                if anomalous {
                    st.bad_streak += 1;
                    if st.bad_streak >= promote {
                        st.good_streak = 0;
                        DeviceHealth::Slow
                    } else {
                        DeviceHealth::Suspect
                    }
                } else {
                    // One normal completion clears suspicion: a single
                    // outlier never flaps a device out of schedules.
                    st.bad_streak = 0;
                    DeviceHealth::Healthy
                }
            }
            DeviceHealth::Slow => {
                if anomalous {
                    st.good_streak = 0;
                    DeviceHealth::Slow
                } else {
                    st.good_streak += 1;
                    if st.good_streak >= recover {
                        st.good_streak = 0;
                        st.bad_streak = 0;
                        DeviceHealth::Healthy
                    } else {
                        DeviceHealth::Slow
                    }
                }
            }
        };
        st.state = next;
        drop(board);
        if next != prev {
            self.note_health_transition(device, prev, next);
        }
    }

    fn note_health_transition(&self, device: usize, prev: DeviceHealth, next: DeviceHealth) {
        match next {
            DeviceHealth::Suspect => {
                self.suspects.fetch_add(1, Ordering::Relaxed);
            }
            DeviceHealth::Slow => {
                self.slow_detected.fetch_add(1, Ordering::Relaxed);
                self.live_slow.fetch_or(1 << device, Ordering::AcqRel);
            }
            DeviceHealth::Healthy => {
                if prev == DeviceHealth::Slow {
                    self.recoveries.fetch_add(1, Ordering::Relaxed);
                    self.live_slow.fetch_and(!(1 << device), Ordering::AcqRel);
                }
            }
        }
    }

    /// The scorer's current verdict for `device`.
    pub fn health_state(&self, device: usize) -> DeviceHealth {
        self.health
            .lock()
            .devices
            .get(device)
            .map(|s| s.state)
            .unwrap_or(DeviceHealth::Healthy)
    }

    /// Latency above which a dispatch on `device` should be hedged:
    /// `hedge_slack ×` the `hedge_percentile` quantile of the device's
    /// recent service latencies. `None` until `hedge_min_samples` have
    /// been observed — hedging with no baseline would be guessing.
    pub fn hedge_threshold(&self, device: usize) -> Option<u64> {
        let board = self.health.lock();
        let p = &board.params;
        let st = board.devices.get(device)?;
        if st.samples.len() < p.hedge_min_samples.max(1) {
            return None;
        }
        let mut v = st.samples.clone();
        v.sort_unstable();
        let idx = ((v.len() as f64 * p.hedge_percentile).ceil() as usize).clamp(1, v.len()) - 1;
        Some((v[idx] as f64 * p.hedge_slack) as u64)
    }

    /// Best current estimate of a single-block service latency on
    /// `device`: the scorer's EWMA baseline, or `default_ns` before any
    /// sample exists. Used for earliest-finish-time hedge target choice.
    pub fn service_estimate(&self, device: usize, default_ns: u64) -> u64 {
        self.health
            .lock()
            .devices
            .get(device)
            .filter(|s| s.seen > 0)
            .map(|s| s.ewma_ns)
            .unwrap_or(default_ns)
    }

    /// Dispatcher probe tick, called as each window seals: a `Slow` device
    /// that has been excluded from schedules stops producing samples and
    /// would stay `Slow` forever. After `probe_windows` sealed windows
    /// without an observation it is demoted to `Suspect` and its exclusion
    /// bit cleared, so the next schedules route a little work back to it —
    /// either the samples come back normal (full recovery) or the anomaly
    /// streak re-promotes it within `promote_streak` completions.
    pub(crate) fn health_tick(&self, sealed_window: u64) {
        self.gc_decay();
        let slow = self.live_slow.load(Ordering::Acquire);
        if slow == 0 {
            return;
        }
        let mut cleared = 0u64;
        let mut board = self.health.lock();
        let probe = board.params.probe_windows;
        for (d, st) in board.devices.iter_mut().enumerate() {
            if slow >> d & 1 == 1
                && st.state == DeviceHealth::Slow
                && sealed_window.saturating_sub(st.last_sample_window) >= probe
            {
                st.state = DeviceHealth::Suspect;
                st.bad_streak = 0;
                st.good_streak = 0;
                cleared |= 1 << d;
            }
        }
        drop(board);
        if cleared != 0 {
            self.live_slow.fetch_and(!cleared, Ordering::AcqRel);
        }
    }

    /// Record the FTL outcome of one host write on `device`: `programmed`
    /// total page programs (host + GC relocations) for `host` host pages.
    /// Feeds the write-amplification EWMA (α = 1/8) behind the GC-pressure
    /// admission reserve. Each device is written by exactly one worker, so
    /// plain load/store suffices.
    pub fn observe_gc(&self, device: usize, host: u64, programmed: u64) {
        let Some(cell) = self.gc_pressure.get(device) else {
            return;
        };
        if host == 0 {
            return;
        }
        let sample = programmed * GC_FP_ONE / host;
        let ewma = cell.load(Ordering::Relaxed);
        let delta = sample as i64 - ewma as i64;
        cell.store(
            (ewma as i64 + (delta >> 3)).max(GC_FP_ONE as i64) as u64,
            Ordering::Relaxed,
        );
        self.any_gc.store(true, Ordering::Release);
    }

    /// Decay every device's GC-pressure EWMA toward 1.0 (one step per
    /// sealed window): a device whose write storm ended gives its reserved
    /// headroom back to `S(M)` within a few windows.
    fn gc_decay(&self) {
        if !self.any_gc.load(Ordering::Acquire) {
            return;
        }
        for cell in &self.gc_pressure {
            let ewma = cell.load(Ordering::Relaxed);
            if ewma > GC_FP_ONE {
                cell.store(ewma - ((ewma - GC_FP_ONE) >> 4).max(1), Ordering::Relaxed);
            }
        }
    }

    /// The device's current write-amplification estimate (EWMA; 1.0 when
    /// the device has seen no GC).
    pub fn write_amp_estimate(&self, device: usize) -> f64 {
        self.gc_pressure
            .get(device)
            .map(|c| c.load(Ordering::Relaxed) as f64 / GC_FP_ONE as f64)
            .unwrap_or(1.0)
    }

    /// Access slots window admission reserves on `device` out of a
    /// per-device budget of `accesses`: GC-pressure headroom stolen from
    /// `S(M)` in proportion to the amplification excess `WA − 1`, capped
    /// at half the budget so reads are never starved outright. Zero while
    /// the device shows no amplification.
    pub fn gc_reserve(&self, device: usize, accesses: usize) -> usize {
        if !self.any_gc.load(Ordering::Acquire) {
            return 0;
        }
        let Some(cell) = self.gc_pressure.get(device) else {
            return 0;
        };
        let excess = cell.load(Ordering::Relaxed).saturating_sub(GC_FP_ONE);
        ((excess as usize * accesses) / (2 * GC_FP_ONE as usize)).min(accesses / 2)
    }

    /// Devices down during `window`, as indices.
    pub fn failed_devices(&self, window: u64) -> Vec<usize> {
        let mask = self.mask_at(window);
        (0..self.devices).filter(|d| mask >> d & 1 == 1).collect()
    }

    /// The tightened per-window capacity while `mask` is down:
    /// `M · live_devices` — the degraded analogue of `S(M)` the admission
    /// path enforces via the degraded feasibility graph.
    pub fn degraded_limit(&self, mask: u64, accesses: usize) -> usize {
        accesses * (self.devices - mask.count_ones() as usize)
    }

    pub(crate) fn note_degraded_window(&self) {
        self.degraded_windows.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn note_reroute(&self) {
        self.reroutes.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn note_redispatch(&self) {
        self.redispatches.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn note_overload(&self) {
        self.overloads.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn note_lost(&self) {
        self.lost.fetch_add(1, Ordering::Relaxed);
    }

    /// Seed the lost counter from a recovered WAL state so the restored
    /// engine's conservation audit balances from its first snapshot.
    pub(crate) fn restore_lost(&self, n: u64) {
        self.lost.fetch_add(n, Ordering::Relaxed);
    }

    pub(crate) fn note_unavailable_reject(&self) {
        self.unavailable_rejects.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn note_retry(&self) {
        self.retries.fetch_add(1, Ordering::Relaxed);
    }

    /// Sealed windows whose execution interval had at least one device down.
    pub fn degraded_windows(&self) -> u64 {
        self.degraded_windows.load(Ordering::Relaxed)
    }

    /// Admitted requests steered away from a failed replica at admission
    /// time (the request named a down device; the feasibility graph routed
    /// it to a survivor).
    pub fn reroutes(&self) -> u64 {
        self.reroutes.load(Ordering::Relaxed)
    }

    /// Requests drained off a failing device at window seal and
    /// re-dispatched to a surviving replica within the same interval (live
    /// injections landing between admission and seal).
    pub fn redispatches(&self) -> u64 {
        self.redispatches.load(Ordering::Relaxed)
    }

    /// Degraded-window seal rebuilds that found no `M`-respecting slot for
    /// a request on any surviving replica and overloaded the least-loaded
    /// one instead. Can only happen when a *live* injection lands after
    /// admission and the already-admitted set is infeasible on the
    /// surviving subgraph; the request may then finish late — every such
    /// miss shows up in the deadline audit, never hidden. Scripted
    /// schedules keep this at zero by construction (the admission mask
    /// already covers the execution interval).
    pub fn overloads(&self) -> u64 {
        self.overloads.load(Ordering::Relaxed)
    }

    /// Admitted requests that could not be served because every replica
    /// was down at seal time. Zero whenever failures stay within the
    /// design's `c − 1` tolerance; never silently dropped — always counted
    /// here and audited by `finish()`.
    pub fn lost(&self) -> u64 {
        self.lost.load(Ordering::Relaxed)
    }

    /// Submissions rejected because every replica of the block was down
    /// across the admissible horizon (≥ `c` co-hosting failures).
    pub fn unavailable_rejects(&self) -> u64 {
        self.unavailable_rejects.load(Ordering::Relaxed)
    }

    /// Devices the scorer promoted to `Slow` (entries, not a level).
    pub fn slow_detected(&self) -> u64 {
        self.slow_detected.load(Ordering::Relaxed)
    }

    /// Devices the scorer moved `Healthy → Suspect` (entries).
    pub fn health_suspects(&self) -> u64 {
        self.suspects.load(Ordering::Relaxed)
    }

    /// Devices the scorer demoted `Slow → Healthy` (entries).
    pub fn health_recoveries(&self) -> u64 {
        self.recoveries.load(Ordering::Relaxed)
    }

    /// Deadline-aware re-dispatches: seal-time drains off a detected-slow
    /// device plus worker-side backoff retry hops past the first hedge.
    pub fn retries(&self) -> u64 {
        self.retries.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn schedule_parse_round_trips() {
        let s = FaultSchedule::parse("fail:2@10, recover:2@20 fail:0@15").unwrap();
        assert_eq!(
            s,
            FaultSchedule::new().fail(2, 10).recover(2, 20).fail(0, 15)
        );
        assert!(FaultSchedule::parse("").unwrap().is_empty());
        assert!(FaultSchedule::parse("explode:1@2").is_err());
        assert!(FaultSchedule::parse("fail:x@2").is_err());
        assert!(FaultSchedule::parse("fail:1").is_err());
        assert!(FaultSchedule::parse("1@2").is_err());
    }

    #[test]
    fn schedule_parse_slow_and_restore() {
        let s = FaultSchedule::parse("slow:2@10 restore:2@30, slow:1@5x4").unwrap();
        assert_eq!(
            s,
            FaultSchedule::new()
                .slow(2, 10, DEFAULT_SLOW_FACTOR)
                .restore(2, 30)
                .slow(1, 5, 4)
        );
        assert!(matches!(
            FaultSchedule::parse("slow:1@5xq"),
            Err(FaultSpecError::BadToken { .. })
        ));
        // The x<factor> suffix belongs to slow alone.
        assert!(FaultSchedule::parse("fail:1@5x4").is_err());
        assert!(matches!(
            FaultSchedule::parse("melt:1@5"),
            Err(FaultSpecError::UnknownEvent { .. })
        ));
    }

    #[test]
    fn schedule_validation_checks_device_range() {
        let s = FaultSchedule::new().fail(9, 5);
        assert_eq!(
            s.validate(9),
            Err(FaultSpecError::DeviceOutOfRange {
                device: 9,
                devices: 9
            })
        );
        assert!(s.validate(10).is_ok());
        assert_eq!(
            FaultSchedule::new().validate(65),
            Err(FaultSpecError::TooManyDevices { devices: 65 })
        );
    }

    #[test]
    fn schedule_validation_checks_horizon_and_factor() {
        let s = FaultSchedule::new().slow(1, 40, 10);
        assert!(s.validate_for(4, Some(41)).is_ok());
        assert_eq!(
            s.validate_for(4, Some(40)),
            Err(FaultSpecError::WindowBeyondHorizon {
                device: 1,
                window: 40,
                horizon: 40
            })
        );
        assert_eq!(
            FaultSchedule::new().slow(0, 1, 1).validate(4),
            Err(FaultSpecError::SlowFactorTooSmall {
                device: 0,
                factor: 1
            })
        );
        // Typed errors render with context for the CLI.
        let msg = FaultSpecError::WindowBeyondHorizon {
            device: 1,
            window: 40,
            horizon: 40,
        }
        .to_string();
        assert!(msg.contains("device 1") && msg.contains("window 40"));
    }

    #[test]
    fn masks_follow_the_timeline() {
        let plane = FaultPlane::new(
            4,
            FaultSchedule::new()
                .fail(1, 10)
                .fail(3, 12)
                .recover(1, 20)
                .recover(3, 20),
        )
        .unwrap();
        assert_eq!(plane.mask_at(0), 0);
        assert_eq!(plane.mask_at(9), 0);
        assert_eq!(plane.mask_at(10), 0b0010);
        assert_eq!(plane.mask_at(11), 0b0010);
        assert_eq!(plane.mask_at(12), 0b1010);
        assert_eq!(plane.mask_at(19), 0b1010);
        assert_eq!(plane.mask_at(20), 0);
        assert_eq!(plane.failed_devices(13), vec![1, 3]);
        assert_eq!(plane.degraded_limit(plane.mask_at(13), 2), 4);
    }

    #[test]
    fn admission_mask_is_the_arrival_exec_union() {
        // Fail at 10: window 9 admissions execute during 10, so window 9
        // already sees the device as down. Recover at 20: window 19
        // admissions execute during 20 but stay conservative.
        let plane = FaultPlane::new(2, FaultSchedule::new().fail(0, 10).recover(0, 20)).unwrap();
        assert_eq!(plane.admission_mask(8), 0);
        assert_eq!(plane.admission_mask(9), 1);
        assert_eq!(plane.admission_mask(15), 1);
        assert_eq!(plane.admission_mask(19), 1);
        assert_eq!(plane.admission_mask(20), 0);
    }

    #[test]
    fn healthy_plane_is_lock_free_zero() {
        let plane = FaultPlane::new(8, FaultSchedule::new()).unwrap();
        assert_eq!(plane.mask_at(123), 0);
        assert_eq!(plane.admission_mask(u64::MAX - 1), 0);
        assert!(plane.failed_devices(7).is_empty());
        assert_eq!(plane.slow_factor_at(3, 99), 1);
        assert_eq!(plane.exclusion_mask(9), 0);
    }

    #[test]
    fn live_injection_extends_the_timeline() {
        let plane = FaultPlane::new(3, FaultSchedule::new().fail(2, 5)).unwrap();
        plane.inject(1, FaultKind::Fail, 7).unwrap();
        plane.inject(2, FaultKind::Recover, 8).unwrap();
        assert_eq!(plane.mask_at(6), 0b100);
        assert_eq!(plane.mask_at(7), 0b110);
        assert_eq!(plane.mask_at(8), 0b010);
        assert!(plane.inject(3, FaultKind::Fail, 0).is_err());
    }

    #[test]
    fn duplicate_events_are_idempotent() {
        let plane = FaultPlane::new(2, FaultSchedule::new().fail(0, 3).fail(0, 4)).unwrap();
        assert_eq!(plane.mask_at(4), 1);
        plane.inject(0, FaultKind::Recover, 9).unwrap();
        assert_eq!(plane.mask_at(9), 0);
    }

    #[test]
    fn slow_events_degrade_silently() {
        let plane =
            FaultPlane::new(4, FaultSchedule::new().slow(2, 10, 10).restore(2, 30)).unwrap();
        assert_eq!(plane.slow_factor_at(2, 9), 1);
        assert_eq!(plane.slow_factor_at(2, 10), 10);
        assert_eq!(plane.slow_factor_at(2, 29), 10);
        assert_eq!(plane.slow_factor_at(2, 30), 1);
        assert_eq!(plane.slow_factor_at(1, 15), 1);
        // Fail-slow never enters the fail-stop masks: admission is blind
        // to it until the scorer says otherwise.
        assert_eq!(plane.mask_at(15), 0);
        assert_eq!(plane.admission_mask(15), 0);
        assert_eq!(plane.exclusion_mask(15), 0);
        // Live degradation injections extend the same timeline.
        plane.inject(1, FaultKind::Slow(4), 12).unwrap();
        assert_eq!(plane.slow_factor_at(1, 12), 4);
        plane.inject(1, FaultKind::Restore, 14).unwrap();
        assert_eq!(plane.slow_factor_at(1, 14), 1);
        assert!(plane.inject(1, FaultKind::Slow(1), 20).is_err());
    }

    const BASE: u64 = 132_507;

    #[test]
    fn scorer_single_outlier_does_not_flap() {
        let plane = FaultPlane::new(4, FaultSchedule::new()).unwrap();
        for w in 0..5 {
            plane.observe(0, BASE, w);
        }
        assert_eq!(plane.health_state(0), DeviceHealth::Healthy);
        plane.observe(0, 10 * BASE, 5);
        assert_eq!(plane.health_state(0), DeviceHealth::Suspect);
        assert_eq!(plane.live_slow_mask(), 0, "suspect is still schedulable");
        plane.observe(0, BASE, 6);
        assert_eq!(plane.health_state(0), DeviceHealth::Healthy);
        assert_eq!(plane.slow_detected(), 0);
        assert_eq!(plane.health_suspects(), 1);
        // The outlier did not drag the baseline up: the next anomaly is
        // still judged against the calibrated EWMA.
        plane.observe(0, 10 * BASE, 7);
        assert_eq!(plane.health_state(0), DeviceHealth::Suspect);
    }

    #[test]
    fn scorer_promotes_on_streak_and_recovers_with_hysteresis() {
        let plane = FaultPlane::new(4, FaultSchedule::new()).unwrap();
        for w in 0..4 {
            plane.observe(1, BASE, w);
        }
        // Three consecutive anomalies: Healthy → Suspect → … → Slow.
        plane.observe(1, 10 * BASE, 4);
        plane.observe(1, 10 * BASE, 4);
        assert_eq!(plane.health_state(1), DeviceHealth::Suspect);
        plane.observe(1, 10 * BASE, 5);
        assert_eq!(plane.health_state(1), DeviceHealth::Slow);
        assert_eq!(plane.live_slow_mask(), 0b10);
        assert_eq!(plane.exclusion_mask(5), 0b10);
        assert_eq!(plane.slow_detected(), 1);
        // Recovery needs a sustained normal streak, not one good sample.
        for w in 6..13 {
            plane.observe(1, BASE, w);
            assert_eq!(plane.health_state(1), DeviceHealth::Slow, "window {w}");
        }
        plane.observe(1, BASE, 13);
        assert_eq!(plane.health_state(1), DeviceHealth::Healthy);
        assert_eq!(plane.live_slow_mask(), 0);
        assert_eq!(plane.health_recoveries(), 1);
    }

    #[test]
    fn hedge_threshold_needs_samples_then_tracks_the_tail() {
        let plane = FaultPlane::new(2, FaultSchedule::new()).unwrap();
        assert_eq!(plane.hedge_threshold(0), None);
        for w in 0..3 {
            plane.observe(0, BASE, w);
        }
        assert_eq!(plane.hedge_threshold(0), None, "below min samples");
        plane.observe(0, BASE, 3);
        // Defaults: p90 of a flat ring is BASE, slack 2.0.
        assert_eq!(plane.hedge_threshold(0), Some(2 * BASE));
        assert_eq!(plane.service_estimate(0, 7), BASE);
        assert_eq!(plane.service_estimate(1, 7), 7, "no samples yet");
    }

    #[test]
    fn probe_tick_reschedules_a_starved_slow_device() {
        let plane = FaultPlane::new(2, FaultSchedule::new()).unwrap();
        for w in 0..4 {
            plane.observe(0, BASE, w);
        }
        for _ in 0..3 {
            plane.observe(0, 10 * BASE, 4);
        }
        assert_eq!(plane.health_state(0), DeviceHealth::Slow);
        assert_eq!(plane.live_slow_mask(), 1);
        // Excluded from schedules → no samples. Before the probe TTL the
        // bit stays; once it expires the device is put back on probation.
        plane.health_tick(5);
        assert_eq!(plane.live_slow_mask(), 1);
        plane.health_tick(4 + HealthParams::default().probe_windows);
        assert_eq!(plane.live_slow_mask(), 0);
        assert_eq!(plane.health_state(0), DeviceHealth::Suspect);
        // Probation is not a counted recovery.
        assert_eq!(plane.health_recoveries(), 0);
    }

    #[test]
    fn gc_pressure_reserve_grows_with_amplification_and_decays() {
        let plane = FaultPlane::new(2, FaultSchedule::new()).unwrap();
        assert_eq!(plane.gc_reserve(0, 8), 0, "no GC observed yet");
        assert_eq!(plane.write_amp_estimate(0), 1.0);
        // Sustained WA-3 writes on device 0: the EWMA converges toward 3.0
        // and the reserve toward (3−1)/2 × budget = the half-budget cap.
        for _ in 0..64 {
            plane.observe_gc(0, 1, 3);
        }
        assert!(plane.write_amp_estimate(0) > 2.5);
        assert_eq!(plane.gc_reserve(0, 8), 4, "capped at half the budget");
        assert_eq!(plane.gc_reserve(1, 8), 0, "other devices unaffected");
        // Writes stop: per-seal decay hands the headroom back.
        for w in 0..200 {
            plane.health_tick(w);
        }
        assert_eq!(plane.gc_reserve(0, 8), 0, "pressure decayed away");
        assert!(plane.write_amp_estimate(0) < 1.1);
    }

    #[test]
    fn gc_reserve_never_exceeds_half_the_budget() {
        let plane = FaultPlane::new(1, FaultSchedule::new()).unwrap();
        for _ in 0..200 {
            plane.observe_gc(0, 1, 50);
        }
        for accesses in [1usize, 2, 3, 8, 27] {
            assert!(plane.gc_reserve(0, accesses) <= accesses / 2);
        }
    }
}
