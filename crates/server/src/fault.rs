//! Fault injection and the device-health plane.
//!
//! An `(N, c, 1)` declustering tolerates any `c − 1` device failures with
//! zero data loss ([`fqos_decluster::retrieval::degraded`]), and the online
//! engine must keep its per-interval guarantee through them: a failed
//! device may never stall a worker queue or silently blow a deadline.
//!
//! The [`FaultPlane`] is the engine's shared view of device health, driven
//! by two sources:
//!
//! * a scripted [`FaultSchedule`] of `Fail { device, window }` /
//!   `Recover { device, window }` events, fixed at server construction
//!   (deterministic — the test harness and `fqos serve --fault-schedule`
//!   replay these), and
//! * live injections ([`crate::QosServer::inject_fault`]), which take
//!   effect at the next unsealed window.
//!
//! Health is resolved **per window**: `mask_at(w)` is the bitmap of devices
//! down during window `w`. A request admitted into window `t` executes
//! during window `t + 1`, so admission consults the conservative union
//! `admission_mask(t) = mask_at(t) | mask_at(t + 1)` — a device that is
//! down on arrival *or* scheduled to be down at execution time is excluded
//! from the feasibility graph. With a scripted schedule this makes degraded
//! serving loss-free by construction: the seal-time health view is always a
//! subset of the admission-time view, so every admitted request still owns
//! a live replica and the degraded max-flow bound keeps each survivor
//! within its `M`-access budget. Live injections can land *between*
//! admission and seal; the window ring then drains the failing device at
//! seal and re-dispatches onto surviving replicas within the same interval
//! (counted in [`FaultPlane::redispatches`]).

use crate::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use crate::sync::Mutex;

/// Largest device count the health bitmap covers.
pub const MAX_FAULT_DEVICES: usize = 64;

/// What happens to a device at a scheduled window.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultKind {
    /// The device stops serving at the start of the window.
    Fail,
    /// The device returns to service at the start of the window.
    Recover,
}

/// One scripted health transition: `device` changes state at the start of
/// window `window`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FaultEvent {
    /// Device index.
    pub device: usize,
    /// Window at whose start the transition applies.
    pub window: u64,
    /// Fail or recover.
    pub kind: FaultKind,
}

/// A scripted sequence of device failures and recoveries.
///
/// ```
/// use fqos_server::FaultSchedule;
/// let s = FaultSchedule::new().fail(0, 20).recover(0, 40);
/// assert_eq!(s, FaultSchedule::parse("fail:0@20,recover:0@40").unwrap());
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FaultSchedule {
    events: Vec<FaultEvent>,
}

impl FaultSchedule {
    /// Empty schedule: all devices healthy forever.
    pub fn new() -> Self {
        FaultSchedule::default()
    }

    /// Script `device` to fail at the start of `window`.
    pub fn fail(mut self, device: usize, window: u64) -> Self {
        self.events.push(FaultEvent {
            device,
            window,
            kind: FaultKind::Fail,
        });
        self
    }

    /// Script `device` to recover at the start of `window`.
    pub fn recover(mut self, device: usize, window: u64) -> Self {
        self.events.push(FaultEvent {
            device,
            window,
            kind: FaultKind::Recover,
        });
        self
    }

    /// True when no events are scripted.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// The scripted events, in insertion order.
    pub fn events(&self) -> &[FaultEvent] {
        &self.events
    }

    /// Parse a schedule spec: comma- or whitespace-separated
    /// `fail:<device>@<window>` / `recover:<device>@<window>` tokens.
    pub fn parse(spec: &str) -> Result<Self, String> {
        let mut schedule = FaultSchedule::new();
        for token in spec.split([',', ' ', '\n', '\t']).filter(|t| !t.is_empty()) {
            let (kind, rest) = token.split_once(':').ok_or_else(|| {
                format!("'{token}': expected fail:<dev>@<win> or recover:<dev>@<win>")
            })?;
            let (dev, win) = rest
                .split_once('@')
                .ok_or_else(|| format!("'{token}': missing @<window>"))?;
            let device: usize = dev
                .parse()
                .map_err(|_| format!("'{token}': bad device '{dev}'"))?;
            let window: u64 = win
                .parse()
                .map_err(|_| format!("'{token}': bad window '{win}'"))?;
            schedule = match kind {
                "fail" => schedule.fail(device, window),
                "recover" => schedule.recover(device, window),
                other => return Err(format!("'{token}': unknown event '{other}'")),
            };
        }
        Ok(schedule)
    }

    /// Check every event against the deployment's device count.
    pub fn validate(&self, devices: usize) -> Result<(), String> {
        if devices > MAX_FAULT_DEVICES {
            return Err(format!(
                "fault plane covers at most {MAX_FAULT_DEVICES} devices, deployment has {devices}"
            ));
        }
        for e in &self.events {
            if e.device >= devices {
                return Err(format!(
                    "fault event names device {} but the array has only {devices}",
                    e.device
                ));
            }
        }
        Ok(())
    }
}

/// Events plus the timeline compiled from them: `timeline[i] = (w, mask)`
/// means `mask` holds for windows in `w .. timeline[i+1].0`.
#[derive(Debug, Default)]
struct PlaneInner {
    events: Vec<FaultEvent>,
    timeline: Vec<(u64, u64)>,
}

impl PlaneInner {
    fn recompile(&mut self) {
        // Stable by window: same-window events apply in injection order.
        self.events.sort_by_key(|e| e.window);
        self.timeline.clear();
        let mut mask = 0u64;
        for e in &self.events {
            match e.kind {
                FaultKind::Fail => mask |= 1 << e.device,
                FaultKind::Recover => mask &= !(1 << e.device),
            }
            match self.timeline.last_mut() {
                Some(last) if last.0 == e.window => last.1 = mask,
                _ => self.timeline.push((e.window, mask)),
            }
        }
    }

    fn mask_at(&self, window: u64) -> u64 {
        match self.timeline.partition_point(|&(w, _)| w <= window) {
            0 => 0,
            i => self.timeline[i - 1].1,
        }
    }
}

/// Shared device-health bitmap plus the degraded-serving audit counters.
///
/// Owned by the engine, consulted by the window ring on every admission and
/// seal. All counter reads/writes are relaxed atomics; the event timeline
/// sits behind one small mutex with a lock-free fast path while no fault
/// has ever been scripted or injected.
#[derive(Debug)]
pub struct FaultPlane {
    devices: usize,
    inner: Mutex<PlaneInner>,
    /// False until the first event exists: lets the healthy hot path skip
    /// the timeline lock entirely.
    any: AtomicBool,
    degraded_windows: AtomicU64,
    reroutes: AtomicU64,
    redispatches: AtomicU64,
    overloads: AtomicU64,
    lost: AtomicU64,
    unavailable_rejects: AtomicU64,
}

impl FaultPlane {
    /// Build the plane for `devices` devices from a scripted schedule.
    pub fn new(devices: usize, schedule: FaultSchedule) -> Result<Self, String> {
        schedule.validate(devices)?;
        let mut inner = PlaneInner {
            events: schedule.events,
            timeline: Vec::new(),
        };
        inner.recompile();
        let any = !inner.events.is_empty();
        Ok(FaultPlane {
            devices,
            inner: Mutex::new(inner),
            any: AtomicBool::new(any),
            degraded_windows: AtomicU64::new(0),
            reroutes: AtomicU64::new(0),
            redispatches: AtomicU64::new(0),
            overloads: AtomicU64::new(0),
            lost: AtomicU64::new(0),
            unavailable_rejects: AtomicU64::new(0),
        })
    }

    /// Device count covered by the bitmap.
    pub fn devices(&self) -> usize {
        self.devices
    }

    /// Bitmap of devices down during window `window` (bit `d` set = device
    /// `d` failed).
    pub fn mask_at(&self, window: u64) -> u64 {
        if !self.any.load(Ordering::Acquire) {
            return 0;
        }
        self.inner.lock().mask_at(window)
    }

    /// Conservative health view for admitting into window `window`:
    /// excludes devices down on arrival (`window`) *or* during the
    /// execution interval (`window + 1`).
    pub fn admission_mask(&self, window: u64) -> u64 {
        if !self.any.load(Ordering::Acquire) {
            return 0;
        }
        let inner = self.inner.lock();
        inner.mask_at(window) | inner.mask_at(window + 1)
    }

    /// Inject a live health transition taking effect at window `window`.
    pub fn inject(&self, device: usize, kind: FaultKind, window: u64) -> Result<(), String> {
        if device >= self.devices {
            return Err(format!(
                "device {device} out of range (array has {} devices)",
                self.devices
            ));
        }
        let mut inner = self.inner.lock();
        inner.events.push(FaultEvent {
            device,
            window,
            kind,
        });
        inner.recompile();
        self.any.store(true, Ordering::Release);
        Ok(())
    }

    /// Devices down during `window`, as indices.
    pub fn failed_devices(&self, window: u64) -> Vec<usize> {
        let mask = self.mask_at(window);
        (0..self.devices).filter(|d| mask >> d & 1 == 1).collect()
    }

    /// The tightened per-window capacity while `mask` is down:
    /// `M · live_devices` — the degraded analogue of `S(M)` the admission
    /// path enforces via the degraded feasibility graph.
    pub fn degraded_limit(&self, mask: u64, accesses: usize) -> usize {
        accesses * (self.devices - mask.count_ones() as usize)
    }

    pub(crate) fn note_degraded_window(&self) {
        self.degraded_windows.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn note_reroute(&self) {
        self.reroutes.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn note_redispatch(&self) {
        self.redispatches.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn note_overload(&self) {
        self.overloads.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn note_lost(&self) {
        self.lost.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn note_unavailable_reject(&self) {
        self.unavailable_rejects.fetch_add(1, Ordering::Relaxed);
    }

    /// Sealed windows whose execution interval had at least one device down.
    pub fn degraded_windows(&self) -> u64 {
        self.degraded_windows.load(Ordering::Relaxed)
    }

    /// Admitted requests steered away from a failed replica at admission
    /// time (the request named a down device; the feasibility graph routed
    /// it to a survivor).
    pub fn reroutes(&self) -> u64 {
        self.reroutes.load(Ordering::Relaxed)
    }

    /// Requests drained off a failing device at window seal and
    /// re-dispatched to a surviving replica within the same interval (live
    /// injections landing between admission and seal).
    pub fn redispatches(&self) -> u64 {
        self.redispatches.load(Ordering::Relaxed)
    }

    /// Degraded-window seal rebuilds that found no `M`-respecting slot for
    /// a request on any surviving replica and overloaded the least-loaded
    /// one instead. Can only happen when a *live* injection lands after
    /// admission and the already-admitted set is infeasible on the
    /// surviving subgraph; the request may then finish late — every such
    /// miss shows up in the deadline audit, never hidden. Scripted
    /// schedules keep this at zero by construction (the admission mask
    /// already covers the execution interval).
    pub fn overloads(&self) -> u64 {
        self.overloads.load(Ordering::Relaxed)
    }

    /// Admitted requests that could not be served because every replica
    /// was down at seal time. Zero whenever failures stay within the
    /// design's `c − 1` tolerance; never silently dropped — always counted
    /// here and audited by `finish()`.
    pub fn lost(&self) -> u64 {
        self.lost.load(Ordering::Relaxed)
    }

    /// Submissions rejected because every replica of the block was down
    /// across the admissible horizon (≥ `c` co-hosting failures).
    pub fn unavailable_rejects(&self) -> u64 {
        self.unavailable_rejects.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn schedule_parse_round_trips() {
        let s = FaultSchedule::parse("fail:2@10, recover:2@20 fail:0@15").unwrap();
        assert_eq!(
            s,
            FaultSchedule::new().fail(2, 10).recover(2, 20).fail(0, 15)
        );
        assert!(FaultSchedule::parse("").unwrap().is_empty());
        assert!(FaultSchedule::parse("explode:1@2").is_err());
        assert!(FaultSchedule::parse("fail:x@2").is_err());
        assert!(FaultSchedule::parse("fail:1").is_err());
        assert!(FaultSchedule::parse("1@2").is_err());
    }

    #[test]
    fn schedule_validation_checks_device_range() {
        let s = FaultSchedule::new().fail(9, 5);
        assert!(s.validate(9).is_err());
        assert!(s.validate(10).is_ok());
        assert!(FaultSchedule::new().validate(65).is_err());
    }

    #[test]
    fn masks_follow_the_timeline() {
        let plane = FaultPlane::new(
            4,
            FaultSchedule::new()
                .fail(1, 10)
                .fail(3, 12)
                .recover(1, 20)
                .recover(3, 20),
        )
        .unwrap();
        assert_eq!(plane.mask_at(0), 0);
        assert_eq!(plane.mask_at(9), 0);
        assert_eq!(plane.mask_at(10), 0b0010);
        assert_eq!(plane.mask_at(11), 0b0010);
        assert_eq!(plane.mask_at(12), 0b1010);
        assert_eq!(plane.mask_at(19), 0b1010);
        assert_eq!(plane.mask_at(20), 0);
        assert_eq!(plane.failed_devices(13), vec![1, 3]);
        assert_eq!(plane.degraded_limit(plane.mask_at(13), 2), 4);
    }

    #[test]
    fn admission_mask_is_the_arrival_exec_union() {
        // Fail at 10: window 9 admissions execute during 10, so window 9
        // already sees the device as down. Recover at 20: window 19
        // admissions execute during 20 but stay conservative.
        let plane = FaultPlane::new(2, FaultSchedule::new().fail(0, 10).recover(0, 20)).unwrap();
        assert_eq!(plane.admission_mask(8), 0);
        assert_eq!(plane.admission_mask(9), 1);
        assert_eq!(plane.admission_mask(15), 1);
        assert_eq!(plane.admission_mask(19), 1);
        assert_eq!(plane.admission_mask(20), 0);
    }

    #[test]
    fn healthy_plane_is_lock_free_zero() {
        let plane = FaultPlane::new(8, FaultSchedule::new()).unwrap();
        assert_eq!(plane.mask_at(123), 0);
        assert_eq!(plane.admission_mask(u64::MAX - 1), 0);
        assert!(plane.failed_devices(7).is_empty());
    }

    #[test]
    fn live_injection_extends_the_timeline() {
        let plane = FaultPlane::new(3, FaultSchedule::new().fail(2, 5)).unwrap();
        plane.inject(1, FaultKind::Fail, 7).unwrap();
        plane.inject(2, FaultKind::Recover, 8).unwrap();
        assert_eq!(plane.mask_at(6), 0b100);
        assert_eq!(plane.mask_at(7), 0b110);
        assert_eq!(plane.mask_at(8), 0b010);
        assert!(plane.inject(3, FaultKind::Fail, 0).is_err());
    }

    #[test]
    fn duplicate_events_are_idempotent() {
        let plane = FaultPlane::new(2, FaultSchedule::new().fail(0, 3).fail(0, 4)).unwrap();
        assert_eq!(plane.mask_at(4), 1);
        plane.inject(0, FaultKind::Recover, 9).unwrap();
        assert_eq!(plane.mask_at(9), 0);
    }
}
