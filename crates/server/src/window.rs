//! Interval window state: a ring of per-window admission slots.
//!
//! Window `w` covers simulated time `[w·T, (w+1)·T)`. Requests admitted
//! during `w` are *executed* in window `w+1` and must finish by the start
//! of `w+2` — that is the request's **interval deadline**. Because every
//! admitted set is schedulable in at most `M` accesses per device
//! (exactly, via incremental max-flow, or conservatively, via greedy EFT)
//! and `M · service ≤ T` is enforced by config validation, a sealed
//! window's guaranteed requests always meet their deadline — regardless of
//! how submitter threads interleave.
//!
//! Slots are reused modulo [`WINDOW_RING`]; the engine's watermark
//! protocol guarantees a slot is sealed and drained before its index comes
//! around again (enforced here with an occupancy check).

use crate::config::{AssignmentMode, WINDOW_RING};
use fqos_flashsim::IoRequest;
use fqos_maxflow::IncrementalRetrieval;
use parking_lot::Mutex;
use std::collections::HashMap;

/// A request parked in a window awaiting seal.
#[derive(Debug, Clone)]
struct Parked {
    tenant: u64,
    req: IoRequest,
    replicas: Vec<usize>,
    /// Chosen replica (set at admit time in EFT mode, at seal in flow mode).
    assigned: Option<usize>,
}

/// Mutable state of one in-flight window.
#[derive(Debug)]
struct SlotState {
    /// Which window this slot currently holds; meaningful iff `active`.
    window: u64,
    active: bool,
    /// Exact feasibility state (flow mode only).
    flow: Option<IncrementalRetrieval>,
    /// Per-device guaranteed load (EFT mode; flow mode derives it at seal).
    loads: Vec<u32>,
    /// Per-tenant admitted count, enforcing each tenant's reservation.
    per_tenant: HashMap<u64, u32>,
    guaranteed: Vec<Parked>,
    overflow: Vec<Parked>,
}

impl SlotState {
    fn reset_for(&mut self, window: u64, devices: usize, accesses: usize, mode: AssignmentMode) {
        self.window = window;
        self.active = true;
        self.flow = match mode {
            AssignmentMode::OptimalFlow => Some(IncrementalRetrieval::new(devices, accesses)),
            AssignmentMode::Eft => None,
        };
        self.loads.clear();
        self.loads.resize(devices, 0);
        self.per_tenant.clear();
        self.guaranteed.clear();
        self.overflow.clear();
    }
}

/// One dispatch-ready request out of a sealed window.
#[derive(Debug, Clone)]
pub(crate) struct SealedItem {
    pub tenant: u64,
    /// Request with its final `device` assignment filled in.
    pub req: IoRequest,
    /// Admitted under the deterministic guarantee (vs statistical overflow).
    pub guaranteed: bool,
}

/// The drained contents of one window, in dispatch order.
#[derive(Debug)]
pub(crate) struct SealedWindow {
    pub guaranteed: u64,
    pub total: u64,
    pub items: Vec<SealedItem>,
}

/// Ring of interval-admission slots shared by all submitter threads.
pub(crate) struct WindowRing {
    slots: Vec<Mutex<SlotState>>,
    devices: usize,
    accesses: usize,
    mode: AssignmentMode,
}

impl WindowRing {
    pub fn new(devices: usize, accesses: usize, mode: AssignmentMode) -> Self {
        WindowRing {
            slots: (0..WINDOW_RING)
                .map(|_| {
                    Mutex::new(SlotState {
                        window: 0,
                        active: false,
                        flow: None,
                        loads: Vec::new(),
                        per_tenant: HashMap::new(),
                        guaranteed: Vec::new(),
                        overflow: Vec::new(),
                    })
                })
                .collect(),
            devices,
            accesses,
            mode,
        }
    }

    fn slot(&self, window: u64) -> &Mutex<SlotState> {
        &self.slots[(window % WINDOW_RING as u64) as usize]
    }

    /// Lock `window`'s slot, (re-)initializing it on first touch. Panics if
    /// the slot still holds an unsealed *older* window — that means
    /// submitter clocks drifted further apart than the ring covers.
    fn locked(&self, window: u64) -> parking_lot::MutexGuard<'_, SlotState> {
        let mut s = self.slot(window).lock();
        if !s.active {
            s.reset_for(window, self.devices, self.accesses, self.mode);
        } else if s.window != window {
            assert!(
                s.window > window,
                "window ring wrapped: window {} still unsealed while {} arrives \
                 (submitter drift exceeds WINDOW_RING = {WINDOW_RING})",
                s.window,
                window,
            );
            // s.window > window would mean admitting into a sealed past
            // window; the engine's watermark protocol forbids it.
            panic!(
                "admission into window {window} after it was sealed and its slot reused by {}",
                s.window
            );
        }
        s
    }

    /// Try to admit one guaranteed request for `tenant` (with per-interval
    /// reservation `reserved`) into `window`. Returns `true` iff the tenant
    /// has reservation left in this window **and** the request fits the
    /// `M`-access schedule.
    pub fn try_admit(
        &self,
        window: u64,
        tenant: u64,
        reserved: usize,
        req: IoRequest,
        replicas: &[usize],
    ) -> bool {
        let mut s = self.locked(window);
        let used = s.per_tenant.get(&tenant).copied().unwrap_or(0);
        if used as usize >= reserved {
            return false;
        }
        let assigned = match self.mode {
            AssignmentMode::OptimalFlow => {
                if !s.flow.as_mut().expect("flow mode").try_add(replicas) {
                    return false;
                }
                None
            }
            AssignmentMode::Eft => {
                // Earliest finish time under equal service times = least
                // loaded replica.
                let &best = replicas
                    .iter()
                    .min_by_key(|&&d| s.loads[d])
                    .expect("non-empty replica tuple");
                if s.loads[best] as usize >= self.accesses {
                    return false;
                }
                s.loads[best] += 1;
                Some(best)
            }
        };
        *s.per_tenant.entry(tenant).or_insert(0) += 1;
        s.guaranteed.push(Parked {
            tenant,
            req,
            replicas: replicas.to_vec(),
            assigned,
        });
        true
    }

    /// Total requests (guaranteed + overflow) currently parked in `window`.
    pub fn admitted_total(&self, window: u64) -> usize {
        let s = self.locked(window);
        s.guaranteed.len() + s.overflow.len()
    }

    /// Park an overflow (statistically admitted) request in `window`,
    /// bypassing the reservation and feasibility checks. Device choice is
    /// deferred to seal, where overflow items pile onto the least-loaded
    /// replica after the guaranteed schedule.
    pub fn add_overflow(&self, window: u64, tenant: u64, req: IoRequest, replicas: &[usize]) {
        let mut s = self.locked(window);
        s.overflow.push(Parked {
            tenant,
            req,
            replicas: replicas.to_vec(),
            assigned: None,
        });
    }

    /// Seal `window`: fix every request's replica assignment and drain the
    /// slot for reuse. An untouched window seals to an empty result.
    pub fn seal(&self, window: u64) -> SealedWindow {
        let mut s = self.slot(window).lock();
        if !s.active || s.window != window {
            return SealedWindow {
                guaranteed: 0,
                total: 0,
                items: Vec::new(),
            };
        }
        s.active = false;

        let mut loads = std::mem::take(&mut s.loads);
        let guaranteed = std::mem::take(&mut s.guaranteed);
        let overflow = std::mem::take(&mut s.overflow);
        let flow = s.flow.take();
        drop(s);

        let mut items = Vec::with_capacity(guaranteed.len() + overflow.len());
        match self.mode {
            AssignmentMode::OptimalFlow => {
                let flow = flow.expect("flow mode");
                debug_assert_eq!(flow.len(), guaranteed.len());
                let assignments = flow.assignments();
                for (p, &d) in guaranteed.into_iter().zip(&assignments) {
                    loads[d] += 1;
                    let mut req = p.req;
                    req.device = d;
                    items.push(SealedItem {
                        tenant: p.tenant,
                        req,
                        guaranteed: true,
                    });
                }
            }
            AssignmentMode::Eft => {
                for p in guaranteed {
                    let d = p.assigned.expect("EFT assigns at admit time");
                    let mut req = p.req;
                    req.device = d;
                    items.push(SealedItem {
                        tenant: p.tenant,
                        req,
                        guaranteed: true,
                    });
                }
            }
        }
        let n_guaranteed = items.len() as u64;
        for p in overflow {
            let &d = p
                .replicas
                .iter()
                .min_by_key(|&&d| loads[d])
                .expect("non-empty replicas");
            loads[d] += 1;
            let mut req = p.req;
            req.device = d;
            items.push(SealedItem {
                tenant: p.tenant,
                req,
                guaranteed: false,
            });
        }
        SealedWindow {
            guaranteed: n_guaranteed,
            total: items.len() as u64,
            items,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fqos_flashsim::IoRequest;

    fn req(id: u64) -> IoRequest {
        IoRequest::read_block(id, 0, 0, id)
    }

    fn ring(mode: AssignmentMode) -> WindowRing {
        // 3 devices, M = 1; replica pairs below.
        WindowRing::new(3, 1, mode)
    }

    #[test]
    fn flow_mode_reassigns_to_fit() {
        let r = ring(AssignmentMode::OptimalFlow);
        // First request could sit on 0; second only fits on 0 → flow must
        // re-route the first to 1.
        assert!(r.try_admit(0, 1, 10, req(1), &[0, 1]));
        assert!(r.try_admit(0, 1, 10, req(2), &[0]));
        let sealed = r.seal(0);
        assert_eq!(sealed.guaranteed, 2);
        let devs: Vec<usize> = sealed.items.iter().map(|i| i.req.device).collect();
        assert!(devs.contains(&0) && devs.contains(&1));
    }

    #[test]
    fn eft_mode_can_strand_what_flow_accepts() {
        // Greedy ties break toward the first replica: request A on 0, then
        // B (only replica 0) is stranded — the documented EFT tradeoff.
        let eft = ring(AssignmentMode::Eft);
        assert!(eft.try_admit(0, 1, 10, req(1), &[0, 1]));
        assert!(!eft.try_admit(0, 1, 10, req(2), &[0]));

        let flow = ring(AssignmentMode::OptimalFlow);
        assert!(flow.try_admit(0, 1, 10, req(1), &[0, 1]));
        assert!(flow.try_admit(0, 1, 10, req(2), &[0]));
    }

    #[test]
    fn per_tenant_reservation_is_enforced() {
        let r = ring(AssignmentMode::OptimalFlow);
        assert!(r.try_admit(3, 7, 2, req(1), &[0, 1]));
        assert!(r.try_admit(3, 7, 2, req(2), &[1, 2]));
        assert!(
            !r.try_admit(3, 7, 2, req(3), &[2, 0]),
            "reservation of 2 exhausted"
        );
        assert!(
            r.try_admit(3, 8, 1, req(4), &[2, 0]),
            "other tenants unaffected"
        );
    }

    #[test]
    fn device_budget_is_enforced() {
        let r = ring(AssignmentMode::OptimalFlow);
        // M = 1 on 3 devices → at most 3 requests, whatever the replicas.
        assert!(r.try_admit(1, 1, 99, req(1), &[0, 1, 2]));
        assert!(r.try_admit(1, 1, 99, req(2), &[0, 1, 2]));
        assert!(r.try_admit(1, 1, 99, req(3), &[0, 1, 2]));
        assert!(!r.try_admit(1, 1, 99, req(4), &[0, 1, 2]));
        let sealed = r.seal(1);
        assert_eq!(sealed.total, 3);
        let mut devs: Vec<usize> = sealed.items.iter().map(|i| i.req.device).collect();
        devs.sort_unstable();
        assert_eq!(devs, vec![0, 1, 2]);
    }

    #[test]
    fn overflow_lands_on_least_loaded_replica_after_guaranteed() {
        let r = ring(AssignmentMode::OptimalFlow);
        assert!(r.try_admit(0, 1, 9, req(1), &[0]));
        r.add_overflow(0, 2, req(2), &[0, 1]);
        r.add_overflow(0, 2, req(3), &[0, 1]);
        let sealed = r.seal(0);
        assert_eq!(sealed.guaranteed, 1);
        assert_eq!(sealed.total, 3);
        assert!(!sealed.items[1].guaranteed);
        // First overflow goes to empty device 1, second balances back.
        assert_eq!(sealed.items[1].req.device, 1);
        assert_eq!(sealed.admitted_devices_sorted(), vec![0, 0, 1]);
    }

    impl SealedWindow {
        fn admitted_devices_sorted(&self) -> Vec<usize> {
            let mut v: Vec<usize> = self.items.iter().map(|i| i.req.device).collect();
            v.sort_unstable();
            v
        }
    }

    #[test]
    fn sealing_empty_and_reuse() {
        let r = ring(AssignmentMode::Eft);
        let sealed = r.seal(42);
        assert_eq!(sealed.total, 0);
        // Admit into w, seal, then the slot is reusable for w + RING.
        assert!(r.try_admit(5, 1, 1, req(1), &[0]));
        assert_eq!(r.seal(5).total, 1);
        let next = 5 + WINDOW_RING as u64;
        assert!(r.try_admit(next, 1, 1, req(2), &[0]));
        assert_eq!(r.seal(next).total, 1);
    }

    #[test]
    #[should_panic(expected = "window ring wrapped")]
    fn unsealed_slot_reuse_panics() {
        let r = ring(AssignmentMode::Eft);
        assert!(r.try_admit(0, 1, 1, req(1), &[0]));
        // Same slot index one full ring later, while window 0 is unsealed.
        let _ = r.try_admit(WINDOW_RING as u64, 1, 1, req(2), &[0]);
    }
}
