//! Interval window state: a ring of per-window admission slots.
//!
//! Window `w` covers simulated time `[w·T, (w+1)·T)`. Requests admitted
//! during `w` are *executed* in window `w+1` and must finish by the start
//! of `w+2` — that is the request's **interval deadline**. Because every
//! admitted set is schedulable in at most `M` accesses per device
//! (exactly, via incremental max-flow, or conservatively, via greedy EFT)
//! and `M · service ≤ T` is enforced by config validation, a sealed
//! window's guaranteed requests always meet their deadline — regardless of
//! how submitter threads interleave.
//!
//! # Degraded mode
//!
//! Every slot captures the [`FaultPlane`]'s conservative health view when
//! it opens: devices down on arrival or during the execution interval are
//! excluded from the feasibility graph ([`DegradedWindow`]), so admission
//! re-routes blocks away from failed devices and tightens the window's
//! capacity to the degraded bound `M · live`. At seal the *execution*
//! health view is re-read: items still assigned to a device that failed
//! meanwhile (live injection between admission and seal) are drained and
//! re-dispatched onto a surviving replica within the same interval; an
//! item with no surviving replica is counted lost — never silently
//! dropped.
//!
//! Slots are reused modulo the configured ring size
//! ([`crate::config::ServerConfig::ring_slots`]); the engine's watermark
//! protocol guarantees a slot is sealed and drained before its index comes
//! around again (enforced here with an occupancy check).

use crate::config::AssignmentMode;
use crate::fault::FaultPlane;
use crate::sync::{Arc, Mutex, MutexGuard};
use fqos_decluster::retrieval::{DegradedAdmit, DegradedWindow};
use fqos_flashsim::{IoOp, IoRequest};
use std::collections::HashMap;

/// A request parked in a window awaiting seal.
#[derive(Debug, Clone)]
struct Parked {
    tenant: u64,
    req: IoRequest,
    replicas: Vec<usize>,
    /// Chosen replica (set at admit time in EFT mode, at seal in flow mode).
    assigned: Option<usize>,
    /// Write fan-out only: the replica devices this write charged capacity
    /// on at admission (one feasibility unit each). Empty for reads.
    charged: Vec<usize>,
}

/// Outcome of one [`WindowRing::try_admit`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum AdmitResult {
    /// Admitted into the window's guaranteed set.
    Admitted,
    /// Every replica of the block sits on a device the scorer classifies
    /// `Slow` (but live): parked as best-effort overflow on the degraded
    /// replica set instead of promising a deadline we cannot keep — and
    /// instead of falsely rejecting a block whose data is still readable.
    AdmittedSlow,
    /// The window (or the tenant's reservation in it) is full; a later
    /// window may still take the request.
    Full,
    /// Every replica of the block is on a failed device for this window
    /// (≥ `c` co-hosting failures); delaying helps only if a recovery is
    /// scheduled within the horizon.
    Unavailable,
}

impl AdmitResult {
    /// True for the admitted variant (the engine matches variants directly;
    /// the tests read better with a predicate).
    #[cfg(test)]
    pub fn is_admitted(self) -> bool {
        self == AdmitResult::Admitted
    }
}

/// Mutable state of one in-flight window.
#[derive(Debug)]
struct SlotState {
    /// Which window this slot currently holds; meaningful iff `active`.
    window: u64,
    active: bool,
    /// Exclusion bitmap captured when the slot opened: fail-stop admission
    /// view plus devices the scorer classified `Slow` at open.
    admit_mask: u64,
    /// Fail-stop-only subset of `admit_mask`; distinguishes "data gone"
    /// (reject `Unavailable`) from "data slow" (serve best-effort).
    fail_mask: u64,
    /// Exact degraded feasibility state (flow mode only).
    flow: Option<DegradedWindow>,
    /// Per-device guaranteed load (EFT mode; flow mode derives it at seal).
    loads: Vec<u32>,
    /// Per-device GC-pressure reserve captured when the slot opened:
    /// capacity withheld from admission on devices under write
    /// amplification. In flow mode the reserve is materialized as pinned
    /// phantom units already inside `flow` (counted by `phantom`); in EFT
    /// mode it shrinks the per-device budget directly.
    reserve: Vec<u32>,
    /// Successful phantom reserve units injected into `flow` at reset;
    /// seal skips this many leading assignment entries.
    phantom: usize,
    /// Per-tenant admitted count, enforcing each tenant's reservation.
    per_tenant: HashMap<u64, u32>,
    guaranteed: Vec<Parked>,
    overflow: Vec<Parked>,
}

impl SlotState {
    #[allow(clippy::too_many_arguments)]
    fn reset_for(
        &mut self,
        window: u64,
        devices: usize,
        accesses: usize,
        mode: AssignmentMode,
        admit_mask: u64,
        fail_mask: u64,
        reserve: &[u32],
    ) {
        self.window = window;
        self.active = true;
        self.admit_mask = admit_mask;
        self.fail_mask = fail_mask;
        self.phantom = 0;
        self.flow = match mode {
            AssignmentMode::OptimalFlow => {
                let failed: Vec<bool> = (0..devices).map(|d| admit_mask >> d & 1 == 1).collect();
                let mut flow = DegradedWindow::new(devices, accesses, &failed);
                // Materialize the GC-pressure reserve as pinned phantom
                // units: capacity the flow can never hand to a request.
                for (d, &r) in reserve.iter().enumerate() {
                    if admit_mask >> d & 1 == 1 {
                        continue;
                    }
                    for _ in 0..r {
                        if flow.try_add(&[d]) == DegradedAdmit::Admitted {
                            self.phantom += 1;
                        }
                    }
                }
                Some(flow)
            }
            AssignmentMode::Eft => None,
        };
        self.loads.clear();
        self.loads.resize(devices, 0);
        self.reserve.clear();
        self.reserve.extend_from_slice(reserve);
        self.per_tenant.clear();
        self.guaranteed.clear();
        self.overflow.clear();
    }

    /// EFT-mode effective budget on `d` after the GC-pressure reserve.
    fn eft_cap(&self, d: usize, accesses: usize) -> usize {
        accesses.saturating_sub(self.reserve.get(d).copied().unwrap_or(0) as usize)
    }
}

/// One dispatch-ready request out of a sealed window.
#[derive(Debug, Clone)]
pub(crate) struct SealedItem {
    pub tenant: u64,
    /// Request with its final `device` assignment filled in.
    pub req: IoRequest,
    /// Admitted under the deterministic guarantee (vs statistical overflow).
    pub guaranteed: bool,
    /// Bitmap of every replica device holding this block — the worker's
    /// hedge candidates beyond the assigned one.
    pub replica_mask: u64,
    /// Write fan-out only: `(group, fanout)` — this item is one of
    /// `fanout` replica copies of logical write `group` within its window.
    /// The engine settles the logical write once all copies land
    /// (all-must-settle). `None` for reads.
    pub write_group: Option<(u32, u32)>,
}

/// The drained contents of one window, in dispatch order.
#[derive(Debug)]
pub(crate) struct SealedWindow {
    /// Logical guaranteed admissions (a write counts once, not per copy).
    pub guaranteed: u64,
    /// Logical total admissions; `items.len()` may exceed this when writes
    /// fanned out to several replica copies.
    pub total: u64,
    pub items: Vec<SealedItem>,
    /// Tenant of each admission unservable at seal (every replica down),
    /// one entry per lost request, in drain order — the engine settles
    /// these as `Lost` in per-tenant counters and the WAL.
    pub lost: Vec<u64>,
}

/// Ring of interval-admission slots shared by all submitter threads.
pub(crate) struct WindowRing {
    slots: Vec<Mutex<SlotState>>,
    devices: usize,
    accesses: usize,
    mode: AssignmentMode,
    fault: Arc<FaultPlane>,
    /// Whether seal drains items off devices the scorer detected `Slow`
    /// *after* admission (the fail-slow reaction path; off when hedging is
    /// disabled so the unmitigated cost is observable).
    failslow: bool,
}

impl WindowRing {
    pub fn new(
        ring_slots: usize,
        devices: usize,
        accesses: usize,
        mode: AssignmentMode,
        fault: Arc<FaultPlane>,
        failslow: bool,
    ) -> Self {
        WindowRing {
            slots: (0..ring_slots)
                .map(|_| {
                    Mutex::new(SlotState {
                        window: 0,
                        active: false,
                        admit_mask: 0,
                        fail_mask: 0,
                        flow: None,
                        loads: Vec::new(),
                        reserve: Vec::new(),
                        phantom: 0,
                        per_tenant: HashMap::new(),
                        guaranteed: Vec::new(),
                        overflow: Vec::new(),
                    })
                })
                .collect(),
            devices,
            accesses,
            mode,
            fault,
            failslow,
        }
    }

    fn slot(&self, window: u64) -> &Mutex<SlotState> {
        &self.slots[(window % self.slots.len() as u64) as usize]
    }

    /// Lock `window`'s slot, (re-)initializing it on first touch. Panics if
    /// the slot still holds an unsealed *older* window — that means
    /// submitter clocks drifted further apart than the ring covers.
    fn locked(&self, window: u64) -> MutexGuard<'_, SlotState> {
        let mut s = self.slot(window).lock();
        if !s.active {
            // Fail-stop devices are excluded outright; detected-slow
            // devices are steered around too (they are live — blocks with
            // no other copy still fall back to them, see try_admit).
            let fail = self.fault.admission_mask(window);
            let mask = fail | self.fault.live_slow_mask();
            let reserve: Vec<u32> = (0..self.devices)
                .map(|d| self.fault.gc_reserve(d, self.accesses) as u32)
                .collect();
            s.reset_for(
                window,
                self.devices,
                self.accesses,
                self.mode,
                mask,
                fail,
                &reserve,
            );
        } else if s.window != window {
            assert!(
                s.window > window,
                "window ring wrapped: window {} still unsealed while {} arrives \
                 (submitter drift exceeds the ring size {})",
                s.window,
                window,
                self.slots.len(),
            );
            // s.window > window would mean admitting into a sealed past
            // window; the engine's watermark protocol forbids it.
            panic!(
                "admission into window {window} after it was sealed and its slot reused by {}",
                s.window
            );
        }
        s
    }

    /// Try to admit one guaranteed request for `tenant` (with per-interval
    /// reservation `reserved`) into `window`. Admits iff the tenant has
    /// reservation left in this window **and** the request fits the
    /// `M`-access schedule over the devices live for this window.
    pub fn try_admit(
        &self,
        window: u64,
        tenant: u64,
        reserved: usize,
        req: IoRequest,
        replicas: &[usize],
    ) -> AdmitResult {
        let mut s = self.locked(window);
        let used = s.per_tenant.get(&tenant).copied().unwrap_or(0);
        if used as usize >= reserved {
            return AdmitResult::Full;
        }
        if req.op == IoOp::Write {
            return self.try_admit_write(&mut s, tenant, req, replicas);
        }
        let degraded = s.admit_mask != 0 && replicas.iter().any(|&d| s.admit_mask >> d & 1 == 1);
        let assigned = match self.mode {
            AssignmentMode::OptimalFlow => {
                match s.flow.as_mut().expect("flow mode").try_add(replicas) {
                    DegradedAdmit::Admitted => None,
                    DegradedAdmit::Infeasible => return AdmitResult::Full,
                    DegradedAdmit::Unavailable => {
                        return Self::admit_on_slow_only(&mut s, tenant, req, replicas)
                    }
                }
            }
            AssignmentMode::Eft => {
                // Earliest finish time under equal service times = least
                // loaded replica, among the window's live devices.
                let mask = s.admit_mask;
                let best = replicas
                    .iter()
                    .copied()
                    .filter(|&d| mask >> d & 1 == 0)
                    .min_by_key(|&d| s.loads[d]);
                let Some(best) = best else {
                    return Self::admit_on_slow_only(&mut s, tenant, req, replicas);
                };
                if s.loads[best] as usize >= s.eft_cap(best, self.accesses) {
                    return AdmitResult::Full;
                }
                s.loads[best] += 1;
                Some(best)
            }
        };
        if degraded {
            self.fault.note_reroute();
        }
        *s.per_tenant.entry(tenant).or_insert(0) += 1;
        s.guaranteed.push(Parked {
            tenant,
            req,
            replicas: replicas.to_vec(),
            assigned,
            charged: Vec::new(),
        });
        AdmitResult::Admitted
    }

    /// Write admission: a replicated write consumes one feasibility unit on
    /// **every** replica the window can schedule (`c×` capacity), not one
    /// of `c` — a copy must land on each device. Replicas excluded by the
    /// admission view (failed or detected-slow) are not charged; the
    /// fan-out at seal still targets all replicas and the worker's bounded
    /// retry decides whether an excluded copy settles or the logical write
    /// is charged `write_lost`.
    ///
    /// Writes are never parked as best-effort overflow: when the window
    /// cannot carry the full fan-out the write is `Full` — the engine
    /// delays it within the horizon or sheds it, protecting read deadlines.
    fn try_admit_write(
        &self,
        s: &mut SlotState,
        tenant: u64,
        req: IoRequest,
        replicas: &[usize],
    ) -> AdmitResult {
        let charged: Vec<usize> = replicas
            .iter()
            .copied()
            .filter(|&d| s.admit_mask >> d & 1 == 0)
            .collect();
        if charged.is_empty() {
            // Nothing schedulable: all replicas failed is a data-path
            // refusal; all merely slow is congestion — delay, don't lose.
            return if replicas.iter().all(|&d| s.fail_mask >> d & 1 == 1) {
                AdmitResult::Unavailable
            } else {
                AdmitResult::Full
            };
        }
        let degraded = s.admit_mask != 0 && replicas.iter().any(|&d| s.admit_mask >> d & 1 == 1);
        match self.mode {
            AssignmentMode::OptimalFlow => {
                let flow = s.flow.as_mut().expect("flow mode");
                // Charge one pinned unit per replica; the incremental flow
                // cannot retract units, so snapshot for exact rollback when
                // a later replica does not fit.
                let snapshot = flow.clone();
                for &d in &charged {
                    if flow.try_add(&[d]) != DegradedAdmit::Admitted {
                        *flow = snapshot;
                        return AdmitResult::Full;
                    }
                }
            }
            AssignmentMode::Eft => {
                if charged
                    .iter()
                    .any(|&d| s.loads[d] as usize >= s.eft_cap(d, self.accesses))
                {
                    return AdmitResult::Full;
                }
                for &d in &charged {
                    s.loads[d] += 1;
                }
            }
        }
        if degraded {
            self.fault.note_reroute();
        }
        *s.per_tenant.entry(tenant).or_insert(0) += 1;
        s.guaranteed.push(Parked {
            tenant,
            req,
            replicas: replicas.to_vec(),
            assigned: None,
            charged,
        });
        AdmitResult::Admitted
    }

    /// Every replica of the block is excluded for this window. If at least
    /// one is merely detected-slow (live), park the block as best-effort
    /// overflow on the live set — no deadline is promised on a slow device,
    /// but the data is readable and must not be rejected `Unavailable`.
    fn admit_on_slow_only(
        s: &mut SlotState,
        tenant: u64,
        req: IoRequest,
        replicas: &[usize],
    ) -> AdmitResult {
        if replicas.iter().all(|&d| s.fail_mask >> d & 1 == 1) {
            return AdmitResult::Unavailable;
        }
        s.overflow.push(Parked {
            tenant,
            req,
            replicas: replicas.to_vec(),
            assigned: None,
            charged: Vec::new(),
        });
        AdmitResult::AdmittedSlow
    }

    /// Total requests (guaranteed + overflow) currently parked in `window`.
    pub fn admitted_total(&self, window: u64) -> usize {
        let s = self.locked(window);
        s.guaranteed.len() + s.overflow.len()
    }

    /// Park an overflow (statistically admitted) request in `window`,
    /// bypassing the reservation and feasibility checks. Device choice is
    /// deferred to seal, where overflow items pile onto the least-loaded
    /// surviving replica after the guaranteed schedule. Returns `false`
    /// (and parks nothing) when every replica is down for this window.
    pub fn add_overflow(
        &self,
        window: u64,
        tenant: u64,
        req: IoRequest,
        replicas: &[usize],
    ) -> bool {
        // Writes are never admitted statistically: an overflow write would
        // consume `c×` device capacity with no feasibility backing, eating
        // directly into guaranteed read headroom. The engine delays or
        // sheds writes instead.
        if req.op == IoOp::Write {
            return false;
        }
        let mut s = self.locked(window);
        // Only an all-*failed* replica set refuses: slow devices are live
        // and can still carry best-effort work.
        if s.fail_mask != 0 && replicas.iter().all(|&d| s.fail_mask >> d & 1 == 1) {
            return false;
        }
        s.overflow.push(Parked {
            tenant,
            req,
            replicas: replicas.to_vec(),
            assigned: None,
            charged: Vec::new(),
        });
        true
    }

    /// Seal `window`: fix every request's replica assignment against the
    /// final execution-interval health view and drain the slot for reuse.
    /// An untouched window seals to an empty result.
    pub fn seal(&self, window: u64) -> SealedWindow {
        // The execution interval of window `w` is window `w + 1`; re-read
        // its health now in case a live injection landed after admission.
        let exec_mask = self.fault.mask_at(window + 1);
        // When the fail-slow reaction path is on, devices the scorer
        // condemned after this window admitted drain too: their queued
        // blocks move to healthy replicas (deadline-aware re-dispatch,
        // reusing the fail-stop rebuild machinery below).
        let slow_mask = if self.failslow {
            self.fault.live_slow_mask() & !exec_mask
        } else {
            0
        };
        let drain_mask = exec_mask | slow_mask;
        if exec_mask != 0 {
            self.fault.note_degraded_window();
        }
        let mut s = self.slot(window).lock();
        if !s.active || s.window != window {
            return SealedWindow {
                guaranteed: 0,
                total: 0,
                items: Vec::new(),
                lost: Vec::new(),
            };
        }
        s.active = false;

        let guaranteed = std::mem::take(&mut s.guaranteed);
        let overflow = std::mem::take(&mut s.overflow);
        let flow = s.flow.take();
        let phantom = s.phantom;
        drop(s);

        // Final per-device loads are rebuilt from scratch so seal-time
        // re-dispatch balances against what actually lands on survivors.
        let mut loads = vec![0u32; self.devices];
        let mut items = Vec::with_capacity(guaranteed.len() + overflow.len());
        let mut lost: Vec<u64> = Vec::new();
        // Logical guaranteed admissions: a write counts once even though it
        // emits one item per replica copy below.
        let n_guaranteed = guaranteed.len() as u64;
        // Per-parked preliminary assignment. The flow's assignment list
        // leads with the GC-reserve phantom units, then one entry per
        // admitted unit in admission order: reads consumed one unit, writes
        // one per charged replica. Writes ignore their entries (they fan
        // out to every replica regardless), so skip those slots.
        let prelim: Vec<Option<usize>> = match self.mode {
            AssignmentMode::OptimalFlow => {
                let flow = flow.expect("flow mode");
                let assigns = flow.assignments();
                debug_assert_eq!(
                    assigns.len(),
                    phantom
                        + guaranteed
                            .iter()
                            .map(|p| {
                                if p.req.op == IoOp::Write {
                                    p.charged.len()
                                } else {
                                    1
                                }
                            })
                            .sum::<usize>()
                );
                let mut next = assigns.into_iter().skip(phantom);
                guaranteed
                    .iter()
                    .map(|p| {
                        if p.req.op == IoOp::Write {
                            next.by_ref().take(p.charged.len()).for_each(drop);
                            None
                        } else {
                            // One unit per admitted read remains (length
                            // check above); a None here surfaces at the
                            // assigned-request invariant when emitting.
                            next.next()
                        }
                    })
                    .collect()
            }
            AssignmentMode::Eft => guaranteed.iter().map(|p| p.assigned).collect(),
        };
        // Sequential id for each logical write within this window; the
        // engine keys its all-must-settle aggregation on it.
        let mut write_groups = 0u32;
        if drain_mask == 0 {
            // Healthy execution interval: the admission-time assignments
            // stand as-is.
            for (p, prelim) in guaranteed.into_iter().zip(prelim) {
                if p.req.op == IoOp::Write {
                    fan_out_write(&mut items, &mut loads, &mut write_groups, &p);
                    continue;
                }
                let d = prelim.expect("guaranteed request must be assigned");
                loads[d] += 1;
                let replica_mask = mask_of(&p.replicas);
                let mut req = p.req;
                req.device = d;
                items.push(SealedItem {
                    tenant: p.tenant,
                    req,
                    guaranteed: true,
                    replica_mask,
                    write_group: None,
                });
            }
        } else {
            // A device is down (or condemned slow) for the execution
            // interval — a live injection or a scorer verdict landed after
            // admission. Patching drained items one by one onto the
            // least-loaded survivor can overload it past `M`; instead
            // rebuild the whole window's schedule on the surviving
            // subgraph, so whenever a feasible `≤ M` per-device schedule
            // exists the rebuilt one meets every deadline.
            let failed: Vec<bool> = (0..self.devices)
                .map(|d| drain_mask >> d & 1 == 1)
                .collect();
            let mut rebuilt = DegradedWindow::new(self.devices, self.accesses, &failed);
            // Writes keep their full fan-out whatever the drain: pre-charge
            // the rebuilt schedule with one pinned unit per surviving write
            // replica so read re-dispatch packs around the write load
            // instead of overcommitting the survivors. Pinned adds on
            // drained devices report `Unavailable` and charge nothing.
            let mut next = 0usize;
            for p in &guaranteed {
                if p.req.op != IoOp::Write {
                    continue;
                }
                for &d in &p.replicas {
                    if rebuilt.try_add(&[d]) == DegradedAdmit::Admitted {
                        next += 1;
                    }
                }
            }
            let placements: Vec<Option<DegradedAdmit>> = guaranteed
                .iter()
                .map(|p| {
                    if p.req.op == IoOp::Write {
                        None
                    } else {
                        Some(rebuilt.try_add(&p.replicas))
                    }
                })
                .collect();
            let rebuilt_assign = rebuilt.assignments();
            for ((p, prelim), placement) in guaranteed.into_iter().zip(prelim).zip(placements) {
                let Some(placement) = placement else {
                    fan_out_write(&mut items, &mut loads, &mut write_groups, &p);
                    continue;
                };
                let d = match placement {
                    DegradedAdmit::Admitted => {
                        let d = rebuilt_assign[next];
                        next += 1;
                        // One audit note per moved item: off a failed
                        // device = redispatch, off a slow one = retry.
                        if prelim.is_some_and(|pd| exec_mask >> pd & 1 == 1) {
                            self.fault.note_redispatch();
                        } else if prelim.is_some_and(|pd| slow_mask >> pd & 1 == 1) {
                            self.fault.note_retry();
                        }
                        d
                    }
                    DegradedAdmit::Infeasible => {
                        // No `M`-respecting slot on any survivor. With a
                        // pure fail-stop drain, overload the least-loaded
                        // live replica rather than drop (PR 2 semantics) —
                        // may finish late, counted and audited, never
                        // hidden. When the squeeze comes from excluding a
                        // live-but-slow device, the fallback below may
                        // land back on it; that is a retry, not an
                        // overload of a healthy survivor.
                        if slow_mask == 0 {
                            self.fault.note_overload();
                        } else {
                            self.fault.note_retry();
                        }
                        p.replicas
                            .iter()
                            .copied()
                            .filter(|&d| exec_mask >> d & 1 == 0)
                            .min_by_key(|&d| loads[d])
                            .expect("Infeasible implies a live replica exists")
                    }
                    DegradedAdmit::Unavailable => {
                        // Every replica failed or condemned slow. A slow
                        // replica is still live: keep the block on the
                        // least-loaded one (the worker-side hedge and
                        // deadline audit pick it up) instead of losing
                        // readable data. Only an all-failed set — beyond
                        // the c − 1 tolerance — is lost: counted, audited,
                        // never silently dropped.
                        let live = p
                            .replicas
                            .iter()
                            .copied()
                            .filter(|&d| exec_mask >> d & 1 == 0)
                            .min_by_key(|&d| loads[d]);
                        match live {
                            Some(d) => {
                                self.fault.note_retry();
                                d
                            }
                            None => {
                                self.fault.note_lost();
                                lost.push(p.tenant);
                                continue;
                            }
                        }
                    }
                };
                loads[d] += 1;
                let replica_mask = mask_of(&p.replicas);
                let mut req = p.req;
                req.device = d;
                items.push(SealedItem {
                    tenant: p.tenant,
                    req,
                    guaranteed: true,
                    replica_mask,
                    write_group: None,
                });
            }
        }
        let n_guaranteed = n_guaranteed - lost.len() as u64;
        let mut n_overflow = 0u64;
        for p in overflow {
            // Prefer replicas that are neither failed nor detected-slow;
            // fall back to a slow-but-live one before declaring loss.
            let pick = p
                .replicas
                .iter()
                .copied()
                .filter(|&d| drain_mask >> d & 1 == 0)
                .min_by_key(|&d| loads[d])
                .or_else(|| {
                    p.replicas
                        .iter()
                        .copied()
                        .filter(|&d| exec_mask >> d & 1 == 0)
                        .min_by_key(|&d| loads[d])
                });
            let Some(d) = pick else {
                self.fault.note_lost();
                lost.push(p.tenant);
                continue;
            };
            loads[d] += 1;
            let replica_mask = mask_of(&p.replicas);
            let mut req = p.req;
            req.device = d;
            n_overflow += 1;
            items.push(SealedItem {
                tenant: p.tenant,
                req,
                guaranteed: false,
                replica_mask,
                write_group: None,
            });
        }
        SealedWindow {
            guaranteed: n_guaranteed,
            total: n_guaranteed + n_overflow,
            items,
            lost,
        }
    }
}

/// Replica index list → bitmap.
fn mask_of(replicas: &[usize]) -> u64 {
    replicas.iter().fold(0u64, |m, &d| m | 1 << d)
}

/// Emit one [`SealedItem`] per replica copy of a logical write, all tagged
/// with the same `(group, fanout)` so the engine settles the write once
/// every copy lands. The fan-out deliberately includes replicas the window
/// did not charge (failed/slow at admission): the worker's bounded retry
/// against the live health view decides each copy's fate.
fn fan_out_write(
    items: &mut Vec<SealedItem>,
    loads: &mut [u32],
    write_groups: &mut u32,
    p: &Parked,
) {
    let group = *write_groups;
    *write_groups += 1;
    let fanout = p.replicas.len() as u32;
    let replica_mask = mask_of(&p.replicas);
    for &d in &p.replicas {
        loads[d] += 1;
        let mut req = p.req;
        req.device = d;
        items.push(SealedItem {
            tenant: p.tenant,
            req,
            guaranteed: true,
            replica_mask,
            write_group: Some((group, fanout)),
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::WINDOW_RING;
    use crate::fault::{FaultKind, FaultSchedule};
    use fqos_flashsim::IoRequest;

    fn req(id: u64) -> IoRequest {
        IoRequest::read_block(id, 0, 0, id)
    }

    fn healthy(devices: usize) -> Arc<FaultPlane> {
        Arc::new(FaultPlane::new(devices, FaultSchedule::new()).unwrap())
    }

    fn ring(mode: AssignmentMode) -> WindowRing {
        // 3 devices, M = 1; replica pairs below.
        WindowRing::new(WINDOW_RING, 3, 1, mode, healthy(3), true)
    }

    #[test]
    fn flow_mode_reassigns_to_fit() {
        let r = ring(AssignmentMode::OptimalFlow);
        // First request could sit on 0; second only fits on 0 → flow must
        // re-route the first to 1.
        assert!(r.try_admit(0, 1, 10, req(1), &[0, 1]).is_admitted());
        assert!(r.try_admit(0, 1, 10, req(2), &[0]).is_admitted());
        let sealed = r.seal(0);
        assert_eq!(sealed.guaranteed, 2);
        let devs: Vec<usize> = sealed.items.iter().map(|i| i.req.device).collect();
        assert!(devs.contains(&0) && devs.contains(&1));
    }

    #[test]
    fn eft_mode_can_strand_what_flow_accepts() {
        // Greedy ties break toward the first replica: request A on 0, then
        // B (only replica 0) is stranded — the documented EFT tradeoff.
        let eft = ring(AssignmentMode::Eft);
        assert!(eft.try_admit(0, 1, 10, req(1), &[0, 1]).is_admitted());
        assert_eq!(eft.try_admit(0, 1, 10, req(2), &[0]), AdmitResult::Full);

        let flow = ring(AssignmentMode::OptimalFlow);
        assert!(flow.try_admit(0, 1, 10, req(1), &[0, 1]).is_admitted());
        assert!(flow.try_admit(0, 1, 10, req(2), &[0]).is_admitted());
    }

    #[test]
    fn per_tenant_reservation_is_enforced() {
        let r = ring(AssignmentMode::OptimalFlow);
        assert!(r.try_admit(3, 7, 2, req(1), &[0, 1]).is_admitted());
        assert!(r.try_admit(3, 7, 2, req(2), &[1, 2]).is_admitted());
        assert_eq!(
            r.try_admit(3, 7, 2, req(3), &[2, 0]),
            AdmitResult::Full,
            "reservation of 2 exhausted"
        );
        assert!(
            r.try_admit(3, 8, 1, req(4), &[2, 0]).is_admitted(),
            "other tenants unaffected"
        );
    }

    #[test]
    fn device_budget_is_enforced() {
        let r = ring(AssignmentMode::OptimalFlow);
        // M = 1 on 3 devices → at most 3 requests, whatever the replicas.
        assert!(r.try_admit(1, 1, 99, req(1), &[0, 1, 2]).is_admitted());
        assert!(r.try_admit(1, 1, 99, req(2), &[0, 1, 2]).is_admitted());
        assert!(r.try_admit(1, 1, 99, req(3), &[0, 1, 2]).is_admitted());
        assert_eq!(r.try_admit(1, 1, 99, req(4), &[0, 1, 2]), AdmitResult::Full);
        let sealed = r.seal(1);
        assert_eq!(sealed.total, 3);
        let mut devs: Vec<usize> = sealed.items.iter().map(|i| i.req.device).collect();
        devs.sort_unstable();
        assert_eq!(devs, vec![0, 1, 2]);
    }

    #[test]
    fn overflow_lands_on_least_loaded_replica_after_guaranteed() {
        let r = ring(AssignmentMode::OptimalFlow);
        assert!(r.try_admit(0, 1, 9, req(1), &[0]).is_admitted());
        assert!(r.add_overflow(0, 2, req(2), &[0, 1]));
        assert!(r.add_overflow(0, 2, req(3), &[0, 1]));
        let sealed = r.seal(0);
        assert_eq!(sealed.guaranteed, 1);
        assert_eq!(sealed.total, 3);
        assert!(!sealed.items[1].guaranteed);
        // First overflow goes to empty device 1, second balances back.
        assert_eq!(sealed.items[1].req.device, 1);
        assert_eq!(sealed.admitted_devices_sorted(), vec![0, 0, 1]);
    }

    impl SealedWindow {
        fn admitted_devices_sorted(&self) -> Vec<usize> {
            let mut v: Vec<usize> = self.items.iter().map(|i| i.req.device).collect();
            v.sort_unstable();
            v
        }
    }

    #[test]
    fn sealing_empty_and_reuse() {
        let r = ring(AssignmentMode::Eft);
        let sealed = r.seal(42);
        assert_eq!(sealed.total, 0);
        // Admit into w, seal, then the slot is reusable for w + RING.
        assert!(r.try_admit(5, 1, 1, req(1), &[0]).is_admitted());
        assert_eq!(r.seal(5).total, 1);
        let next = 5 + WINDOW_RING as u64;
        assert!(r.try_admit(next, 1, 1, req(2), &[0]).is_admitted());
        assert_eq!(r.seal(next).total, 1);
    }

    #[test]
    #[should_panic(expected = "window ring wrapped")]
    fn unsealed_slot_reuse_panics() {
        let r = ring(AssignmentMode::Eft);
        assert!(r.try_admit(0, 1, 1, req(1), &[0]).is_admitted());
        // Same slot index one full ring later, while window 0 is unsealed.
        let _ = r.try_admit(WINDOW_RING as u64, 1, 1, req(2), &[0]);
    }

    #[test]
    fn scripted_failure_routes_admission_around_the_dead_device() {
        let fault =
            Arc::new(FaultPlane::new(3, FaultSchedule::new().fail(0, 4).recover(0, 6)).unwrap());
        let r = WindowRing::new(
            WINDOW_RING,
            3,
            1,
            AssignmentMode::OptimalFlow,
            Arc::clone(&fault),
            true,
        );
        // Window 3 executes during window 4 (device 0 down): the request
        // naming device 0 must land on a survivor at admission time.
        assert!(r.try_admit(3, 1, 9, req(1), &[0, 1]).is_admitted());
        let sealed = r.seal(3);
        assert_eq!(sealed.total, 1);
        assert_eq!(sealed.items[0].req.device, 1);
        assert_eq!(fault.reroutes(), 1);
        assert_eq!(fault.redispatches(), 0, "scripted faults never redispatch");
        assert_eq!(fault.lost(), 0);
        // Window 6 executes during 7: recovered, full capacity back.
        assert!(r.try_admit(6, 1, 9, req(2), &[0]).is_admitted());
        assert_eq!(r.seal(6).items[0].req.device, 0);
    }

    #[test]
    fn all_replicas_down_is_unavailable_not_full() {
        let fault =
            Arc::new(FaultPlane::new(3, FaultSchedule::new().fail(0, 0).fail(1, 0)).unwrap());
        let r = WindowRing::new(
            WINDOW_RING,
            3,
            1,
            AssignmentMode::OptimalFlow,
            Arc::clone(&fault),
            true,
        );
        assert_eq!(
            r.try_admit(0, 1, 9, req(1), &[0, 1]),
            AdmitResult::Unavailable
        );
        assert!(r.try_admit(0, 1, 9, req(2), &[1, 2]).is_admitted());
        assert!(
            !r.add_overflow(0, 1, req(3), &[0, 1]),
            "overflow refused too"
        );
        let eft = WindowRing::new(WINDOW_RING, 3, 1, AssignmentMode::Eft, fault, true);
        assert_eq!(
            eft.try_admit(0, 1, 9, req(4), &[0, 1]),
            AdmitResult::Unavailable
        );
    }

    #[test]
    fn live_injection_drains_the_failing_device_at_seal() {
        let fault = Arc::new(FaultPlane::new(3, FaultSchedule::new()).unwrap());
        let r = WindowRing::new(
            WINDOW_RING,
            3,
            1,
            AssignmentMode::Eft,
            Arc::clone(&fault),
            true,
        );
        // EFT assigns at admit time; ties break toward replica 0.
        assert!(r.try_admit(0, 1, 9, req(1), &[0, 1]).is_admitted());
        // Device 0 dies before the execution interval (window 1).
        fault.inject(0, FaultKind::Fail, 1).unwrap();
        let sealed = r.seal(0);
        assert_eq!(sealed.total, 1);
        assert_eq!(sealed.items[0].req.device, 1, "re-dispatched to survivor");
        assert_eq!(fault.redispatches(), 1);
        assert_eq!(fault.lost(), 0);
    }

    #[test]
    fn items_with_no_surviving_replica_are_counted_lost() {
        let fault = Arc::new(FaultPlane::new(3, FaultSchedule::new()).unwrap());
        let r = WindowRing::new(
            WINDOW_RING,
            3,
            1,
            AssignmentMode::Eft,
            Arc::clone(&fault),
            true,
        );
        assert!(r.try_admit(0, 1, 9, req(1), &[0, 1]).is_admitted());
        assert!(r.add_overflow(0, 1, req(2), &[0]));
        fault.inject(0, FaultKind::Fail, 1).unwrap();
        fault.inject(1, FaultKind::Fail, 1).unwrap();
        let sealed = r.seal(0);
        assert_eq!(sealed.total, 0, "both replicas down: nothing dispatchable");
        assert_eq!(fault.lost(), 2);
        assert_eq!(fault.degraded_windows(), 1);
    }

    /// Feed the scorer enough samples to condemn `device`: a healthy
    /// baseline, then a promote-streak of 10× outliers.
    fn condemn(plane: &FaultPlane, device: usize) {
        const BASE: u64 = 132_507;
        for _ in 0..4 {
            plane.observe(device, BASE, 0);
        }
        for _ in 0..3 {
            plane.observe(device, BASE * 10, 0);
        }
        assert_eq!(plane.health_state(device), crate::fault::DeviceHealth::Slow);
        assert_eq!(plane.live_slow_mask() >> device & 1, 1);
    }

    #[test]
    fn scorer_condemned_device_is_excluded_from_new_admissions() {
        let fault = healthy(3);
        condemn(&fault, 0);
        let r = WindowRing::new(
            WINDOW_RING,
            3,
            1,
            AssignmentMode::Eft,
            Arc::clone(&fault),
            true,
        );
        // EFT would tie-break toward 0; the live-slow bit forces 1.
        assert!(r.try_admit(0, 1, 9, req(1), &[0, 1]).is_admitted());
        let sealed = r.seal(0);
        assert_eq!(sealed.total, 1);
        assert_eq!(sealed.items[0].req.device, 1, "routed off the slow device");
        assert_eq!(fault.reroutes(), 1);
        assert_eq!(
            fault.retries(),
            0,
            "avoided at admission, not re-dispatched"
        );
    }

    #[test]
    fn seal_drains_a_mid_window_slow_verdict_as_a_retry() {
        let fault = healthy(3);
        let r = WindowRing::new(
            WINDOW_RING,
            3,
            1,
            AssignmentMode::Eft,
            Arc::clone(&fault),
            true,
        );
        assert!(r.try_admit(0, 1, 9, req(1), &[0, 1]).is_admitted());
        // The scorer condemns device 0 only after admission assigned to it.
        condemn(&fault, 0);
        let sealed = r.seal(0);
        assert_eq!(sealed.total, 1);
        assert_eq!(
            sealed.items[0].req.device, 1,
            "drained to the healthy replica"
        );
        assert_eq!(fault.retries(), 1);
        assert_eq!(fault.redispatches(), 0, "slow is not fail-stop");
        assert_eq!(fault.lost(), 0);
        assert_eq!(fault.degraded_windows(), 0, "no device actually failed");
    }

    #[test]
    fn failslow_off_leaves_slow_assignments_in_place() {
        let fault = healthy(3);
        let r = WindowRing::new(
            WINDOW_RING,
            3,
            1,
            AssignmentMode::Eft,
            Arc::clone(&fault),
            false,
        );
        assert!(r.try_admit(0, 1, 9, req(1), &[0, 1]).is_admitted());
        condemn(&fault, 0);
        let sealed = r.seal(0);
        assert_eq!(sealed.total, 1);
        assert_eq!(sealed.items[0].req.device, 0, "control arm: no drain");
        assert_eq!(fault.retries(), 0);
    }

    fn wreq(id: u64) -> IoRequest {
        IoRequest::write_block(id, 0, 0, id)
    }

    const BOTH_MODES: [AssignmentMode; 2] = [AssignmentMode::OptimalFlow, AssignmentMode::Eft];

    #[test]
    fn write_charges_capacity_on_every_replica() {
        for mode in BOTH_MODES {
            let r = ring(mode); // 3 devices, M = 1
            assert!(r.try_admit(0, 1, 9, wreq(1), &[0, 1]).is_admitted());
            // The write consumed the single slot on both replicas.
            assert_eq!(r.try_admit(0, 1, 9, req(2), &[0]), AdmitResult::Full);
            assert_eq!(r.try_admit(0, 1, 9, req(3), &[1]), AdmitResult::Full);
            assert!(r.try_admit(0, 1, 9, req(4), &[2]).is_admitted());
            let sealed = r.seal(0);
            assert_eq!(sealed.guaranteed, 2, "logical: one write + one read");
            assert_eq!(sealed.total, 2);
            assert_eq!(sealed.items.len(), 3, "write fans out to both replicas");
            let copies: Vec<_> = sealed
                .items
                .iter()
                .filter(|i| i.write_group.is_some())
                .collect();
            assert_eq!(copies.len(), 2);
            assert!(copies.iter().all(|i| i.write_group == Some((0, 2))));
            let mut devs: Vec<usize> = copies.iter().map(|i| i.req.device).collect();
            devs.sort_unstable();
            assert_eq!(devs, vec![0, 1]);
        }
    }

    #[test]
    fn write_refusal_rolls_back_partial_charges() {
        for mode in BOTH_MODES {
            let r = ring(mode);
            assert!(r.try_admit(0, 1, 9, req(1), &[0]).is_admitted());
            // Device 0 is full: the write cannot charge its whole fan-out.
            assert_eq!(r.try_admit(0, 1, 9, wreq(2), &[0, 1]), AdmitResult::Full);
            // The refused attempt must not leak capacity onto device 1.
            assert!(r.try_admit(0, 1, 9, req(3), &[1]).is_admitted());
            assert!(r.try_admit(0, 1, 9, req(4), &[2]).is_admitted());
            assert_eq!(r.seal(0).total, 3);
        }
    }

    #[test]
    fn writes_never_park_as_overflow() {
        let r = ring(AssignmentMode::Eft);
        assert!(!r.add_overflow(0, 1, wreq(1), &[0, 1]));
        assert_eq!(r.seal(0).total, 0);
    }

    #[test]
    fn write_on_all_failed_replicas_is_unavailable_but_all_slow_is_full() {
        let fault =
            Arc::new(FaultPlane::new(3, FaultSchedule::new().fail(0, 0).fail(1, 0)).unwrap());
        let r = WindowRing::new(WINDOW_RING, 3, 1, AssignmentMode::OptimalFlow, fault, true);
        assert_eq!(
            r.try_admit(0, 1, 9, wreq(1), &[0, 1]),
            AdmitResult::Unavailable
        );

        let slow = healthy(3);
        condemn(&slow, 0);
        condemn(&slow, 1);
        let r = WindowRing::new(WINDOW_RING, 3, 1, AssignmentMode::Eft, slow, true);
        assert_eq!(
            r.try_admit(0, 1, 9, wreq(2), &[0, 1]),
            AdmitResult::Full,
            "slow replicas are congestion: delay the write, don't refuse it"
        );
    }

    #[test]
    fn write_with_one_failed_replica_charges_survivor_but_fans_to_both() {
        let fault =
            Arc::new(FaultPlane::new(3, FaultSchedule::new().fail(0, 0).recover(0, 8)).unwrap());
        let r = WindowRing::new(
            WINDOW_RING,
            3,
            1,
            AssignmentMode::OptimalFlow,
            Arc::clone(&fault),
            true,
        );
        assert!(r.try_admit(0, 1, 9, wreq(1), &[0, 1]).is_admitted());
        // Only the live replica was charged — and it is now full.
        assert_eq!(r.try_admit(0, 1, 9, req(2), &[1]), AdmitResult::Full);
        let sealed = r.seal(0);
        assert_eq!(sealed.guaranteed, 1);
        assert_eq!(
            sealed.items.len(),
            2,
            "fan-out still targets the failed replica; the worker decides its fate"
        );
        assert!(sealed.items.iter().all(|i| i.write_group == Some((0, 2))));
    }

    #[test]
    fn gc_reserve_shrinks_window_capacity() {
        for mode in BOTH_MODES {
            let fault = healthy(3);
            // Sustained WA-3 writes on device 0: with M = 2 the reserve
            // withholds one of its two slots.
            for _ in 0..64 {
                fault.observe_gc(0, 1, 3);
            }
            let r = WindowRing::new(WINDOW_RING, 3, 2, mode, Arc::clone(&fault), true);
            assert!(r.try_admit(0, 1, 99, req(1), &[0]).is_admitted());
            assert_eq!(
                r.try_admit(0, 1, 99, req(2), &[0]),
                AdmitResult::Full,
                "GC pressure withheld the second slot"
            );
            // Devices without GC pressure keep their full budget.
            assert!(r.try_admit(0, 1, 99, req(3), &[1]).is_admitted());
            assert!(r.try_admit(0, 1, 99, req(4), &[1]).is_admitted());
            let sealed = r.seal(0);
            assert_eq!(sealed.total, 3);
            assert!(sealed.items.iter().all(|i| i.write_group.is_none()));
        }
    }

    #[test]
    fn all_replicas_slow_is_admitted_slow_and_still_dispatched() {
        let fault = healthy(3);
        condemn(&fault, 0);
        condemn(&fault, 1);
        let r = WindowRing::new(
            WINDOW_RING,
            3,
            1,
            AssignmentMode::Eft,
            Arc::clone(&fault),
            true,
        );
        // Data is readable, just slow everywhere: park without a deadline
        // promise rather than reject.
        assert_eq!(
            r.try_admit(0, 1, 9, req(1), &[0, 1]),
            AdmitResult::AdmittedSlow
        );
        let sealed = r.seal(0);
        assert_eq!(sealed.total, 1, "slow-but-live data still serves");
        assert_eq!(sealed.guaranteed, 0, "no deadline promise was made");
        assert_eq!(fault.lost(), 0);
    }
}
