//! Sharded multi-tenant registry wrapping the paper's application-level
//! admission controller ([`AppAdmission`], §III-A) behind thread-safe
//! registration and a lock-striped hot lookup path.
//!
//! Registration (cold path) serializes on one mutex so the aggregate
//! reservation check against `S(M)` is atomic; per-request lookups (hot
//! path) only take a read lock on the tenant's shard.

use crate::metrics::TenantCounters;
use crate::sync::atomic::{AtomicBool, Ordering};
use crate::sync::{Arc, Mutex, RwLock};
use crate::wal::Wal;
use fqos_core::{AppAdmission, OverloadPolicy};
use std::collections::HashMap;

/// Immutable per-tenant record handed out by lookups.
#[derive(Debug)]
pub struct Tenant {
    /// Tenant id.
    pub id: u64,
    /// Reserved per-interval request size (counts against `S(M)`).
    pub reserved: usize,
    /// What happens to this tenant's requests when a window is full.
    pub policy: OverloadPolicy,
    /// Serving counters, shared with the worker pool.
    pub counters: TenantCounters,
    /// Cleared on deregistration. The record itself stays in its shard so
    /// seal-time settlement can still credit in-flight admissions — a
    /// mid-window deregistration must not strand window-ring accounting.
    live: AtomicBool,
}

impl Tenant {
    /// False once the tenant has been deregistered (its reservation is
    /// freed but in-flight admissions still settle against this record).
    pub fn is_live(&self) -> bool {
        self.live.load(Ordering::Acquire)
    }
}

/// Why a registration was refused.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RegisterError {
    /// Admitting the reservation would push the aggregate past `S(M)`.
    OverCapacity {
        /// Requested per-interval size.
        requested: usize,
        /// Remaining admittable size.
        headroom: usize,
    },
    /// A reservation of zero requests is meaningless.
    ZeroReservation,
    /// The id's previous (departed) record still has unsettled in-flight
    /// admissions; replacing it now would credit their seal-time
    /// settlement to counters that never admitted them. Retry once the
    /// source windows have sealed.
    DrainPending {
        /// Admissions of the departed record not yet settled.
        in_flight: u64,
    },
}

impl std::fmt::Display for RegisterError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RegisterError::OverCapacity {
                requested,
                headroom,
            } => {
                write!(
                    f,
                    "reservation of {requested} exceeds remaining headroom {headroom}"
                )
            }
            RegisterError::ZeroReservation => write!(f, "reservation must be positive"),
            RegisterError::DrainPending { in_flight } => {
                write!(
                    f,
                    "previous record still draining ({in_flight} admissions unsettled)"
                )
            }
        }
    }
}

impl std::error::Error for RegisterError {}

/// Thread-safe tenant registry with `S(M)` aggregate admission.
pub struct TenantRegistry {
    admission: Mutex<AppAdmission>,
    shards: Vec<RwLock<HashMap<u64, Arc<Tenant>>>>,
    /// Write-ahead log for register/deregister durability (None = off).
    wal: Option<Arc<Wal>>,
}

impl TenantRegistry {
    /// Registry admitting aggregate reservations up to `limit` = `S(M)`,
    /// striped over `shards` locks.
    pub fn new(limit: usize, shards: usize) -> Self {
        Self::new_with_wal(limit, shards, None)
    }

    /// Registry with write-ahead durability: registrations and departures
    /// are logged (force-synced) under the admission lock, before the
    /// record is published to its shard — so no durable admission record
    /// can ever precede its tenant's durable registration.
    pub(crate) fn new_with_wal(limit: usize, shards: usize, wal: Option<Arc<Wal>>) -> Self {
        assert!(shards > 0);
        TenantRegistry {
            admission: Mutex::new(AppAdmission::new(limit)),
            shards: (0..shards).map(|_| RwLock::new(HashMap::new())).collect(),
            wal,
        }
    }

    fn shard(&self, tenant: u64) -> &RwLock<HashMap<u64, Arc<Tenant>>> {
        // Multiplicative hash so consecutive tenant ids spread across shards.
        let h = tenant.wrapping_mul(0x9E3779B97F4A7C15);
        &self.shards[(h >> 32) as usize % self.shards.len()]
    }

    /// Register (or re-register with a new size) a tenant. The reservation
    /// is admitted iff the aggregate over all tenants stays within `S(M)`.
    pub fn register(
        &self,
        tenant: u64,
        reserved: usize,
        policy: OverloadPolicy,
    ) -> Result<Arc<Tenant>, RegisterError> {
        if reserved == 0 {
            return Err(RegisterError::ZeroReservation);
        }
        // Hold the admission lock across the shard update so a concurrent
        // deregister cannot interleave between check and insert.
        let mut admission = self.admission.lock();
        if let Some(old) = self.shard(tenant).read().get(&tenant) {
            // A departed record with unsettled admissions must finish
            // draining before its id can start a fresh serving epoch:
            // seal-time settlement resolves by id and would otherwise
            // credit the old record's residue to the new counters.
            if !old.is_live() {
                let in_flight = old.counters.in_flight();
                if in_flight > 0 {
                    return Err(RegisterError::DrainPending { in_flight });
                }
            }
        }
        if !admission.register(tenant, reserved) {
            return Err(RegisterError::OverCapacity {
                requested: reserved,
                headroom: admission.headroom(),
            });
        }
        // Durable before the record is visible to submitters: an Admit
        // record can then never precede its Register in the log.
        if let Some(wal) = &self.wal {
            wal.log_register(tenant, reserved, policy);
        }
        let record = Arc::new(Tenant {
            id: tenant,
            reserved,
            policy,
            counters: TenantCounters::default(),
            live: AtomicBool::new(true),
        });
        // Replaces a departed record of the same id, if any. Counters start
        // fresh: a re-registered id is a new serving epoch (the old record's
        // already-sealed admissions settled against the old counters).
        self.shard(tenant)
            .write()
            .insert(tenant, Arc::clone(&record));
        Ok(record)
    }

    /// Deregister a tenant, freeing its reservation immediately. The record
    /// is only *flagged* departed, not removed: in-flight admissions still
    /// resolve to it at window-seal time, so per-tenant serving counters are
    /// never stranded by a mid-window departure (migration drains rely on
    /// this). Returns the record if the tenant was live.
    pub fn deregister(&self, tenant: u64) -> Option<Arc<Tenant>> {
        let mut admission = self.admission.lock();
        let existing = self.shard(tenant).read().get(&tenant).cloned();
        let departed = existing.filter(|t| t.is_live());
        if let Some(t) = &departed {
            t.live.store(false, Ordering::Release);
            admission.deregister(tenant);
            if let Some(wal) = &self.wal {
                wal.log_deregister(tenant);
            }
        }
        departed
    }

    /// Recovery path: re-install a tenant from a replayed WAL state with
    /// its durable counters preset, without logging (the records that
    /// produced this state are already in the log). Live tenants re-enter
    /// `S(M)` admission; departed records are installed for settlement
    /// resolution only (their reservation was already freed).
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn restore_record(
        &self,
        tenant: u64,
        reserved: usize,
        policy: OverloadPolicy,
        live: bool,
        counts: &crate::wal::TenantState,
    ) -> Result<(), RegisterError> {
        let mut admission = self.admission.lock();
        if live && !admission.register(tenant, reserved) {
            return Err(RegisterError::OverCapacity {
                requested: reserved,
                headroom: admission.headroom(),
            });
        }
        let record = Arc::new(Tenant {
            id: tenant,
            reserved,
            policy,
            counters: TenantCounters::default(),
            live: AtomicBool::new(live),
        });
        record
            .counters
            .admitted
            .store(counts.admitted, Ordering::Relaxed);
        record
            .counters
            .overflow
            .store(counts.overflow, Ordering::Relaxed);
        record
            .counters
            .delayed
            .store(counts.delayed, Ordering::Relaxed);
        record
            .counters
            .served
            .store(counts.served, Ordering::Relaxed);
        record
            .counters
            .hedge_wins
            .store(counts.hedge_wins, Ordering::Relaxed);
        record.counters.lost.store(counts.lost, Ordering::Relaxed);
        record
            .counters
            .write_settled
            .store(counts.write_settled, Ordering::Relaxed);
        record
            .counters
            .write_lost
            .store(counts.write_lost, Ordering::Relaxed);
        self.shard(tenant).write().insert(tenant, record);
        Ok(())
    }

    /// Hot-path lookup: live tenants only (the admission path must not see
    /// departed records).
    pub fn get(&self, tenant: u64) -> Option<Arc<Tenant>> {
        self.shard(tenant)
            .read()
            .get(&tenant)
            .cloned()
            .filter(|t| t.is_live())
    }

    /// Seal-path lookup: resolves departed records too, so a request
    /// admitted before its tenant deregistered still settles against the
    /// tenant's counters.
    pub fn lookup_any(&self, tenant: u64) -> Option<Arc<Tenant>> {
        self.shard(tenant).read().get(&tenant).cloned()
    }

    /// Aggregate reservation currently admitted.
    pub fn reserved_total(&self) -> usize {
        self.admission.lock().total()
    }

    /// The aggregate reservation ceiling `S(M)` this registry admits up to
    /// (the healthy bound; per-window capacity tightens below it while
    /// devices are down — see [`crate::FaultPlane::degraded_limit`]).
    pub fn limit(&self) -> usize {
        let admission = self.admission.lock();
        admission.total() + admission.headroom()
    }

    /// Remaining admittable reservation.
    pub fn headroom(&self) -> usize {
        self.admission.lock().headroom()
    }

    /// All live tenants, sorted by id (reporting path).
    pub fn tenants(&self) -> Vec<Arc<Tenant>> {
        let mut all: Vec<Arc<Tenant>> = self
            .shards
            .iter()
            .flat_map(|s| {
                s.read()
                    .values()
                    .filter(|t| t.is_live())
                    .cloned()
                    .collect::<Vec<_>>()
            })
            .collect();
        all.sort_by_key(|t| t.id);
        all
    }

    /// Every record, live and departed, sorted by id. Snapshots use this so
    /// a tenant that migrated away mid-run still reports its served counts.
    pub fn all_tenants(&self) -> Vec<Arc<Tenant>> {
        let mut all: Vec<Arc<Tenant>> = self
            .shards
            .iter()
            .flat_map(|s| s.read().values().cloned().collect::<Vec<_>>())
            .collect();
        all.sort_by_key(|t| t.id);
        all
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::Ordering;

    #[test]
    fn table1_walkthrough_through_the_registry() {
        // §III-A with S = 5: sizes 2, 2, 1 admitted; the fourth tenant only
        // after one deregisters.
        let reg = TenantRegistry::new(5, 4);
        reg.register(1, 2, OverloadPolicy::Delay).unwrap();
        reg.register(2, 2, OverloadPolicy::Delay).unwrap();
        reg.register(3, 1, OverloadPolicy::Reject).unwrap();
        assert_eq!(reg.reserved_total(), 5);
        let err = reg.register(4, 1, OverloadPolicy::Delay).unwrap_err();
        assert_eq!(
            err,
            RegisterError::OverCapacity {
                requested: 1,
                headroom: 0
            }
        );
        assert!(reg.deregister(2).is_some());
        reg.register(4, 2, OverloadPolicy::Delay).unwrap();
        assert_eq!(reg.headroom(), 0);
        assert_eq!(reg.limit(), 5, "limit is invariant under churn");
        reg.deregister(1);
        assert_eq!(reg.limit(), 5);
    }

    #[test]
    fn lookup_and_listing() {
        let reg = TenantRegistry::new(10, 2);
        assert!(reg.get(7).is_none());
        reg.register(7, 3, OverloadPolicy::Reject).unwrap();
        let t = reg.get(7).unwrap();
        assert_eq!(t.reserved, 3);
        assert_eq!(t.policy, OverloadPolicy::Reject);
        reg.register(3, 1, OverloadPolicy::Delay).unwrap();
        let ids: Vec<u64> = reg.tenants().iter().map(|t| t.id).collect();
        assert_eq!(ids, vec![3, 7]);
        assert!(reg.deregister(99).is_none());
    }

    #[test]
    fn zero_reservation_is_refused() {
        let reg = TenantRegistry::new(5, 1);
        assert_eq!(
            reg.register(1, 0, OverloadPolicy::Delay).unwrap_err(),
            RegisterError::ZeroReservation
        );
    }

    #[test]
    fn counters_survive_deregistration() {
        let reg = TenantRegistry::new(5, 2);
        let t = reg.register(1, 1, OverloadPolicy::Delay).unwrap();
        t.counters.served.fetch_add(3, Ordering::Relaxed);
        let removed = reg.deregister(1).unwrap();
        assert_eq!(removed.counters.served.load(Ordering::Relaxed), 3);
    }

    #[test]
    fn departed_records_stay_resolvable_until_reregistered() {
        let reg = TenantRegistry::new(5, 2);
        let t = reg.register(1, 2, OverloadPolicy::Delay).unwrap();
        t.counters.served.fetch_add(2, Ordering::Relaxed);
        assert!(reg.deregister(1).is_some());
        // The admission path no longer sees the tenant...
        assert!(reg.get(1).is_none());
        assert!(reg.tenants().is_empty());
        assert_eq!(reg.headroom(), 5, "reservation freed immediately");
        // ...but the seal path still resolves the departed record.
        let departed = reg.lookup_any(1).unwrap();
        assert!(!departed.is_live());
        assert_eq!(departed.counters.served.load(Ordering::Relaxed), 2);
        assert_eq!(reg.all_tenants().len(), 1);
        // A second deregister is a no-op (no double-free of the reservation).
        assert!(reg.deregister(1).is_none());
        assert_eq!(reg.headroom(), 5);
        // Re-registration starts a fresh serving epoch.
        let fresh = reg.register(1, 3, OverloadPolicy::Reject).unwrap();
        assert!(fresh.is_live());
        assert_eq!(fresh.counters.served.load(Ordering::Relaxed), 0);
        assert_eq!(reg.tenants().len(), 1);
        assert_eq!(reg.headroom(), 2);
    }

    #[test]
    fn reregistration_waits_for_departed_drain() {
        let reg = TenantRegistry::new(5, 2);
        let t = reg.register(1, 2, OverloadPolicy::Delay).unwrap();
        t.counters.admitted.fetch_add(3, Ordering::Relaxed);
        t.counters.served.fetch_add(1, Ordering::Relaxed);
        assert!(reg.deregister(1).is_some());
        // Two admissions still unsettled: a fresh epoch now would credit
        // their seal-time settlement to counters that never admitted them.
        assert_eq!(
            reg.register(1, 1, OverloadPolicy::Delay).unwrap_err(),
            RegisterError::DrainPending { in_flight: 2 }
        );
        assert_eq!(reg.headroom(), 5, "refusal must not leak reservation");
        // Once the residue settles, the id can start a fresh epoch.
        t.counters.served.fetch_add(2, Ordering::Relaxed);
        let fresh = reg.register(1, 1, OverloadPolicy::Reject).unwrap();
        assert!(fresh.is_live());
        assert_eq!(fresh.counters.served.load(Ordering::Relaxed), 0);
    }

    #[test]
    fn concurrent_registration_never_oversubscribes() {
        use std::sync::Arc as StdArc;
        let reg = StdArc::new(TenantRegistry::new(8, 4));
        let threads: Vec<_> = (0..16u64)
            .map(|id| {
                let reg = StdArc::clone(&reg);
                std::thread::spawn(move || reg.register(id, 1, OverloadPolicy::Delay).is_ok())
            })
            .collect();
        let admitted = threads
            .into_iter()
            .map(|t| t.join().unwrap())
            .filter(|&ok| ok)
            .count();
        assert_eq!(admitted, 8);
        assert_eq!(reg.reserved_total(), 8);
        assert_eq!(reg.tenants().len(), 8);
    }
}
