//! Lock-free serving metrics: counters and a log-bucketed latency
//! histogram, all updated with relaxed atomics on the hot path and read
//! coherently enough for reporting (individual counters are exact; a
//! snapshot taken mid-flight may be torn *across* counters, which reports
//! tolerate).

use std::sync::atomic::{AtomicU64, Ordering};

/// Histogram over nanosecond latencies with power-of-two bucket edges:
/// bucket `i` counts values in `[2^(i-1), 2^i)` (bucket 0 counts `0`).
#[derive(Debug)]
pub struct LatencyHistogram {
    buckets: [AtomicU64; 64],
    count: AtomicU64,
    sum_ns: AtomicU64,
    max_ns: AtomicU64,
}

impl Default for LatencyHistogram {
    fn default() -> Self {
        Self::new()
    }
}

impl LatencyHistogram {
    /// Empty histogram.
    pub fn new() -> Self {
        LatencyHistogram {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            count: AtomicU64::new(0),
            sum_ns: AtomicU64::new(0),
            max_ns: AtomicU64::new(0),
        }
    }

    /// Record one latency.
    pub fn record(&self, ns: u64) {
        let idx = (64 - ns.leading_zeros()) as usize; // 0 for ns == 0
        self.buckets[idx.min(63)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum_ns.fetch_add(ns, Ordering::Relaxed);
        self.max_ns.fetch_max(ns, Ordering::Relaxed);
    }

    /// Number of recorded values.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Mean latency in nanoseconds (0 when empty).
    pub fn mean_ns(&self) -> f64 {
        let n = self.count();
        if n == 0 {
            0.0
        } else {
            self.sum_ns.load(Ordering::Relaxed) as f64 / n as f64
        }
    }

    /// Largest recorded latency.
    pub fn max_ns(&self) -> u64 {
        self.max_ns.load(Ordering::Relaxed)
    }

    /// Upper bucket edge at or below which at least `q` (0..=1) of the
    /// recorded values fall. Resolution is the power-of-two bucket width;
    /// the exact maximum is reported separately.
    pub fn quantile_ns(&self, q: f64) -> u64 {
        let n = self.count();
        if n == 0 {
            return 0;
        }
        let target = (q.clamp(0.0, 1.0) * n as f64).ceil().max(1.0) as u64;
        let mut seen = 0u64;
        for (i, b) in self.buckets.iter().enumerate() {
            seen += b.load(Ordering::Relaxed);
            if seen >= target {
                return if i == 0 { 0 } else { 1u64 << i }; // upper edge
            }
        }
        self.max_ns()
    }

    /// Non-empty buckets as `(upper_edge_ns, count)` pairs.
    pub fn nonzero_buckets(&self) -> Vec<(u64, u64)> {
        self.buckets
            .iter()
            .enumerate()
            .filter_map(|(i, b)| {
                let c = b.load(Ordering::Relaxed);
                (c > 0).then(|| (if i == 0 { 0 } else { 1u64 << i }, c))
            })
            .collect()
    }
}

/// Per-tenant serving counters (shared via `Arc` between the registry and
/// the worker pool).
#[derive(Debug, Default)]
pub struct TenantCounters {
    /// Requests admitted under the deterministic guarantee.
    pub admitted: AtomicU64,
    /// Requests admitted on the statistical overflow path.
    pub overflow: AtomicU64,
    /// Requests pushed to a later window than their arrival window.
    pub delayed: AtomicU64,
    /// Requests refused.
    pub rejected: AtomicU64,
    /// Requests whose service finished past their interval deadline.
    pub violations: AtomicU64,
    /// Requests fully served.
    pub served: AtomicU64,
    /// Requests completed by a winning hedge instead of their primary
    /// dispatch. `served + hedge_wins + lost` is the tenant's settled
    /// total, so per-tenant in-flight is `admitted + overflow − served −
    /// hedge_wins − lost`.
    pub hedge_wins: AtomicU64,
    /// Admissions lost to faults (every replica down at seal) or stranded
    /// by a crash between seal and settlement — the tenant's share of the
    /// global `fault_lost` term.
    pub lost: AtomicU64,
    /// Logical writes whose every replica copy landed (all-must-settle).
    pub write_settled: AtomicU64,
    /// Logical writes that lost at least one replica copy past the retry
    /// budget — the tenant's share of the global `write_lost` term.
    pub write_lost: AtomicU64,
    /// Total admission delay (arrival window → admitted window) in ns.
    pub delay_ns: AtomicU64,
}

impl TenantCounters {
    /// Admissions not yet settled against these counters:
    /// `admitted + overflow − served − hedge_wins − lost − write_settled −
    /// write_lost`.
    pub fn in_flight(&self) -> u64 {
        (self.admitted.load(Ordering::Relaxed) + self.overflow.load(Ordering::Relaxed))
            .saturating_sub(
                self.served.load(Ordering::Relaxed)
                    + self.hedge_wins.load(Ordering::Relaxed)
                    + self.lost.load(Ordering::Relaxed)
                    + self.write_settled.load(Ordering::Relaxed)
                    + self.write_lost.load(Ordering::Relaxed),
            )
    }
}

/// Frozen per-tenant view inside a [`MetricsSnapshot`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TenantSnapshot {
    /// Tenant id.
    pub tenant: u64,
    /// Reserved per-interval request size.
    pub reserved: usize,
    /// False once the tenant has deregistered (e.g. migrated to another
    /// array); its counters stay reported so nothing it was served is lost
    /// from the audit.
    pub live: bool,
    /// See [`TenantCounters::admitted`].
    pub admitted: u64,
    /// See [`TenantCounters::overflow`].
    pub overflow: u64,
    /// See [`TenantCounters::delayed`].
    pub delayed: u64,
    /// See [`TenantCounters::rejected`].
    pub rejected: u64,
    /// See [`TenantCounters::violations`].
    pub violations: u64,
    /// See [`TenantCounters::served`].
    pub served: u64,
    /// See [`TenantCounters::hedge_wins`].
    pub hedge_wins: u64,
    /// See [`TenantCounters::lost`].
    pub lost: u64,
    /// See [`TenantCounters::write_settled`].
    pub write_settled: u64,
    /// See [`TenantCounters::write_lost`].
    pub write_lost: u64,
}

impl TenantSnapshot {
    /// Admissions not yet settled: `admitted + overflow − served −
    /// hedge_wins − lost − write_settled − write_lost`. For a departed
    /// tenant this is the migrated-in-flight contribution to the cluster
    /// conservation law (0 once every window the tenant touched has sealed
    /// and drained).
    pub fn in_flight(&self) -> u64 {
        (self.admitted + self.overflow).saturating_sub(
            self.served + self.hedge_wins + self.lost + self.write_settled + self.write_lost,
        )
    }
}

/// Engine-wide metrics snapshot.
#[derive(Debug, Clone)]
pub struct MetricsSnapshot {
    /// Requests admitted under the deterministic guarantee.
    pub admitted: u64,
    /// Requests admitted on the statistical overflow path.
    pub overflow: u64,
    /// Requests delayed past their arrival window.
    pub delayed: u64,
    /// Requests refused.
    pub rejected: u64,
    /// Requests fully served.
    pub served: u64,
    /// Logical writes whose every replica copy landed (all-must-settle).
    /// Part of the extended conservation law: `served + write_settled +
    /// fault_lost + hedges_cancelled + write_lost == admitted_total`.
    pub write_settled: u64,
    /// Logical writes that lost at least one replica copy to a fail-stopped
    /// device past the bounded retry budget. Counted, never silently
    /// dropped — the partial-failure term of the extended law.
    pub write_lost: u64,
    /// Host page programs across every device (write-path demand).
    pub gc_host_pages: u64,
    /// GC relocation page programs across every device (`gc_writes`).
    pub gc_pages: u64,
    /// Pages read back during GC relocation across every device.
    pub gc_relocated: u64,
    /// Block erases across every device.
    pub gc_erases: u64,
    /// Served requests finishing past their interval deadline.
    pub deadline_violations: u64,
    /// Violations among *guaranteed* (deterministically admitted) requests.
    /// The engine's core invariant keeps this at exactly 0.
    pub guaranteed_violations: u64,
    /// Largest guaranteed aggregate observed in any sealed window; never
    /// exceeds `S(M)`.
    pub max_window_guaranteed: u64,
    /// Largest total (guaranteed + overflow) aggregate in any sealed window.
    pub max_window_total: u64,
    /// Windows sealed so far.
    pub windows_sealed: u64,
    /// Sealed windows whose execution interval had ≥ 1 device down.
    pub degraded_windows: u64,
    /// Admitted requests steered away from a failed replica at admission.
    pub fault_reroutes: u64,
    /// Requests drained off a failing device at seal and re-dispatched to
    /// a surviving replica within the same interval.
    pub fault_redispatches: u64,
    /// Seal-time rebuilds that found no `M`-respecting slot on any
    /// survivor and overloaded the least-loaded live replica instead —
    /// only reachable when a live injection makes an already-admitted
    /// window infeasible; the resulting late finishes are charged to the
    /// deadline audit. Zero for scripted schedules by construction.
    pub fault_overloads: u64,
    /// Admitted requests unservable because every replica was down at seal
    /// (only possible past the design's `c − 1` tolerance, or when a live
    /// injection lands between admission and seal). Counted, never
    /// silently dropped: `served + fault_lost = admitted_total`.
    pub fault_lost: u64,
    /// Submissions refused because every replica of the block was down
    /// across the admissible horizon.
    pub fault_rejected: u64,
    /// Speculative duplicate dispatches issued when a block's projected
    /// service latency crossed its device's adaptive hedge threshold.
    pub hedges_issued: u64,
    /// Hedged blocks whose speculative dispatch finished first. Each such
    /// win cancels the original dispatch, so `hedges_won ==
    /// hedges_cancelled` is an exactly-once settlement invariant.
    pub hedges_won: u64,
    /// Original dispatches cancelled by a winning hedge. Part of the
    /// conservation law: `served + fault_lost + hedges_cancelled ==
    /// admitted_total`.
    pub hedges_cancelled: u64,
    /// Deadline-aware re-dispatches: backoff retry hops past the first
    /// hedge plus seal-time drains off a detected-slow device.
    pub retries: u64,
    /// Health-scorer promotions into `Slow` (admission then steers new
    /// schedules away from the device until it recovers or is re-probed).
    pub slow_detected: u64,
    /// Health-scorer transitions `Healthy → Suspect` (entries).
    pub health_suspects: u64,
    /// Health-scorer demotions `Slow → Healthy` after a sustained normal
    /// streak.
    pub health_recoveries: u64,
    /// Served-request latency: median (bucket-resolution upper bound).
    pub p50_latency_ns: u64,
    /// Served-request latency: 99th percentile (bucket-resolution).
    pub p99_latency_ns: u64,
    /// Served-request latency: 99.9th percentile (bucket-resolution).
    pub p999_latency_ns: u64,
    /// Served-request latency: exact maximum.
    pub max_latency_ns: u64,
    /// Served-request latency: exact mean.
    pub mean_latency_ns: f64,
    /// WAL records appended this epoch (0 when durability is off).
    pub wal_records: u64,
    /// WAL fsync batches flushed this epoch.
    pub wal_fsyncs: u64,
    /// WAL snapshot + log-truncation compactions this epoch.
    pub wal_compactions: u64,
    /// WAL records violating durable ordering (settle without a sealed
    /// durable admission, admit into a sealed window, …). Invariantly 0;
    /// asserted by the model suite on every schedule.
    pub wal_misordered: u64,
    /// WAL backing I/O failures (sticky; the engine keeps serving with
    /// durability degraded).
    pub wal_io_errors: u64,
    /// Durable admissions restored into live windows by the last
    /// [`crate::QosServer::recover`] (0 on a fresh start).
    pub recovered_admissions: u64,
    /// Sealed-but-unsettled admissions the last recovery charged to
    /// `fault_lost` (dispatches the crash stranded).
    pub recovered_lost: u64,
    /// Log records replayed by the last recovery.
    pub wal_replay_records: u64,
    /// Wall-clock duration of the last recovery replay, nanoseconds.
    pub wal_replay_duration_ns: u64,
    /// 1 when the last recovery truncated the log at a bad frame (torn
    /// tail or corrupt mid-file record), 0 for a clean replay.
    pub wal_replay_truncated: u64,
    /// Per-tenant breakdown, sorted by tenant id.
    pub tenants: Vec<TenantSnapshot>,
}

impl MetricsSnapshot {
    /// Requests admitted in total (guaranteed + overflow).
    pub fn admitted_total(&self) -> u64 {
        self.admitted + self.overflow
    }

    /// Requests that completed service on either dispatch path: primaries
    /// (`served`) plus hedge wins. In a conserving run this equals
    /// `admitted_total − fault_lost` for read-only traffic; mixed traffic
    /// adds `write_settled` (see [`MetricsSnapshot::settled`]).
    pub fn completed(&self) -> u64 {
        self.served + self.hedges_won
    }

    /// Every admission settled one way or another: the left side of the
    /// extended conservation law `served + write_settled + fault_lost +
    /// hedges_cancelled + write_lost == admitted_total`.
    pub fn settled(&self) -> u64 {
        self.served + self.write_settled + self.fault_lost + self.hedges_cancelled + self.write_lost
    }

    /// Measured write amplification across the array:
    /// `(host + GC pages) / host pages` (1.0 before any host write).
    pub fn write_amplification(&self) -> f64 {
        if self.gc_host_pages == 0 {
            1.0
        } else {
            (self.gc_host_pages + self.gc_pages) as f64 / self.gc_host_pages as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_buckets_by_powers_of_two() {
        let h = LatencyHistogram::new();
        h.record(0);
        h.record(1);
        h.record(2);
        h.record(3);
        h.record(1024);
        assert_eq!(h.count(), 5);
        assert_eq!(h.max_ns(), 1024);
        let buckets = h.nonzero_buckets();
        // 0 → bucket 0; 1 → (0,2]; 2,3 → (2,4]; 1024 → (1024,2048].
        assert_eq!(buckets, vec![(0, 1), (2, 1), (4, 2), (2048, 1)]);
    }

    #[test]
    fn quantiles_are_monotone_upper_bounds() {
        let h = LatencyHistogram::new();
        for i in 0..100u64 {
            h.record(i * 1000); // 0 .. 99 µs
        }
        let p50 = h.quantile_ns(0.5);
        let p99 = h.quantile_ns(0.99);
        assert!(p50 >= 49_000, "{p50}");
        assert!(p99 >= 98_000, "{p99}");
        assert!(p50 <= p99);
        assert_eq!(h.quantile_ns(1.0), h.max_ns().next_power_of_two());
        assert!((h.mean_ns() - 49_500.0).abs() < 1.0);
    }

    #[test]
    fn empty_histogram_is_all_zero() {
        let h = LatencyHistogram::new();
        assert_eq!(h.count(), 0);
        assert_eq!(h.quantile_ns(0.5), 0);
        assert_eq!(h.mean_ns(), 0.0);
        assert!(h.nonzero_buckets().is_empty());
    }

    #[test]
    fn quantile_of_empty_histogram_is_zero_at_every_q() {
        let h = LatencyHistogram::new();
        for q in [0.0, 0.25, 0.5, 0.99, 1.0] {
            assert_eq!(h.quantile_ns(q), 0, "q = {q}");
        }
        assert_eq!(h.max_ns(), 0);
    }

    #[test]
    fn quantile_zero_is_the_lowest_occupied_bucket() {
        let h = LatencyHistogram::new();
        h.record(700); // bucket (512, 1024]
        h.record(100_000);
        // q = 0 still needs one observation: the smallest bucket's edge.
        assert_eq!(h.quantile_ns(0.0), 1024);
    }

    #[test]
    fn quantile_one_covers_the_maximum() {
        let h = LatencyHistogram::new();
        for v in [3, 900, 40_000] {
            h.record(v);
        }
        let p100 = h.quantile_ns(1.0);
        assert!(p100 >= h.max_ns(), "{p100} < {}", h.max_ns());
        assert_eq!(p100, 65_536, "upper edge of max's bucket");
        // Out-of-range q clamps rather than panicking.
        assert_eq!(h.quantile_ns(7.5), p100);
        assert_eq!(h.quantile_ns(-1.0), h.quantile_ns(0.0));
    }

    #[test]
    fn single_bucket_histogram_is_flat_across_quantiles() {
        let h = LatencyHistogram::new();
        for _ in 0..10 {
            h.record(1500); // all in (1024, 2048]
        }
        for q in [0.0, 0.01, 0.5, 0.99, 1.0] {
            assert_eq!(h.quantile_ns(q), 2048, "q = {q}");
        }
        assert_eq!(h.max_ns(), 1500);
        assert_eq!(h.nonzero_buckets(), vec![(2048, 10)]);
    }

    #[test]
    fn zero_only_histogram_reports_bucket_zero() {
        let h = LatencyHistogram::new();
        h.record(0);
        assert_eq!(h.quantile_ns(0.0), 0);
        assert_eq!(h.quantile_ns(1.0), 0);
        assert_eq!(h.nonzero_buckets(), vec![(0, 1)]);
    }

    #[test]
    fn concurrent_recording_loses_nothing() {
        use std::sync::Arc;
        let h = Arc::new(LatencyHistogram::new());
        let threads: Vec<_> = (0..4)
            .map(|t| {
                let h = Arc::clone(&h);
                std::thread::spawn(move || {
                    for i in 0..1000u64 {
                        h.record(t * 1_000_000 + i);
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        assert_eq!(h.count(), 4000);
        assert_eq!(
            h.nonzero_buckets().iter().map(|&(_, c)| c).sum::<u64>(),
            4000
        );
    }
}
