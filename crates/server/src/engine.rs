//! The concurrent serving engine: submitter handles, the watermark sealing
//! protocol, the dispatcher and the worker pool.
//!
//! # Execution model
//!
//! Simulated time is divided into intervals ("windows") of length `T`
//! ([`QosConfig::interval_ns`]). A request arriving during window `w` is
//! admitted into some window `t ≥ w` (`t > w` only under the `Delay`
//! policy), executed at `(t+1)·T` and must finish by `(t+2)·T` — its
//! **interval deadline**, one interval of queueing plus one of service,
//! exactly the paper's per-interval guarantee.
//!
//! # Why guaranteed requests never miss their deadline
//!
//! 1. Window admission ([`crate::window::WindowRing`]) never lets a
//!    window's guaranteed set need more than `M` accesses on any device.
//! 2. Config validation enforces `M · service ≤ T`.
//! 3. Windows are sealed and dispatched **in order** by a single logical
//!    dispatcher (a mutex), and each device belongs to exactly one worker
//!    (`device % workers`), so per-device service is FCFS in window order.
//! 4. A device therefore serves at most `M` guaranteed requests between
//!    `(t+1)·T` and `(t+1)·T + M·service ≤ (t+2)·T`.
//!
//! This holds under any thread interleaving — the stress tests hammer it.
//! With statistical admission (`ε > 0`) overflow requests may exceed the
//! budget; they run *after* the window's guaranteed set and their
//! violations (and any spill-over onto later windows) are counted
//! separately. With `ε = 0` the engine reports `guaranteed_violations == 0`
//! unconditionally.
//!
//! # The watermark protocol
//!
//! Sealing window `w` is only safe once no submitter can still admit into
//! it. Each [`SubmitterHandle`] publishes a *watermark* — the lowest window
//! it may still touch — which it advances (monotonically) **before** each
//! admission attempt. The dispatcher seals every window below the minimum
//! watermark over open handles; once all handles are closed it seals
//! through the highest admitted window. Handle creation initializes the
//! watermark under the dispatch lock, so an in-flight pump can never seal
//! past a handle it has not yet seen.

use crate::config::ServerConfig;
use crate::fault::{FaultKind, FaultPlane};
use crate::metrics::{LatencyHistogram, MetricsSnapshot, TenantSnapshot};
use crate::registry::{RegisterError, Tenant, TenantRegistry};
use crate::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use crate::sync::channel::{bounded, Receiver, Sender};
use crate::sync::thread::JoinHandle;
use crate::sync::{Arc, Mutex, RwLock};
use crate::wal::{crash_point, SettleKind, Wal, WalState};
use crate::window::{AdmitResult, WindowRing};
use fqos_core::{OverloadPolicy, StatisticalCounters};
use fqos_decluster::sampling::{optimal_retrieval_probabilities, OptimalRetrievalProbabilities};
use fqos_decluster::AllocationScheme;
use fqos_flashsim::{CalibratedSsd, Completion, Device, IoOp, IoRequest};

/// Outcome of one [`SubmitterHandle::submit`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SubmitOutcome {
    /// Admitted under the deterministic guarantee, in its arrival window.
    Admitted {
        /// Window the request was admitted into.
        window: u64,
    },
    /// Admitted under the guarantee, but pushed `delayed_windows` past its
    /// arrival window (`Delay` policy).
    Delayed {
        /// Window the request was admitted into.
        window: u64,
        /// How many windows past arrival it was pushed.
        delayed_windows: u64,
    },
    /// Admitted on the statistical overflow path (`ε > 0`); served without
    /// a deadline guarantee.
    Overflow {
        /// Window the request was admitted into.
        window: u64,
    },
    /// Refused.
    Rejected(RejectReason),
}

impl SubmitOutcome {
    /// True for any admitted variant.
    pub fn is_admitted(&self) -> bool {
        !matches!(self, SubmitOutcome::Rejected(_))
    }

    /// The window the request landed in, if admitted.
    pub fn window(&self) -> Option<u64> {
        match *self {
            SubmitOutcome::Admitted { window }
            | SubmitOutcome::Delayed { window, .. }
            | SubmitOutcome::Overflow { window } => Some(window),
            SubmitOutcome::Rejected(_) => None,
        }
    }
}

/// Why a request was refused.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RejectReason {
    /// The tenant is not registered.
    UnknownTenant,
    /// `Reject` policy and the arrival window is full.
    WindowFull,
    /// `Delay` policy and every window within the delay horizon is full.
    HorizonExhausted,
    /// Every replica of the requested block sits on a failed device across
    /// the admissible horizon: the failure set exceeds the design's `c − 1`
    /// co-hosting tolerance for this block. The request is refused rather
    /// than queued on a dead device.
    ReplicasUnavailable,
    /// The server is shutting down.
    ServerStopping,
    /// The routed array is fail-stopped (or verdicted dead) and the
    /// cluster tier exhausted its rerouting retries. Surfaced by
    /// `fqos-cluster` instead of a spurious [`RejectReason::UnknownTenant`]
    /// while a failure races the evacuation control loop.
    ArrayUnavailable,
}

/// Per-handle shared state read by the dispatcher.
struct HandleShared {
    /// Lowest window this handle may still admit into.
    watermark: AtomicU64,
    closed: AtomicBool,
}

struct DispatchState {
    /// All windows `< sealed_through` are sealed and dispatched.
    sealed_through: u64,
}

/// Statistical admission state (`ε > 0` only).
struct StatState {
    counters: Mutex<StatisticalCounters>,
    probabilities: OptimalRetrievalProbabilities,
    /// Largest interval size the `P_k` table covers; overflow admission is
    /// capped here because `p_k` beyond the table optimistically returns 1.
    k_max: usize,
}

#[derive(Default)]
struct GlobalStats {
    admitted: AtomicU64,
    overflow: AtomicU64,
    delayed: AtomicU64,
    rejected: AtomicU64,
    served: AtomicU64,
    violations: AtomicU64,
    guaranteed_violations: AtomicU64,
    max_window_guaranteed: AtomicU64,
    max_window_total: AtomicU64,
    windows_sealed: AtomicU64,
    hedges_issued: AtomicU64,
    hedges_won: AtomicU64,
    hedges_cancelled: AtomicU64,
    /// Logical writes whose every replica copy landed.
    write_settled: AtomicU64,
    /// Logical writes that lost ≥ 1 copy past the retry budget.
    write_lost: AtomicU64,
    // Array-wide GC counters, aggregated from the workers' devices as
    // writes complete (each worker owns its devices, so per-request deltas
    // never race).
    gc_host_pages: AtomicU64,
    gc_pages: AtomicU64,
    gc_relocated: AtomicU64,
    gc_erases: AtomicU64,
    // Recovery provenance, set once by `QosServer::recover` after the
    // engine is built (zero on a fresh start).
    recovered_admissions: AtomicU64,
    recovered_lost: AtomicU64,
    replay_records: AtomicU64,
    replay_duration_ns: AtomicU64,
    replay_truncated: AtomicU64,
}

/// Shared settlement state of one logical write's replica fan-out. Every
/// copy's [`WorkItem`] holds the same `Arc`; the worker that lands the
/// *last* copy (remaining hits zero) settles the logical write exactly
/// once — as `write_settled` if every copy landed, `write_lost` if any
/// copy died on a fail-stopped replica past the retry budget.
struct WriteSink {
    /// Copies still outstanding.
    remaining: AtomicU64,
    /// Sticky: some copy was lost (all-must-settle failed).
    lost: AtomicBool,
    /// Latest copy finish time, for the deadline audit of the settling
    /// copy (a write is only as done as its slowest replica).
    latest_finish: AtomicU64,
}

/// One dispatched request on its way to a worker.
struct WorkItem {
    req: IoRequest,
    /// Live tenant record at seal time (None if deregistered meanwhile).
    tenant: Option<Arc<Tenant>>,
    /// The admitting tenant's id, kept even when the record is gone so the
    /// WAL settle record always carries it.
    tenant_id: u64,
    /// Simulated time the window's execution phase starts: `(t+1)·T`.
    exec_start: u64,
    /// Interval deadline: `(t+2)·T`.
    deadline: u64,
    guaranteed: bool,
    /// Replica bitmap of the block; the bits other than `req.device` are
    /// the hedge candidates.
    replica_mask: u64,
    /// Write fan-out: settlement sink shared by all replica copies of the
    /// logical write. `None` for reads.
    write: Option<Arc<WriteSink>>,
}

enum WorkMsg {
    Item(Box<WorkItem>),
    Stop,
}

/// The shared per-device busy frontiers workers hedge across. Worker `w`
/// owns device `d`'s FCFS schedule, but a hedged read lands on a replica
/// owned by *another* worker, so placement needs one timeline authority.
///
/// Two frontiers per device, deliberately:
/// * `busy[d]` — the *primary* (guaranteed-path) frontier. Written only by
///   `d`'s owning worker, in window order. Hedges read it but never
///   advance it: speculative reads ride the device's spare bandwidth and
///   must not delay reserved capacity — otherwise a fast worker's hedge
///   could push a lagging worker's earlier-window primaries past their
///   deadlines and break the paper's guarantee from the side.
/// * `spec[d]` — the speculative frontier. Hedges serialize against each
///   other (and start no earlier than the primary work the device has
///   accepted so far); losers roll back off it.
///
/// Leaf lock (class `engine.hedge`): nothing else is ever acquired while
/// it is held.
struct HedgeState {
    busy: Vec<u64>,
    spec: Vec<u64>,
}

struct Engine {
    cfg: ServerConfig,
    registry: TenantRegistry,
    ring: WindowRing,
    fault: Arc<FaultPlane>,
    dispatch: Mutex<DispatchState>,
    /// Lock-free mirror of `DispatchState::sealed_through` for fast paths.
    sealed_floor: AtomicU64,
    /// Highest window any request was admitted into.
    max_target: AtomicU64,
    handles: Mutex<Vec<Arc<HandleShared>>>,
    txs: Vec<Sender<WorkMsg>>,
    /// Cross-worker device busy frontier for hedged reads.
    hedge: Mutex<HedgeState>,
    stat: Option<StatState>,
    stats: GlobalStats,
    hist: LatencyHistogram,
    next_id: AtomicU64,
    shutdown: AtomicBool,
    /// Quiesce gate (lock class `engine.quiesce`): every submission holds
    /// the read side for its full duration; [`QosServer::halt`] sets
    /// `shutdown` and then passes through the write side once, so an ack
    /// that raced past the shutdown check still lands in the frozen
    /// snapshot — an admission is either counted or refused, never lost.
    quiesce: RwLock<()>,
    /// Write-ahead log (None = durability off, serving exactly as before).
    wal: Option<Arc<Wal>>,
}

/// The concurrent multi-tenant serving engine.
///
/// Wraps the paper's admission controller and online retrieval behind a
/// thread-safe front door: register tenants, hand out [`SubmitterHandle`]s
/// to submitter threads, and collect a [`MetricsSnapshot`] at the end.
///
/// ```
/// use fqos_server::{QosServer, ServerConfig};
/// use fqos_core::{OverloadPolicy, QosConfig};
///
/// let server = QosServer::new(ServerConfig::new(QosConfig::paper_9_3_1())).unwrap();
/// server.register(1, 2, OverloadPolicy::Delay).unwrap();
/// let mut h = server.handle();
/// assert!(h.submit(1, 42, 0).is_admitted());
/// drop(h);
/// let m = server.finish();
/// assert_eq!(m.served, 1);
/// assert_eq!(m.guaranteed_violations, 0);
/// ```
pub struct QosServer {
    engine: Arc<Engine>,
    workers: Vec<JoinHandle<()>>,
}

impl QosServer {
    /// Build the engine and spawn its worker pool. With
    /// [`ServerConfig::wal`] set this starts a **fresh** log epoch
    /// (discarding any previous log in the directory); use
    /// [`QosServer::recover`] to continue one.
    pub fn new(cfg: ServerConfig) -> Result<Self, String> {
        cfg.validate()?;
        let wal = match &cfg.wal {
            Some(wal_cfg) => Some(Arc::new(Wal::create(wal_cfg)?)),
            None => None,
        };
        Self::build(cfg, wal)
    }

    /// Rebuild a server from the write-ahead log in
    /// `cfg.wal` (required): load the compaction snapshot, replay the log
    /// tail (discarding a torn final record), charge sealed-but-unsettled
    /// admissions to `fault_lost`, re-park the admissions of still-open
    /// windows into the window ring, and restore every per-tenant and
    /// global counter — leaving a state where the conservation law
    /// `served + fault_lost + hedges_cancelled == admitted_total` holds
    /// over the durable admissions. The reopened log continues from where
    /// the previous epoch ended, so recovery is itself crash-consistent
    /// (a second crash replays to the same state).
    pub fn recover(cfg: ServerConfig) -> Result<Self, String> {
        cfg.validate()?;
        let Some(wal_cfg) = cfg.wal.clone() else {
            return Err("recover requires a WAL configuration (with_wal)".into());
        };
        let t0 = std::time::Instant::now();
        let (wal, report) = Wal::resume(&wal_cfg)?;
        // Every sealed-but-unsettled admission's dispatch died with the
        // old process: the durable outcome is Lost.
        let crash_lost = wal.resolve_crash_losses();
        let state = wal.state_snapshot();
        let server = Self::build(cfg, Some(Arc::new(wal)))?;
        let restored = server.engine.restore_state(&state)?;
        let s = &server.engine.stats;
        s.recovered_admissions.store(restored, Ordering::Relaxed);
        s.recovered_lost.store(crash_lost, Ordering::Relaxed);
        s.replay_records.store(report.records, Ordering::Relaxed);
        s.replay_duration_ns
            .store(t0.elapsed().as_nanos() as u64, Ordering::Relaxed);
        // `torn` covers any truncation: a torn tail *or* a corrupt frame
        // mid-file — replay stops at the first bad frame either way and
        // the log is cut back to the last good byte.
        s.replay_truncated
            .store(u64::from(report.torn), Ordering::Relaxed);
        // Fold the recovered state into a fresh snapshot so the *next*
        // restart replays only post-recovery records.
        if let Some(wal) = &server.engine.wal {
            wal.compact();
        }
        Ok(server)
    }

    fn build(cfg: ServerConfig, wal: Option<Arc<Wal>>) -> Result<Self, String> {
        let limit = cfg.qos.request_limit();
        let devices = cfg.qos.devices();
        let workers = cfg.workers.min(devices);
        let stat = (cfg.qos.epsilon > 0.0).then(|| {
            // One-time table build; 1500 trials puts the P_k sampling error
            // well under typical ε resolution.
            let k_max = 2 * limit + 8;
            StatState {
                counters: Mutex::new(StatisticalCounters::new()),
                probabilities: optimal_retrieval_probabilities(
                    &cfg.qos.scheme,
                    k_max,
                    1500,
                    0x5eed_cafe,
                ),
                k_max,
            }
        });
        let (txs, rxs): (Vec<_>, Vec<_>) = (0..workers)
            .map(|_| bounded::<WorkMsg>(cfg.queue_depth))
            .unzip();
        let fault = Arc::new(FaultPlane::with_health(
            devices,
            cfg.fault_schedule.clone(),
            cfg.health_params(),
        )?);
        let engine = Arc::new(Engine {
            registry: TenantRegistry::new_with_wal(limit, cfg.shards, wal.clone()),
            ring: WindowRing::new(
                cfg.ring_slots,
                devices,
                cfg.qos.accesses,
                cfg.assignment,
                Arc::clone(&fault),
                cfg.hedge_enabled,
            ),
            fault,
            dispatch: Mutex::new(DispatchState { sealed_through: 0 }),
            sealed_floor: AtomicU64::new(0),
            max_target: AtomicU64::new(0),
            handles: Mutex::new(Vec::new()),
            txs,
            hedge: Mutex::new(HedgeState {
                busy: vec![0; devices],
                spec: vec![0; devices],
            }),
            stat,
            stats: GlobalStats::default(),
            hist: LatencyHistogram::new(),
            next_id: AtomicU64::new(0),
            shutdown: AtomicBool::new(false),
            quiesce: RwLock::new(()),
            wal,
            cfg,
        });
        let threads = rxs
            .into_iter()
            .enumerate()
            .map(|(w, rx)| {
                let engine = Arc::clone(&engine);
                crate::sync::thread::Builder::new()
                    .name(format!("fqos-worker-{w}"))
                    .spawn(move || worker_loop(w, workers, rx, engine))
                    .map_err(|e| format!("spawning worker {w}: {e}"))
            })
            .collect::<Result<Vec<_>, _>>()?;
        Ok(QosServer {
            engine,
            workers: threads,
        })
    }

    /// The configuration the server runs with.
    pub fn config(&self) -> &ServerConfig {
        &self.engine.cfg
    }

    /// Register a tenant with a per-interval reservation (counts against
    /// `S(M)`).
    pub fn register(
        &self,
        tenant: u64,
        reserved: usize,
        policy: OverloadPolicy,
    ) -> Result<Arc<Tenant>, RegisterError> {
        self.engine.registry.register(tenant, reserved, policy)
    }

    /// Deregister a tenant, freeing its reservation.
    pub fn deregister(&self, tenant: u64) -> Option<Arc<Tenant>> {
        self.engine.registry.deregister(tenant)
    }

    /// Look up a live tenant's record (reservation, policy, counters). A
    /// cluster controller reads the policy here before re-registering the
    /// tenant on a migration target.
    pub fn tenant(&self, tenant: u64) -> Option<Arc<Tenant>> {
        self.engine.registry.get(tenant)
    }

    /// Remaining admittable reservation below `S(M)`.
    pub fn headroom(&self) -> usize {
        self.engine.registry.headroom()
    }

    /// The shared device-health plane (fault counters, per-window masks).
    pub fn fault_plane(&self) -> &FaultPlane {
        &self.engine.fault
    }

    /// Inject a live device failure, effective from the next unsealed
    /// window. Requests already dispatched to the device stay on the wire;
    /// requests admitted but not yet sealed are drained and re-dispatched
    /// to surviving replicas at seal.
    pub fn inject_fault(&self, device: usize) -> Result<(), String> {
        self.engine.inject(device, FaultKind::Fail)
    }

    /// Return a live-failed device to service, effective from the next
    /// unsealed window.
    pub fn recover_device(&self, device: usize) -> Result<(), String> {
        self.engine.inject(device, FaultKind::Recover)
    }

    /// Silently degrade `device`'s service time by `factor` (≥ 2) from the
    /// next unsealed window. Unlike [`QosServer::inject_fault`] nothing is
    /// told to admission: the device keeps accepting work at `factor×`
    /// speed until the health scorer condemns it from observed latencies —
    /// the fail-slow threat model.
    pub fn degrade_device(&self, device: usize, factor: u32) -> Result<(), String> {
        self.engine.inject(device, FaultKind::Slow(factor))
    }

    /// Restore a degraded device to calibrated speed from the next
    /// unsealed window. The scorer still has to *observe* the recovery
    /// (or probe it) before the device re-enters schedules.
    pub fn restore_device(&self, device: usize) -> Result<(), String> {
        self.engine.inject(device, FaultKind::Restore)
    }

    /// The per-window guaranteed capacity currently in force: `S(M)` when
    /// healthy, tightened to the degraded bound `min(S(M), M · live)` while
    /// any device is down at `window`'s execution interval.
    pub fn request_limit_at(&self, window: u64) -> usize {
        let e = &self.engine;
        let mask = e.fault.admission_mask(window);
        e.registry
            .limit()
            .min(e.fault.degraded_limit(mask, e.cfg.qos.accesses))
    }

    /// Create a submitter handle for one producer thread. Handles must be
    /// closed (or dropped) for the engine to seal past their watermark.
    pub fn handle(&self) -> SubmitterHandle {
        let engine = Arc::clone(&self.engine);
        // Initialize under the dispatch lock: an in-flight pump recomputes
        // its seal target under this lock, so it cannot seal past a
        // watermark it has not seen.
        let shared;
        {
            let ds = engine.dispatch.lock();
            shared = Arc::new(HandleShared {
                watermark: AtomicU64::new(ds.sealed_through),
                closed: AtomicBool::new(false),
            });
            let mut handles = engine.handles.lock();
            handles.retain(|h| !h.closed.load(Ordering::Acquire));
            handles.push(Arc::clone(&shared));
        }
        SubmitterHandle { engine, shared }
    }

    /// Live metrics. Taken mid-flight it may lag in-progress requests;
    /// [`QosServer::finish`] gives the settled view.
    pub fn metrics(&self) -> MetricsSnapshot {
        self.engine.snapshot()
    }

    /// Seal all remaining windows, drain the workers and return the final
    /// metrics. Outstanding handles are force-closed; submitter threads
    /// must be done with them before this is called.
    pub fn finish(self) -> MetricsSnapshot {
        for h in self.engine.handles.lock().iter() {
            h.closed.store(true, Ordering::Release);
        }
        self.engine.pump();
        self.engine.shutdown.store(true, Ordering::Release);
        for tx in &self.engine.txs {
            let _ = tx.send(WorkMsg::Stop);
        }
        for t in self.workers {
            let _ = t.join();
        }
        // Settlement records from the drained workers may still sit in the
        // fsync batch buffer; a clean shutdown leaves nothing undurable.
        if let Some(wal) = &self.engine.wal {
            wal.sync_now();
        }
        self.engine.snapshot()
    }

    /// Fail-stop the array **without** draining: no final pump, so open
    /// windows never seal and their admissions never settle. Workers are
    /// stopped and joined (items already dispatched to their queues still
    /// complete — they left the admission plane before the failure), then
    /// the counters are frozen into the returned snapshot. The residue
    /// `admitted_total − served − fault_lost − hedges_cancelled` is the
    /// work the failure stranded; the cluster tier charges it to
    /// `evacuation_lost`. The WAL (if any) is flushed and kept on disk so
    /// a later [`QosServer::recover`] can reconcile the stranded work from
    /// the durable record — this models an array whose serving path dies
    /// while its log device survives.
    pub fn halt(self) -> MetricsSnapshot {
        self.engine.shutdown.store(true, Ordering::Release);
        // Wait out submissions that passed the shutdown check before the
        // store: the workers are still draining their queues here, so an
        // in-flight submit blocked on dispatch backpressure completes
        // rather than deadlocking against us.
        drop(self.engine.quiesce.write());
        for tx in &self.engine.txs {
            let _ = tx.send(WorkMsg::Stop);
        }
        for t in self.workers {
            let _ = t.join();
        }
        if let Some(wal) = &self.engine.wal {
            wal.sync_now();
        }
        self.engine.snapshot()
    }
}

impl Engine {
    /// Apply a live health transition at the next unsealed window. Taking
    /// the dispatch lock orders the injection against in-flight seals: a
    /// window is either sealed entirely before the event (its dispatches
    /// already left) or sees the new mask in its seal-time recheck.
    fn inject(&self, device: usize, kind: FaultKind) -> Result<(), String> {
        let ds = self.dispatch.lock();
        self.fault.inject(device, kind, ds.sealed_through)
    }

    /// Highest window we may seal *up to* (exclusive) right now.
    fn seal_target(&self) -> u64 {
        let handles = self.handles.lock();
        let mut min = u64::MAX;
        for h in handles.iter() {
            if !h.closed.load(Ordering::Acquire) {
                min = min.min(h.watermark.load(Ordering::Acquire));
            }
        }
        drop(handles);
        if min == u64::MAX {
            // No open handles: everything admitted so far is final.
            self.max_target.load(Ordering::Acquire).saturating_add(1)
        } else {
            min
        }
    }

    /// Seal and dispatch every window that can no longer receive requests.
    fn pump(&self) {
        // Optimistic skip without the dispatch lock (can only under-seal,
        // never over-seal — a later pump catches up).
        if self.seal_target() <= self.sealed_floor.load(Ordering::Acquire) {
            return;
        }
        let mut ds = self.dispatch.lock();
        let target = self.seal_target();
        let t_ns = self.cfg.qos.interval_ns;
        let workers = self.txs.len();
        while ds.sealed_through < target {
            let w = ds.sealed_through;
            let sealed = self.ring.seal(w);
            self.stats.windows_sealed.fetch_add(1, Ordering::Relaxed);
            if let Some(wal) = &self.wal {
                // The seal record is force-synced BEFORE any of the
                // window's items are dispatched: after a crash, every
                // durable admission of a sealed window whose settle record
                // is missing is deterministically crash-lost.
                wal.log_seal(w);
                for &t in &sealed.lost {
                    wal.log_settle(w, t, SettleKind::Lost);
                }
                crash_point("seal-mid-batch");
            }
            // Seal-time losses settle per-tenant too (the global counter
            // lives in the fault plane), so per-tenant in-flight reconciles.
            for &t in &sealed.lost {
                if let Some(rec) = self.registry.lookup_any(t) {
                    rec.counters.lost.fetch_add(1, Ordering::Relaxed);
                }
            }
            if let Some(stat) = &self.stat {
                // Every elapsed interval counts toward the R_k history,
                // including empty ones (they dilute Q, per §III-B2).
                stat.counters.lock().record_interval(sealed.total as usize);
            }
            if sealed.total > 0 {
                self.stats
                    .max_window_guaranteed
                    .fetch_max(sealed.guaranteed, Ordering::Relaxed);
                self.stats
                    .max_window_total
                    .fetch_max(sealed.total, Ordering::Relaxed);
                let exec_start = (w + 1) * t_ns;
                let deadline = (w + 2) * t_ns;
                let stopping = self.shutdown.load(Ordering::Acquire);
                // One settlement sink per logical write in this window,
                // shared by its replica copies (group ids are
                // window-local).
                let mut sinks: std::collections::HashMap<u32, Arc<WriteSink>> =
                    std::collections::HashMap::new();
                for item in sealed.items {
                    if stopping {
                        continue; // workers are gone; drop on the floor
                    }
                    let write = item.write_group.map(|(group, fanout)| {
                        Arc::clone(sinks.entry(group).or_insert_with(|| {
                            Arc::new(WriteSink {
                                remaining: AtomicU64::new(u64::from(fanout)),
                                lost: AtomicBool::new(false),
                                latest_finish: AtomicU64::new(0),
                            })
                        }))
                    });
                    // `lookup_any`: a tenant that deregistered after this
                    // request was admitted (migration drain) must still
                    // settle against its counters, not vanish from them.
                    let msg = WorkMsg::Item(Box::new(WorkItem {
                        tenant: self.registry.lookup_any(item.tenant),
                        tenant_id: item.tenant,
                        req: item.req,
                        exec_start,
                        deadline,
                        guaranteed: item.guaranteed,
                        replica_mask: item.replica_mask,
                        write,
                    }));
                    // Blocking send = backpressure: submitters stall here
                    // once a worker's backlog hits queue_depth.
                    let _ = self.txs[item.req.device % workers].send(msg);
                }
            }
            // Probe tick: a condemned device that no longer receives work
            // would never produce the samples needed to clear it.
            self.fault.health_tick(w);
            ds.sealed_through = w + 1;
            self.sealed_floor.store(w + 1, Ordering::Release);
        }
    }

    fn snapshot(&self) -> MetricsSnapshot {
        let s = &self.stats;
        let wal = self
            .wal
            .as_deref()
            .map(Wal::wal_counters)
            .unwrap_or_default();
        MetricsSnapshot {
            admitted: s.admitted.load(Ordering::Relaxed),
            overflow: s.overflow.load(Ordering::Relaxed),
            delayed: s.delayed.load(Ordering::Relaxed),
            rejected: s.rejected.load(Ordering::Relaxed),
            served: s.served.load(Ordering::Relaxed),
            write_settled: s.write_settled.load(Ordering::Relaxed),
            write_lost: s.write_lost.load(Ordering::Relaxed),
            gc_host_pages: s.gc_host_pages.load(Ordering::Relaxed),
            gc_pages: s.gc_pages.load(Ordering::Relaxed),
            gc_relocated: s.gc_relocated.load(Ordering::Relaxed),
            gc_erases: s.gc_erases.load(Ordering::Relaxed),
            deadline_violations: s.violations.load(Ordering::Relaxed),
            guaranteed_violations: s.guaranteed_violations.load(Ordering::Relaxed),
            max_window_guaranteed: s.max_window_guaranteed.load(Ordering::Relaxed),
            max_window_total: s.max_window_total.load(Ordering::Relaxed),
            windows_sealed: s.windows_sealed.load(Ordering::Relaxed),
            degraded_windows: self.fault.degraded_windows(),
            fault_reroutes: self.fault.reroutes(),
            fault_redispatches: self.fault.redispatches(),
            fault_overloads: self.fault.overloads(),
            fault_lost: self.fault.lost(),
            fault_rejected: self.fault.unavailable_rejects(),
            hedges_issued: s.hedges_issued.load(Ordering::Relaxed),
            hedges_won: s.hedges_won.load(Ordering::Relaxed),
            hedges_cancelled: s.hedges_cancelled.load(Ordering::Relaxed),
            retries: self.fault.retries(),
            slow_detected: self.fault.slow_detected(),
            health_suspects: self.fault.health_suspects(),
            health_recoveries: self.fault.health_recoveries(),
            p50_latency_ns: self.hist.quantile_ns(0.5),
            p99_latency_ns: self.hist.quantile_ns(0.99),
            p999_latency_ns: self.hist.quantile_ns(0.999),
            max_latency_ns: self.hist.max_ns(),
            mean_latency_ns: self.hist.mean_ns(),
            wal_records: wal.records,
            wal_fsyncs: wal.fsyncs,
            wal_compactions: wal.compactions,
            wal_misordered: wal.misordered,
            wal_io_errors: wal.io_errors,
            recovered_admissions: s.recovered_admissions.load(Ordering::Relaxed),
            recovered_lost: s.recovered_lost.load(Ordering::Relaxed),
            wal_replay_records: s.replay_records.load(Ordering::Relaxed),
            wal_replay_duration_ns: s.replay_duration_ns.load(Ordering::Relaxed),
            wal_replay_truncated: s.replay_truncated.load(Ordering::Relaxed),
            tenants: self
                .registry
                .all_tenants()
                .iter()
                .map(|t| {
                    let c = &t.counters;
                    TenantSnapshot {
                        tenant: t.id,
                        reserved: t.reserved,
                        live: t.is_live(),
                        admitted: c.admitted.load(Ordering::Relaxed),
                        overflow: c.overflow.load(Ordering::Relaxed),
                        delayed: c.delayed.load(Ordering::Relaxed),
                        rejected: c.rejected.load(Ordering::Relaxed),
                        violations: c.violations.load(Ordering::Relaxed),
                        served: c.served.load(Ordering::Relaxed),
                        hedge_wins: c.hedge_wins.load(Ordering::Relaxed),
                        lost: c.lost.load(Ordering::Relaxed),
                        write_settled: c.write_settled.load(Ordering::Relaxed),
                        write_lost: c.write_lost.load(Ordering::Relaxed),
                    }
                })
                .collect(),
        }
    }

    /// Log one admission and hit the post-admit crash point. Called on
    /// every admitted `submit` path after counters are bumped, before the
    /// outcome is returned — so with `fsync_batch = 1` the admission is
    /// durable strictly before its ack.
    fn wal_admit(
        &self,
        window: u64,
        tenant: u64,
        lbn: u64,
        guaranteed: bool,
        delayed: bool,
        is_write: bool,
    ) {
        if let Some(wal) = &self.wal {
            wal.log_admit(window, tenant, lbn, guaranteed, delayed, is_write);
            // The record is durable (or at least appended); the submitter
            // has not seen the ack yet — the durable-unacked crash window.
            crash_point("post-admit-pre-ack");
        }
    }

    /// Log one completion settlement. The item's window is recovered from
    /// its execution phase start (`exec_start = (w + 1)·T`).
    fn wal_settle(&self, item: &WorkItem, kind: SettleKind) {
        if let Some(wal) = &self.wal {
            let window = item.exec_start / self.cfg.qos.interval_ns - 1;
            wal.log_settle(window, item.tenant_id, kind);
        }
    }

    /// Recovery: fold a replayed [`WalState`] into the freshly built
    /// engine — tenants (with preset counters), global counters, the
    /// sealed-through floor, and the still-open windows' admissions
    /// re-parked into the window ring. Returns how many admissions were
    /// re-parked.
    fn restore_state(&self, state: &WalState) -> Result<u64, String> {
        for (&id, t) in &state.tenants {
            self.registry
                .restore_record(
                    id,
                    t.reserved as usize,
                    crate::wal::decode_policy(t.policy),
                    t.live,
                    t,
                )
                .map_err(|e| format!("restoring tenant {id}: {e}"))?;
        }
        let s = &self.stats;
        s.admitted.store(state.admitted, Ordering::Relaxed);
        s.overflow.store(state.overflow, Ordering::Relaxed);
        s.delayed.store(state.delayed, Ordering::Relaxed);
        s.served.store(state.served, Ordering::Relaxed);
        s.write_settled
            .store(state.write_settled, Ordering::Relaxed);
        s.write_lost.store(state.write_lost, Ordering::Relaxed);
        s.hedges_won.store(state.hedges_won, Ordering::Relaxed);
        // hedges_cancelled == hedges_won is the exactly-once invariant;
        // the WAL stores the pair as one number.
        s.hedges_cancelled
            .store(state.hedges_won, Ordering::Relaxed);
        s.windows_sealed
            .store(state.sealed_through, Ordering::Relaxed);
        self.fault.restore_lost(state.lost);
        // Rejections, violations, delay totals and the latency histogram
        // are non-durable telemetry: they restart at zero.
        {
            let mut ds = self.dispatch.lock();
            ds.sealed_through = state.sealed_through;
            self.sealed_floor
                .store(state.sealed_through, Ordering::Release);
        }
        let scheme = &self.cfg.qos.scheme;
        let t_ns = self.cfg.qos.interval_ns;
        let mut restored = 0u64;
        let mut max_target = state.sealed_through.saturating_sub(1);
        for (&w, entries) in &state.open {
            for e in entries {
                // A durable admission into a window the log also seals
                // would have been moved to `pending` by replay; an open
                // entry below the floor is defensive only — forfeit it as
                // lost rather than corrupt a reused ring slot.
                if w < state.sealed_through {
                    self.forfeit_recovered(w, e.tenant, e.is_write);
                    continue;
                }
                let id = self.next_id.fetch_add(1, Ordering::Relaxed);
                let req = if e.is_write {
                    IoRequest::write_block(id, w * t_ns, 0, e.lbn)
                } else {
                    IoRequest::read_block(id, w * t_ns, 0, e.lbn)
                };
                let replicas = scheme.replicas(scheme.bucket_for_lbn(e.lbn));
                // Reservation was enforced when the admission was first
                // granted; re-parking must not second-guess it (the
                // tenant may have since departed), so pass an unbounded
                // reservation and fall back to the overflow slot. Writes
                // have no overflow slot (the statistical path never admits
                // them), so a write that no longer fits is forfeited.
                let ok = if e.guaranteed {
                    matches!(
                        self.ring.try_admit(w, e.tenant, usize::MAX, req, replicas),
                        AdmitResult::Admitted | AdmitResult::AdmittedSlow
                    ) || (!e.is_write && self.ring.add_overflow(w, e.tenant, req, replicas))
                } else {
                    self.ring.add_overflow(w, e.tenant, req, replicas)
                };
                if ok {
                    restored += 1;
                    max_target = max_target.max(w);
                } else {
                    // Unreachable short of every replica being down at
                    // restart; account it lost, never drop it silently.
                    self.forfeit_recovered(w, e.tenant, e.is_write);
                }
            }
        }
        self.max_target.fetch_max(max_target, Ordering::AcqRel);
        Ok(restored)
    }

    /// Charge one un-re-parkable recovered admission as lost (`fault_lost`
    /// for reads, `write_lost` for writes), in the engine's books and the
    /// WAL's materialized state.
    fn forfeit_recovered(&self, window: u64, tenant: u64, is_write: bool) {
        if is_write {
            self.stats.write_lost.fetch_add(1, Ordering::Relaxed);
        } else {
            self.fault.note_lost();
        }
        if let Some(rec) = self.registry.lookup_any(tenant) {
            let c = &rec.counters;
            if is_write {
                c.write_lost.fetch_add(1, Ordering::Relaxed);
            } else {
                c.lost.fetch_add(1, Ordering::Relaxed);
            }
        }
        if let Some(wal) = &self.wal {
            wal.forfeit_open(window, tenant, is_write);
        }
    }
}

/// A per-thread submission endpoint. Not `Sync` by design: each submitter
/// thread gets its own handle ([`QosServer::handle`]), and arrival times
/// must be non-decreasing per handle (late arrivals are clamped to the
/// handle's watermark window).
pub struct SubmitterHandle {
    engine: Arc<Engine>,
    shared: Arc<HandleShared>,
}

impl SubmitterHandle {
    /// Submit one 8 KiB block read for `tenant` at simulated time
    /// `arrival_ns`. Admission, replica assignment, dispatch and
    /// backpressure all happen inside this call.
    pub fn submit(&mut self, tenant: u64, lbn: u64, arrival_ns: u64) -> SubmitOutcome {
        self.submit_op(tenant, lbn, arrival_ns, IoOp::Read)
    }

    /// Submit one 8 KiB block **write**. A write is admitted against *all*
    /// `c` replicas of its block — feasibility charges every replica's
    /// remaining capacity (plus any GC-pressure reserve) — and at seal it
    /// fans out to one dispatch per replica. The logical write settles
    /// `write_settled` only when every copy lands (all-must-settle);
    /// losing any copy to a fail-stopped device past the bounded retry
    /// budget settles it `write_lost` instead. Writes never ride the
    /// statistical overflow path and are never hedged.
    pub fn submit_write(&mut self, tenant: u64, lbn: u64, arrival_ns: u64) -> SubmitOutcome {
        self.submit_op(tenant, lbn, arrival_ns, IoOp::Write)
    }

    /// Shared admission path behind [`SubmitterHandle::submit`] (reads) and
    /// [`SubmitterHandle::submit_write`] (replica fan-out writes).
    pub fn submit_op(&mut self, tenant: u64, lbn: u64, arrival_ns: u64, op: IoOp) -> SubmitOutcome {
        let engine = &self.engine;
        let _quiesce = engine.quiesce.read();
        if engine.shutdown.load(Ordering::Acquire) {
            return SubmitOutcome::Rejected(RejectReason::ServerStopping);
        }
        let t_ns = engine.cfg.qos.interval_ns;
        // Publish the watermark BEFORE attempting admission: from here on
        // the dispatcher will not seal `window` or anything after it.
        let window = (arrival_ns / t_ns).max(self.shared.watermark.load(Ordering::Relaxed));
        self.shared.watermark.store(window, Ordering::Release);

        let Some(tenant_rec) = engine.registry.get(tenant) else {
            engine.stats.rejected.fetch_add(1, Ordering::Relaxed);
            engine.pump();
            return SubmitOutcome::Rejected(RejectReason::UnknownTenant);
        };
        let scheme = &engine.cfg.qos.scheme;
        let replicas = scheme.replicas(scheme.bucket_for_lbn(lbn));
        let id = engine.next_id.fetch_add(1, Ordering::Relaxed);
        let req = match op {
            // Final device chosen at window seal (writes fan out to all).
            IoOp::Read => IoRequest::read_block(id, arrival_ns, 0, lbn),
            IoOp::Write => IoRequest::write_block(id, arrival_ns, 0, lbn),
        };
        let is_write = op == IoOp::Write;

        let horizon = match tenant_rec.policy {
            OverloadPolicy::Delay => engine.cfg.delay_horizon,
            OverloadPolicy::Reject => 0,
        };
        let mut admitted_at = None;
        let mut any_full = false;
        for k in 0..=horizon {
            match engine
                .ring
                .try_admit(window + k, tenant, tenant_rec.reserved, req, replicas)
            {
                AdmitResult::Admitted => {
                    admitted_at = Some(k);
                    break;
                }
                AdmitResult::Full => {
                    any_full = true;
                    // The statistical overflow path trades a deadline
                    // guarantee for admission — meaningless for a write,
                    // whose fan-out must charge real capacity on every
                    // replica. Writes shed at admission instead.
                    if k == 0 && !is_write {
                        if let Some(out) = self.try_overflow(&tenant_rec, window, req, replicas) {
                            return out;
                        }
                    }
                }
                // Every replica is on a scorer-condemned (but live) device:
                // the data is readable, just slow. The ring parked the
                // request without a deadline promise — account it on the
                // overflow (best-effort) path rather than reject readable
                // data.
                AdmitResult::AdmittedSlow => {
                    let w = window + k;
                    tenant_rec.counters.overflow.fetch_add(1, Ordering::Relaxed); // ledger: defer(settled at seal_window — served or fault_lost)
                    engine.stats.overflow.fetch_add(1, Ordering::Relaxed); // ledger: defer(settled at seal_window — served or fault_lost)
                    engine.wal_admit(w, tenant, lbn, false, false, is_write);
                    engine.max_target.fetch_max(w, Ordering::AcqRel);
                    engine.pump();
                    return SubmitOutcome::Overflow { window: w };
                }
                // Every replica down for this window; a later window only
                // helps if a recovery is scheduled inside the horizon.
                AdmitResult::Unavailable => {}
            }
        }
        let c = &tenant_rec.counters;
        let outcome = match admitted_at {
            Some(0) => {
                c.admitted.fetch_add(1, Ordering::Relaxed); // ledger: defer(settled at seal_window — served or fault_lost)
                engine.stats.admitted.fetch_add(1, Ordering::Relaxed); // ledger: defer(settled at seal_window — served or fault_lost)
                engine.wal_admit(window, tenant, lbn, true, false, is_write);
                SubmitOutcome::Admitted { window }
            }
            Some(k) => {
                c.admitted.fetch_add(1, Ordering::Relaxed); // ledger: defer(settled at seal_window — served or fault_lost)
                c.delayed.fetch_add(1, Ordering::Relaxed);
                c.delay_ns.fetch_add(k * t_ns, Ordering::Relaxed);
                engine.stats.admitted.fetch_add(1, Ordering::Relaxed); // ledger: defer(settled at seal_window — served or fault_lost)
                engine.stats.delayed.fetch_add(1, Ordering::Relaxed);
                engine.wal_admit(window + k, tenant, lbn, true, true, is_write);
                SubmitOutcome::Delayed {
                    window: window + k,
                    delayed_windows: k,
                }
            }
            None => {
                c.rejected.fetch_add(1, Ordering::Relaxed);
                engine.stats.rejected.fetch_add(1, Ordering::Relaxed);
                let reason = if any_full {
                    match tenant_rec.policy {
                        OverloadPolicy::Delay => RejectReason::HorizonExhausted,
                        OverloadPolicy::Reject => RejectReason::WindowFull,
                    }
                } else {
                    // Never parked on a dead device: refused outright.
                    engine.fault.note_unavailable_reject();
                    RejectReason::ReplicasUnavailable
                };
                SubmitOutcome::Rejected(reason)
            }
        };
        if let Some(w) = outcome.window() {
            engine.max_target.fetch_max(w, Ordering::AcqRel);
        }
        engine.pump();
        outcome
    }

    /// Statistical overflow (§III-B2): past the deterministic limit, admit
    /// while the projected violation probability `Q` stays below `ε`.
    fn try_overflow(
        &self,
        tenant_rec: &Tenant,
        window: u64,
        req: IoRequest,
        replicas: &[usize],
    ) -> Option<SubmitOutcome> {
        let engine = &self.engine;
        let stat = engine.stat.as_ref()?;
        let k = engine.ring.admitted_total(window) + 1;
        if k > stat.k_max
            || !stat
                .counters
                .lock()
                .would_admit(k, &stat.probabilities, engine.cfg.qos.epsilon)
        {
            return None;
        }
        if !engine
            .ring
            .add_overflow(window, tenant_rec.id, req, replicas)
        {
            // Every replica down: the statistical path refuses too.
            return None;
        }
        tenant_rec.counters.overflow.fetch_add(1, Ordering::Relaxed); // ledger: defer(settled at seal_window — served or fault_lost)
        engine.stats.overflow.fetch_add(1, Ordering::Relaxed); // ledger: defer(settled at seal_window — served or fault_lost)
        engine.wal_admit(window, tenant_rec.id, req.lbn, false, false, false);
        engine.max_target.fetch_max(window, Ordering::AcqRel);
        engine.pump();
        Some(SubmitOutcome::Overflow { window })
    }

    /// Inject a live device failure from this submitter thread (see
    /// [`QosServer::inject_fault`]).
    pub fn inject_fault(&self, device: usize) -> Result<(), String> {
        self.engine.inject(device, FaultKind::Fail)
    }

    /// Return a live-failed device to service (see
    /// [`QosServer::recover_device`]).
    pub fn recover_device(&self, device: usize) -> Result<(), String> {
        self.engine.inject(device, FaultKind::Recover)
    }

    /// Silently degrade a device from this submitter thread (see
    /// [`QosServer::degrade_device`]).
    pub fn degrade_device(&self, device: usize, factor: u32) -> Result<(), String> {
        self.engine.inject(device, FaultKind::Slow(factor))
    }

    /// Restore a degraded device from this submitter thread (see
    /// [`QosServer::restore_device`]).
    pub fn restore_device(&self, device: usize) -> Result<(), String> {
        self.engine.inject(device, FaultKind::Restore)
    }

    /// Advance this handle's watermark to `arrival_ns`'s window without
    /// submitting anything. A multi-array router calls this on the arrays a
    /// handle is *not* currently routing to, so their dispatchers keep
    /// sealing windows even while all traffic goes elsewhere (an open
    /// handle whose watermark never moves would otherwise pin every window
    /// at or above it open forever).
    pub fn advance_to(&mut self, arrival_ns: u64) {
        let engine = &self.engine;
        if engine.shutdown.load(Ordering::Acquire) {
            return;
        }
        let window = arrival_ns / engine.cfg.qos.interval_ns;
        if window > self.shared.watermark.load(Ordering::Relaxed) {
            self.shared.watermark.store(window, Ordering::Release);
            engine.pump();
        }
    }

    /// Register a tenant from this submitter thread (see
    /// [`QosServer::register`]); a migration target re-registers the
    /// drained tenant through the destination array's handle.
    pub fn register(
        &self,
        tenant: u64,
        reserved: usize,
        policy: OverloadPolicy,
    ) -> Result<Arc<Tenant>, RegisterError> {
        self.engine.registry.register(tenant, reserved, policy)
    }

    /// Deregister a tenant from this submitter thread (see
    /// [`QosServer::deregister`]). The reservation frees immediately;
    /// in-flight admissions still settle against the departed record.
    pub fn deregister(&self, tenant: u64) -> Option<Arc<Tenant>> {
        self.engine.registry.deregister(tenant)
    }

    /// Close the handle: the engine may seal all windows this handle could
    /// still have reached. Dropping the handle does the same.
    pub fn close(self) {}
}

impl Drop for SubmitterHandle {
    fn drop(&mut self) {
        self.shared.closed.store(true, Ordering::Release);
        self.engine.pump();
    }
}

/// Worker `w` owns every device `d` with `d % workers == w` (local slot
/// `d / workers`) and serves dispatched items FCFS — which is window order,
/// because the dispatcher is serialized.
///
/// # Hedged reads (fail-slow tolerance)
///
/// Each dispatch first runs on its assigned device against the shared busy
/// frontier. If the projected completion crosses the device's adaptive
/// hedge threshold — or misses the interval deadline outright — the worker
/// speculatively re-issues the read on alternate replicas (earliest
/// estimated finish first), bounded by `retry_limit` attempts spaced
/// `retry_backoff_ns` apart. First completion wins: losing attempts are
/// rolled back off the frontier and a winning hedge cancels the primary's
/// reservation, so speculative capacity is reclaimed exactly.
#[allow(clippy::needless_pass_by_value)] // thread entry: owns its receiver + engine handle
fn worker_loop(worker: usize, workers: usize, rx: Receiver<WorkMsg>, engine: Arc<Engine>) {
    let devices = engine.cfg.qos.devices();
    let service = engine.cfg.qos.service_ns;
    let t_ns = engine.cfg.qos.interval_ns;
    let n_local = (devices + workers - 1 - worker) / workers;
    // With a GC model attached, writes run at their configured program
    // latency through a per-device page-mapped FTL whose relocation work
    // stalls the device in-line (see `fqos_flashsim::CalibratedSsd`).
    let write_service = engine
        .cfg
        .gc
        .as_ref()
        .and_then(|g| g.write_service_ns)
        .unwrap_or(service);
    let mut devs: Vec<CalibratedSsd> = (0..n_local)
        .map(|_| {
            let ssd = CalibratedSsd::with_latencies(service, write_service);
            match &engine.cfg.gc {
                // Geometry was validated with the server config; should a
                // mismatch slip through anyway, serve without the GC model
                // rather than kill the worker (writes then run at plain
                // program cost — degraded fidelity, never lost requests).
                Some(g) => match CalibratedSsd::with_latencies(service, write_service)
                    .with_gc(g.geometry, g.erase_ns)
                {
                    Ok(s) => s,
                    Err(_) => ssd,
                },
                None => ssd,
            }
        })
        .collect();
    while let Ok(WorkMsg::Item(item)) = rx.recv() {
        let d = item.req.device;
        // `exec_start` is `(t+1)·T`, so the wall-clock window the item
        // executes in is `exec_start / T`.
        let exec_window = item.exec_start / t_ns;
        if let Some(sink) = item.write.clone() {
            serve_write_copy(&engine, &mut devs[d / workers], &item, &sink, exec_window);
            continue;
        }
        // Every fault-plane lookup happens BEFORE the hedge lock:
        // `fault.inner` and `fault.health` are peers of `engine.hedge` in
        // the lock hierarchy, never nested inside it.
        let factor = engine.fault.slow_factor_at(d, exec_window);
        let threshold = engine.fault.hedge_threshold(d);
        let completion = {
            let mut hs = engine.hedge.lock();
            devs[d / workers].set_degradation(factor);
            devs[d / workers].advance_busy(hs.busy[d]);
            let c = devs[d / workers].submit(&item.req, item.exec_start);
            hs.busy[d] = c.finish;
            c
        };
        // The scorer samples the *service* component only: queueing delay
        // is the scheduler's doing, not evidence about device health. The
        // threshold above was read first so an outlier cannot vouch for
        // itself.
        engine
            .fault
            .observe(d, completion.finish - completion.service_start, exec_window);
        hedge_and_settle(
            &engine,
            &mut devs[d / workers],
            &item,
            exec_window,
            threshold,
            completion,
        );
    }
}

/// Serve one replica copy of a fan-out write on its assigned device, then
/// fold the outcome into the logical write's shared [`WriteSink`].
///
/// Unlike reads, a write copy may be *dispatched at* a device that
/// fail-stopped between admission and execution (the seal deliberately
/// fans writes to every replica so surviving copies keep the data's
/// redundancy). The copy retries across the bounded backoff budget
/// (`retry_limit` re-issues spaced `retry_backoff_ns` apart) waiting for a
/// scheduled recovery; a copy still facing a dead device after the last
/// attempt is lost, and the logical write settles `write_lost`. Writes are
/// **never hedged**: a speculative duplicate of a write would either fork
/// the replica state or double-program the FTL — the fan-out itself is the
/// redundancy mechanism.
fn serve_write_copy(
    engine: &Engine,
    dev: &mut CalibratedSsd,
    item: &WorkItem,
    sink: &WriteSink,
    exec_window: u64,
) {
    let d = item.req.device;
    let cfg = &engine.cfg;
    let t_ns = cfg.qos.interval_ns;
    let mut outcome: Option<Completion> = None;
    let mut retries = 0u64;
    for attempt in 0..=cfg.retry_limit as u64 {
        let issue = item.exec_start + attempt * cfg.retry_backoff_ns;
        let issue_window = issue / t_ns;
        if engine.fault.mask_at(issue_window) >> d & 1 == 1 {
            // Fail-stopped at this attempt's issue time; back off and
            // re-check (a scheduled recovery may land mid-interval).
            if attempt < cfg.retry_limit as u64 {
                retries += 1;
            }
            continue;
        }
        let factor = engine.fault.slow_factor_at(d, issue_window);
        let before = dev.gc_stats();
        let completion = {
            let mut hs = engine.hedge.lock();
            dev.set_degradation(factor);
            dev.advance_busy(hs.busy[d]);
            let c = dev.submit(&item.req, issue);
            hs.busy[d] = c.finish;
            c
        };
        // Aggregate this write's GC work (the worker owns the device, so
        // the stats delta is exactly this submission's).
        let after = dev.gc_stats();
        let host = after.host_pages - before.host_pages;
        let gc_pages = after.gc_pages - before.gc_pages;
        let s = &engine.stats;
        s.gc_host_pages.fetch_add(host, Ordering::Relaxed);
        s.gc_pages.fetch_add(gc_pages, Ordering::Relaxed);
        s.gc_relocated
            .fetch_add(after.relocated - before.relocated, Ordering::Relaxed);
        s.gc_erases
            .fetch_add(after.erases - before.erases, Ordering::Relaxed);
        // The service sample (program + in-line GC stall) feeds the health
        // scorer — a GC storm looks exactly like a fail-slow episode from
        // the outside, which is the point: hedged reads route around it.
        engine
            .fault
            .observe(d, completion.finish - completion.service_start, exec_window);
        // Feed the admission-side GC-pressure reserve only when the config
        // asks for it; the EWMA otherwise stays at 1.0 and reserves 0.
        if host > 0 && cfg.gc.as_ref().is_some_and(|g| g.reserve) {
            engine.fault.observe_gc(d, host, host + gc_pages);
        }
        outcome = Some(completion);
        break;
    }
    for _ in 0..retries {
        engine.fault.note_retry();
    }
    settle_write_copy(engine, item, sink, outcome);
}

/// Fold one copy's outcome into the logical write's sink; the last copy to
/// land settles the write exactly once.
fn settle_write_copy(
    engine: &Engine,
    item: &WorkItem,
    sink: &WriteSink,
    outcome: Option<Completion>,
) {
    match &outcome {
        Some(c) => {
            sink.latest_finish.fetch_max(c.finish, Ordering::Relaxed);
        }
        None => {
            sink.lost.store(true, Ordering::Relaxed);
        }
    }
    if sink.remaining.fetch_sub(1, Ordering::AcqRel) != 1 {
        return; // copies still outstanding; they will settle
    }
    // Last copy: settle the logical write.
    let lost = sink.lost.load(Ordering::Relaxed);
    let finish = sink.latest_finish.load(Ordering::Relaxed);
    if lost {
        engine.stats.write_lost.fetch_add(1, Ordering::Relaxed);
        if let Some(t) = &item.tenant {
            t.counters.write_lost.fetch_add(1, Ordering::Relaxed);
        }
        engine.wal_settle(item, SettleKind::WriteLost);
        return;
    }
    engine.hist.record(finish.saturating_sub(item.req.arrival));
    engine.stats.write_settled.fetch_add(1, Ordering::Relaxed);
    // A write is done when its slowest replica lands; audit that against
    // the interval deadline. GC stalls and retry backoff legitimately push
    // writes late — the deadline promise the engine *keeps* is for
    // guaranteed reads, so write misses land in the general violation
    // count only.
    if finish > item.deadline {
        engine.stats.violations.fetch_add(1, Ordering::Relaxed);
        if let Some(t) = &item.tenant {
            t.counters.violations.fetch_add(1, Ordering::Relaxed);
        }
    }
    if let Some(t) = &item.tenant {
        t.counters.write_settled.fetch_add(1, Ordering::Relaxed);
    }
    engine.wal_settle(item, SettleKind::WriteSettled);
}

/// A hedge candidate: an alternate replica of the dispatched block.
struct HedgeCandidate {
    dev: usize,
    /// What the scheduler *believes* one block costs there (scorer EWMA).
    believed_ns: u64,
    /// What it *actually* costs (scripted degradation ground truth).
    actual_ns: u64,
    tried: bool,
}

/// Decide whether to hedge `item`'s primary completion, run the bounded
/// speculative-attempt loop, and settle the request exactly once: the
/// winner is counted as `served` (primary) or `hedges_won` plus
/// `hedges_cancelled` for the cancelled primary — never both.
fn hedge_and_settle(
    engine: &Engine,
    primary_dev: &mut CalibratedSsd,
    item: &WorkItem,
    exec_window: u64,
    threshold: Option<u64>,
    completion: Completion,
) {
    let d = item.req.device;
    let cfg = &engine.cfg;
    // Trigger on evidence of *device* trouble — the service component
    // crossing the adaptive threshold — or on a projected deadline miss
    // (which also catches pathological queueing). Queueing below the
    // deadline is the scheduler's normal business and never hedges.
    let service_lat = completion.finish.saturating_sub(completion.service_start);
    let candidate_mask = item.replica_mask & !(1u64 << d);
    let trigger = cfg.hedge_enabled
        && candidate_mask != 0
        && (threshold.is_some_and(|thr| service_lat > thr) || completion.finish > item.deadline);
    if !trigger {
        settle_primary(engine, item, completion.finish);
        return;
    }

    // Candidate replicas: not the primary, not fail-stop dead this
    // interval. A silently slow replica *is* a candidate — the scorer's
    // belief, not ground truth, drives the earliest-finish choice.
    let fail_mask = engine.fault.mask_at(exec_window);
    let service = cfg.qos.service_ns;
    let mut cands: Vec<HedgeCandidate> = (0..cfg.qos.devices())
        .filter(|&a| candidate_mask >> a & 1 == 1 && fail_mask >> a & 1 == 0)
        .map(|a| HedgeCandidate {
            dev: a,
            believed_ns: engine.fault.service_estimate(a, service),
            actual_ns: service * u64::from(engine.fault.slow_factor_at(a, exec_window)),
            tried: false,
        })
        .collect();
    if cands.is_empty() {
        settle_primary(engine, item, completion.finish);
        return;
    }

    let mut hedges_issued = 0u64;
    let mut retries = 0u64;
    // Winning hedge, if any: (device, service_start, finish).
    let mut winner: Option<(usize, u64, u64)> = None;
    let mut winner_finish = completion.finish;
    {
        // One hedge-lock hold covers place → compare → rollback, so the
        // frontier restore is exact (nothing else moves in between).
        let mut hs = engine.hedge.lock();
        let mut placed: Vec<(usize, u64, u64)> = Vec::new(); // (dev, prev_busy, finish)
        for attempt in 1..=cfg.retry_limit as u64 {
            if winner_finish <= item.deadline {
                break;
            }
            // Attempt 1 (the hedge) fires immediately off the primary's
            // projection — completions are known at submit in simulated
            // time, so the speculative read starts with the window's
            // execution phase. Each later attempt models a re-issue after
            // one more backoff period.
            let issue = item.exec_start + (attempt - 1) * cfg.retry_backoff_ns;
            // A hedge starts after the primary work its target has
            // accepted so far AND after every speculative read already
            // parked there.
            let Some(ci) = (0..cands.len())
                .filter(|&i| !cands[i].tried)
                .min_by_key(|&i| {
                    let dev = cands[i].dev;
                    hs.busy[dev].max(hs.spec[dev]).max(issue) + cands[i].believed_ns
                })
            else {
                break;
            };
            let dev = cands[ci].dev;
            let start = hs.busy[dev].max(hs.spec[dev]).max(issue);
            if start + cands[ci].believed_ns >= winner_finish {
                // Nothing is believed to beat the current winner; further
                // speculation only burns replica bandwidth.
                break;
            }
            cands[ci].tried = true;
            let fin = start + cands[ci].actual_ns;
            placed.push((dev, hs.spec[dev], fin));
            hs.spec[dev] = fin;
            if attempt == 1 {
                hedges_issued += 1;
            } else {
                retries += 1;
            }
            if fin < winner_finish {
                winner_finish = fin;
                winner = Some((dev, start, fin));
            }
        }
        // First-completion-wins: roll every losing attempt back off the
        // speculative frontier (reverse order restores prior values).
        for &(dev, prev, fin) in placed.iter().rev() {
            if winner.is_some_and(|(wd, _, wf)| wd == dev && wf == fin) {
                continue;
            }
            if hs.spec[dev] == fin {
                hs.spec[dev] = prev;
            }
        }
        // A winning hedge cancels the primary, reclaiming its slot on the
        // primary frontier. `busy[d]` is owner-written and this worker IS
        // the owner, so the reclaim cannot race; the guard is belt and
        // braces.
        if winner.is_some() && hs.busy[d] == completion.finish && primary_dev.cancel(&completion) {
            hs.busy[d] = completion.service_start;
        }
    }
    if hedges_issued > 0 {
        engine
            .stats
            .hedges_issued
            .fetch_add(hedges_issued, Ordering::Relaxed);
    }
    for _ in 0..retries {
        engine.fault.note_retry();
    }
    match winner {
        None => settle_primary(engine, item, completion.finish),
        Some((wdev, start, fin)) => {
            // The hedge's service latency is a health sample for the
            // replica that absorbed it.
            engine.fault.observe(wdev, fin - start, exec_window);
            engine.stats.hedges_won.fetch_add(1, Ordering::Relaxed);
            engine
                .stats
                .hedges_cancelled
                .fetch_add(1, Ordering::Relaxed);
            engine.hist.record(fin.saturating_sub(item.req.arrival));
            let violated = fin > item.deadline;
            if violated {
                engine.stats.violations.fetch_add(1, Ordering::Relaxed);
                if item.guaranteed {
                    engine
                        .stats
                        .guaranteed_violations
                        .fetch_add(1, Ordering::Relaxed);
                }
            }
            // Hedge wins settle per-tenant too, so per-tenant completions
            // (`served + hedge_wins`) reconcile against admissions even on
            // the speculative path.
            if let Some(t) = &item.tenant {
                t.counters.hedge_wins.fetch_add(1, Ordering::Relaxed);
                if violated {
                    t.counters.violations.fetch_add(1, Ordering::Relaxed);
                }
            }
            engine.wal_settle(item, SettleKind::HedgeWin);
        }
    }
}

/// The primary dispatch stood: count it served and audit its deadline.
/// Per-tenant `served` deliberately tracks the global `served` counter
/// (primary wins only), so per-tenant totals stay reconcilable.
fn settle_primary(engine: &Engine, item: &WorkItem, finish: u64) {
    engine.hist.record(finish.saturating_sub(item.req.arrival));
    engine.stats.served.fetch_add(1, Ordering::Relaxed);
    let violated = finish > item.deadline;
    if violated {
        engine.stats.violations.fetch_add(1, Ordering::Relaxed);
        if item.guaranteed {
            engine
                .stats
                .guaranteed_violations
                .fetch_add(1, Ordering::Relaxed);
        }
    }
    if let Some(t) = &item.tenant {
        t.counters.served.fetch_add(1, Ordering::Relaxed);
        if violated {
            t.counters.violations.fetch_add(1, Ordering::Relaxed);
        }
    }
    engine.wal_settle(item, SettleKind::Served);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::AssignmentMode;
    use fqos_core::QosConfig;

    fn server() -> QosServer {
        QosServer::new(ServerConfig::new(QosConfig::paper_9_3_1())).unwrap()
    }

    #[test]
    fn single_request_round_trip() {
        let s = server();
        s.register(1, 1, OverloadPolicy::Delay).unwrap();
        let mut h = s.handle();
        assert_eq!(h.submit(1, 7, 10), SubmitOutcome::Admitted { window: 0 });
        h.close();
        let m = s.finish();
        assert_eq!(m.admitted, 1);
        assert_eq!(m.served, 1);
        assert_eq!(m.deadline_violations, 0);
        assert_eq!(m.guaranteed_violations, 0);
        assert_eq!(m.max_window_guaranteed, 1);
        // One interval of queueing + service, never more.
        let t = BASE_T;
        assert!(
            m.max_latency_ns <= 2 * t,
            "{} > {}",
            m.max_latency_ns,
            2 * t
        );
    }

    const BASE_T: u64 = 133_000;

    #[test]
    fn dropping_a_handle_mid_window_drains_cleanly() {
        // Companion to tests/model.rs `handle_drop_mid_window_conserves_requests`:
        // one handle drops while another still holds the window open, then
        // the survivor keeps admitting into the same window.
        let s = server();
        s.register(1, 2, OverloadPolicy::Delay).unwrap();
        let mut ha = s.handle();
        let mut hb = s.handle();
        assert!(ha.submit(1, 0, 0).is_admitted());
        drop(ha); // hb's watermark (0) keeps window 0 open across this pump
        assert!(hb.submit(1, 1, 0).is_admitted());
        assert!(hb.submit(1, 1, BASE_T).is_admitted());
        drop(hb);
        let m = s.finish();
        assert_eq!(m.admitted_total(), 3);
        assert_eq!(m.served, 3, "drain may not strand admitted requests");
        assert_eq!(m.fault_lost, 0);
        assert_eq!(m.guaranteed_violations, 0);
    }

    #[test]
    fn unknown_tenant_is_rejected() {
        let s = server();
        let mut h = s.handle();
        assert_eq!(
            h.submit(9, 0, 0),
            SubmitOutcome::Rejected(RejectReason::UnknownTenant)
        );
        drop(h);
        assert_eq!(s.finish().rejected, 1);
    }

    #[test]
    fn delay_policy_spreads_a_burst_over_windows() {
        let s = server();
        // Reservation 2 per interval; a burst of 6 in window 0 spreads over
        // three windows.
        s.register(1, 2, OverloadPolicy::Delay).unwrap();
        let mut h = s.handle();
        let outcomes: Vec<SubmitOutcome> = (0..6).map(|i| h.submit(1, i, 0)).collect();
        assert_eq!(outcomes[0], SubmitOutcome::Admitted { window: 0 });
        assert_eq!(outcomes[1], SubmitOutcome::Admitted { window: 0 });
        assert_eq!(
            outcomes[2],
            SubmitOutcome::Delayed {
                window: 1,
                delayed_windows: 1
            }
        );
        assert_eq!(
            outcomes[5],
            SubmitOutcome::Delayed {
                window: 2,
                delayed_windows: 2
            }
        );
        drop(h);
        let m = s.finish();
        assert_eq!(m.admitted, 6);
        assert_eq!(m.delayed, 4);
        assert_eq!(m.served, 6);
        assert_eq!(m.guaranteed_violations, 0);
        assert_eq!(m.max_window_guaranteed, 2);
    }

    #[test]
    fn reject_policy_drops_excess() {
        let s = server();
        s.register(1, 1, OverloadPolicy::Reject).unwrap();
        let mut h = s.handle();
        assert!(h.submit(1, 0, 0).is_admitted());
        assert_eq!(
            h.submit(1, 1, 0),
            SubmitOutcome::Rejected(RejectReason::WindowFull)
        );
        drop(h);
        let m = s.finish();
        assert_eq!(m.admitted, 1);
        assert_eq!(m.rejected, 1);
        assert_eq!(m.served, 1);
    }

    #[test]
    fn windows_advance_with_arrival_time() {
        let s = server();
        s.register(1, 1, OverloadPolicy::Delay).unwrap();
        let mut h = s.handle();
        for w in 0..5u64 {
            assert_eq!(
                h.submit(1, w, w * BASE_T),
                SubmitOutcome::Admitted { window: w }
            );
        }
        drop(h);
        let m = s.finish();
        assert_eq!(m.admitted, 5);
        assert_eq!(m.served, 5);
        assert_eq!(m.guaranteed_violations, 0);
        assert_eq!(m.max_window_guaranteed, 1);
        assert!(m.windows_sealed >= 5);
    }

    #[test]
    fn late_arrivals_clamp_to_the_watermark() {
        let s = server();
        s.register(1, 2, OverloadPolicy::Delay).unwrap();
        let mut h = s.handle();
        assert!(h.submit(1, 0, 10 * BASE_T).is_admitted());
        // Arrival time runs backwards; the handle clamps to window 10.
        let out = h.submit(1, 1, 0);
        assert_eq!(out, SubmitOutcome::Admitted { window: 10 });
        drop(h);
        let m = s.finish();
        assert_eq!(m.served, 2);
    }

    #[test]
    fn multi_threaded_submitters_never_violate_guarantees() {
        let s = QosServer::new(
            ServerConfig::new(QosConfig::paper_9_3_1())
                .with_workers(4)
                .with_queue_depth(8),
        )
        .unwrap();
        // Full reservation: 2 + 2 + 1 = 5 = S(1).
        for (t, r) in [(1u64, 2usize), (2, 2), (3, 1)] {
            s.register(t, r, OverloadPolicy::Delay).unwrap();
        }
        let server = std::sync::Arc::new(s);
        let threads: Vec<_> = [(1u64, 2u64), (2, 2), (3, 1)]
            .into_iter()
            .map(|(tenant, per_window)| {
                let mut h = server.handle();
                std::thread::spawn(move || {
                    let mut admitted = 0u64;
                    for w in 0..200u64 {
                        for i in 0..per_window {
                            let lbn = tenant * 1000 + w * 10 + i;
                            if h.submit(tenant, lbn, w * BASE_T + i).is_admitted() {
                                admitted += 1;
                            }
                        }
                    }
                    admitted
                })
            })
            .collect();
        let admitted: u64 = threads.into_iter().map(|t| t.join().unwrap()).sum();
        assert_eq!(admitted, 200 * 5);
        let server = std::sync::Arc::into_inner(server).unwrap();
        let m = server.finish();
        assert_eq!(m.served, 1000);
        assert_eq!(m.guaranteed_violations, 0);
        assert!(m.max_window_guaranteed <= 5);
    }

    #[test]
    fn overflow_requires_epsilon() {
        // ε = 0: a full window under Reject policy refuses; nothing ever
        // takes the overflow path.
        let s = server();
        s.register(1, 5, OverloadPolicy::Reject).unwrap();
        let mut h = s.handle();
        for i in 0..5 {
            assert!(h.submit(1, i, 0).is_admitted());
        }
        assert!(!h.submit(1, 5, 0).is_admitted());
        drop(h);
        let m = s.finish();
        assert_eq!(m.overflow, 0);
        assert_eq!(m.max_window_total, 5);
    }

    #[test]
    fn statistical_overflow_admits_past_the_limit() {
        let cfg = ServerConfig::new(QosConfig::paper_9_3_1().with_epsilon(0.3));
        let s = QosServer::new(cfg).unwrap();
        s.register(1, 5, OverloadPolicy::Reject).unwrap();
        let mut h = s.handle();
        // Build a history of small intervals so Q stays below ε.
        for w in 0..50u64 {
            assert!(h.submit(1, w, w * BASE_T).is_admitted());
        }
        // Now burst past the deterministic limit in one window.
        let w = 50u64;
        let mut overflow = 0;
        for i in 0..8u64 {
            match h.submit(1, 100 + i, w * BASE_T) {
                SubmitOutcome::Overflow { .. } => overflow += 1,
                SubmitOutcome::Admitted { .. } => {}
                other => panic!("unexpected outcome {other:?}"),
            }
        }
        assert_eq!(overflow, 3, "5 guaranteed + 3 overflow");
        drop(h);
        let m = s.finish();
        assert_eq!(m.overflow, 3);
        assert!(m.max_window_total > m.max_window_guaranteed);
        // Overflow stacked past the deadline may hedge onto a sibling
        // replica; either way each admission completes exactly once.
        assert_eq!(m.hedges_won, m.hedges_cancelled);
        assert_eq!(m.completed(), 58);
        // Overflow may violate; the guarantee only covers deterministic
        // admissions from un-spilled windows — here there is no later
        // window, so guaranteed violations stay zero.
        assert_eq!(m.guaranteed_violations, 0);
    }

    #[test]
    fn finish_with_no_traffic_is_clean() {
        let s = server();
        let m = s.finish();
        assert_eq!(m.served, 0);
        assert_eq!(m.admitted_total(), 0);
    }

    #[test]
    fn submit_after_finish_is_rejected() {
        let s = server();
        s.register(1, 1, OverloadPolicy::Delay).unwrap();
        let mut h = s.handle();
        assert!(h.submit(1, 0, 0).is_admitted());
        let engine = Arc::clone(&h.engine);
        drop(h);
        s.finish();
        let mut late = SubmitterHandle {
            shared: Arc::new(HandleShared {
                watermark: AtomicU64::new(0),
                closed: AtomicBool::new(false),
            }),
            engine,
        };
        assert_eq!(
            late.submit(1, 0, 0),
            SubmitOutcome::Rejected(RejectReason::ServerStopping)
        );
    }

    #[test]
    fn scripted_failure_serves_degraded_without_violations() {
        use crate::fault::FaultSchedule;
        let cfg = ServerConfig::new(QosConfig::paper_9_3_1())
            .with_fault_schedule(FaultSchedule::new().fail(0, 3).recover(0, 6));
        let s = QosServer::new(cfg).unwrap();
        assert_eq!(s.request_limit_at(0), 5);
        // paper_9_3_1 has M = 1, so the degraded cap is 8 ≥ S(1) = 5: the
        // guarantee survives a single failure at full reserved capacity.
        assert_eq!(s.request_limit_at(4), 5, "degraded bound stays at S(M)");
        s.register(1, 3, OverloadPolicy::Delay).unwrap();
        let mut h = s.handle();
        for w in 0..10u64 {
            for i in 0..3u64 {
                assert!(h.submit(1, w * 3 + i, w * BASE_T + i).is_admitted());
            }
        }
        drop(h);
        let m = s.finish();
        assert_eq!(m.served, 30);
        assert_eq!(m.guaranteed_violations, 0);
        assert_eq!(m.deadline_violations, 0);
        assert_eq!(m.fault_lost, 0);
        assert!(m.degraded_windows >= 3, "{}", m.degraded_windows);
        assert!(
            m.fault_reroutes > 0,
            "device 0 hosts buckets 0..3's replicas"
        );
        assert_eq!(
            m.fault_redispatches, 0,
            "scripted faults re-route at admission"
        );
    }

    #[test]
    fn beyond_tolerance_rejects_instead_of_stalling() {
        use crate::fault::FaultSchedule;
        // Kill all three replicas of bucket 0 (devices 0, 1, 2 host the
        // design block's rotations): bucket 0 is unavailable, the engine
        // must refuse it promptly and keep serving other buckets.
        let mut schedule = FaultSchedule::new();
        for d in [0usize, 1, 2] {
            schedule = schedule.fail(d, 0);
        }
        let cfg = ServerConfig::new(QosConfig::paper_9_3_1()).with_fault_schedule(schedule);
        let s = QosServer::new(cfg).unwrap();
        s.register(1, 2, OverloadPolicy::Delay).unwrap();
        let mut h = s.handle();
        assert_eq!(
            h.submit(1, 0, 0),
            SubmitOutcome::Rejected(RejectReason::ReplicasUnavailable)
        );
        // Bucket 20's replicas avoid the dead trio in the (9,3,1) design.
        let ok = h.submit(1, 20, 0);
        assert!(ok.is_admitted(), "{ok:?}");
        drop(h);
        let m = s.finish();
        assert_eq!(m.fault_rejected, 1);
        assert_eq!(m.rejected, 1);
        assert_eq!(m.fault_lost, 0);
        assert_eq!(m.served, m.admitted);
    }

    #[test]
    fn live_injection_redispatches_inflight_work() {
        let s = server();
        s.register(1, 2, OverloadPolicy::Delay).unwrap();
        let mut h = s.handle();
        // Park two requests in window 0, then kill a device before the
        // window seals: the drain must land them on survivors.
        assert!(h.submit(1, 0, 0).is_admitted());
        assert!(h.submit(1, 1, 0).is_admitted());
        h.inject_fault(0).unwrap();
        // Advance time so window 0 seals under the new mask.
        assert!(h.submit(1, 2, 2 * BASE_T).is_admitted());
        drop(h);
        let m = s.finish();
        assert_eq!(m.served, 3);
        assert_eq!(m.fault_lost, 0);
        assert!(m.degraded_windows > 0);
    }

    #[test]
    fn deregister_mid_window_settles_the_departed_tenant() {
        // Migration drain shape: the tenant deregisters while its window is
        // still open. The window-ring reservations must not be stranded —
        // the departed record settles them at seal.
        let s = server();
        s.register(1, 2, OverloadPolicy::Delay).unwrap();
        let mut h = s.handle();
        assert!(h.submit(1, 0, 0).is_admitted());
        assert!(h.submit(1, 1, 0).is_admitted());
        assert!(s.deregister(1).is_some());
        assert_eq!(s.headroom(), 5, "reservation freed before the seal");
        // The freed capacity is immediately re-admittable in the same window.
        s.register(2, 3, OverloadPolicy::Delay).unwrap();
        assert!(h.submit(2, 2, 0).is_admitted());
        drop(h);
        let m = s.finish();
        assert_eq!(m.admitted_total(), 3);
        assert_eq!(m.served, 3);
        assert_eq!(m.fault_lost, 0);
        let t1 = m.tenants.iter().find(|t| t.tenant == 1).unwrap();
        assert!(!t1.live);
        assert_eq!(t1.admitted, 2, "departed counters stay reported");
        assert_eq!(t1.served, 2, "seal settles against the departed record");
        assert_eq!(t1.in_flight(), 0);
        let t2 = m.tenants.iter().find(|t| t.tenant == 2).unwrap();
        assert!(t2.live);
        assert_eq!(t2.served, 1);
    }

    #[test]
    fn deregister_at_seal_boundary_keeps_per_tenant_conservation() {
        // Deregister exactly when the watermark crosses a window boundary:
        // window 0 seals with tenant 1 already departed.
        let s = server();
        s.register(1, 2, OverloadPolicy::Delay).unwrap();
        let mut h = s.handle();
        assert!(h.submit(1, 0, 0).is_admitted());
        assert!(s.deregister(1).is_some());
        h.advance_to(2 * BASE_T); // seals window 0 post-departure
        let mid = s.metrics();
        assert!(mid.windows_sealed >= 1, "{}", mid.windows_sealed);
        drop(h);
        let m = s.finish();
        let t1 = m.tenants.iter().find(|t| t.tenant == 1).unwrap();
        assert_eq!(t1.served + t1.hedge_wins, 1);
        assert_eq!(t1.in_flight(), 0, "no stranded reservations");
        assert_eq!(m.served + m.hedges_won, m.admitted_total());
    }

    #[test]
    fn advance_to_seals_windows_without_traffic() {
        // A router keeps time moving on idle arrays via `advance_to`; the
        // watermark advance alone must let the dispatcher seal.
        let s = server();
        s.register(1, 1, OverloadPolicy::Delay).unwrap();
        let mut h = s.handle();
        assert!(h.submit(1, 0, 0).is_admitted());
        h.advance_to(3 * BASE_T);
        let m = s.metrics();
        assert!(m.windows_sealed >= 3, "{}", m.windows_sealed);
        // Monotone: a stale advance is a no-op, not a regression.
        h.advance_to(BASE_T);
        assert!(h.submit(1, 1, 3 * BASE_T).is_admitted());
        drop(h);
        let m = s.finish();
        assert_eq!(m.served, 2);
        assert_eq!(m.guaranteed_violations, 0);
    }

    #[test]
    fn eft_mode_serves_with_the_same_guarantee() {
        let cfg = ServerConfig::new(QosConfig::paper_9_3_1()).with_assignment(AssignmentMode::Eft);
        let s = QosServer::new(cfg).unwrap();
        s.register(1, 5, OverloadPolicy::Delay).unwrap();
        let mut h = s.handle();
        for w in 0..20u64 {
            for i in 0..5u64 {
                assert!(h.submit(1, w * 5 + i, w * BASE_T).is_admitted());
            }
        }
        drop(h);
        let m = s.finish();
        assert_eq!(m.served, 100);
        assert_eq!(m.guaranteed_violations, 0);
    }

    /// The extended conservation law the write path adds (see DESIGN.md):
    /// `served + write_settled + fault_lost + hedges_cancelled +
    /// write_lost == admitted_total`.
    fn assert_extended_law(m: &MetricsSnapshot) {
        assert_eq!(
            m.served + m.write_settled + m.fault_lost + m.hedges_cancelled + m.write_lost,
            m.admitted_total(),
            "extended conservation law violated: {m:#?}"
        );
    }

    #[test]
    fn write_fans_out_and_settles_once() {
        let s = server();
        s.register(1, 1, OverloadPolicy::Delay).unwrap();
        let mut h = s.handle();
        assert_eq!(
            h.submit_write(1, 7, 10),
            SubmitOutcome::Admitted { window: 0 }
        );
        h.close();
        let m = s.finish();
        assert_eq!(m.admitted, 1);
        // One logical settlement, not one per replica copy.
        assert_eq!(m.write_settled, 1);
        assert_eq!(m.served, 0);
        assert_eq!(m.write_lost, 0);
        assert_eq!(m.deadline_violations, 0);
        assert_eq!(m.tenants[0].write_settled, 1);
        assert_extended_law(&m);
    }

    #[test]
    fn mixed_reads_and_writes_conserve() {
        let s = server();
        s.register(1, 4, OverloadPolicy::Delay).unwrap();
        let mut h = s.handle();
        for w in 0..10u64 {
            for i in 0..4u64 {
                let lbn = w * 4 + i;
                let admitted = if i % 2 == 0 {
                    h.submit_write(1, lbn, w * BASE_T).is_admitted()
                } else {
                    h.submit(1, lbn, w * BASE_T).is_admitted()
                };
                assert!(admitted, "w={w} i={i}");
            }
        }
        drop(h);
        let m = s.finish();
        assert_eq!(m.served, 20);
        assert_eq!(m.write_settled, 20);
        assert_eq!(m.write_lost, 0);
        assert_eq!(m.guaranteed_violations, 0);
        assert_extended_law(&m);
    }

    #[test]
    fn write_losing_a_replica_past_retries_settles_write_lost() {
        let s = server();
        s.register(1, 1, OverloadPolicy::Delay).unwrap();
        // Fail one replica of the block before admission: the write still
        // fans out to it (redundancy is the point), but the copy faces a
        // dead device through the whole retry budget.
        let scheme = s.config().qos.scheme.clone();
        let dead = scheme.replicas(scheme.bucket_for_lbn(7))[0];
        s.inject_fault(dead).unwrap();
        let mut h = s.handle();
        assert!(h.submit_write(1, 7, 10).is_admitted());
        drop(h);
        let m = s.finish();
        assert_eq!(m.admitted, 1);
        assert_eq!(m.write_settled, 0);
        assert_eq!(m.write_lost, 1, "{m:#?}");
        assert_eq!(m.tenants[0].write_lost, 1);
        assert_extended_law(&m);
    }

    #[test]
    fn writes_are_refused_when_every_replica_is_down() {
        let s = server();
        s.register(1, 1, OverloadPolicy::Delay).unwrap();
        let scheme = s.config().qos.scheme.clone();
        for &d in scheme.replicas(scheme.bucket_for_lbn(7)) {
            s.inject_fault(d).unwrap();
        }
        let mut h = s.handle();
        assert_eq!(
            h.submit_write(1, 7, 10),
            SubmitOutcome::Rejected(RejectReason::ReplicasUnavailable)
        );
        drop(h);
        let m = s.finish();
        assert_eq!(m.admitted_total(), 0);
        assert_eq!(m.fault_rejected, 1);
        assert_extended_law(&m);
    }

    #[test]
    fn gc_model_counts_relocation_work_and_amplification() {
        use crate::config::GcConfig;
        use fqos_flashsim::FtlGeometry;
        // Tiny FTL so sustained overwrites of a hot set provoke GC fast.
        let geometry = FtlGeometry {
            dies: 1,
            blocks_per_die: 8,
            pages_per_block: 4,
            overprovision: 0.25,
        };
        let cfg =
            ServerConfig::new(QosConfig::paper_9_3_1()).with_gc_model(GcConfig::new(geometry));
        let s = QosServer::new(cfg).unwrap();
        s.register(1, 2, OverloadPolicy::Delay).unwrap();
        let mut h = s.handle();
        let mut x = 0x2545_f491_4f6c_dd1du64;
        for w in 0..300u64 {
            // LCG-scattered overwrites of a hot set: round-robin would
            // leave every GC victim fully invalid (relocation-free); an
            // uneven order keeps live pages in victims so GC must
            // relocate.
            x = x
                .wrapping_mul(6_364_136_223_846_793_005)
                .wrapping_add(1_442_695_040_888_963_407);
            let lbn = (x >> 33) % 11;
            assert!(h.submit_write(1, lbn, w * BASE_T).is_admitted());
        }
        drop(h);
        let m = s.finish();
        assert_eq!(m.write_settled, 300);
        assert!(m.gc_host_pages > 0);
        assert!(m.gc_pages > 0, "no GC triggered: {m:#?}");
        assert!(m.gc_erases > 0);
        assert!(m.write_amplification() > 1.0);
        assert_extended_law(&m);
    }

    #[test]
    fn writes_admitted_before_a_scheduled_recovery_retry_onto_it() {
        // Replica dies at window 0 and recovers at window 1; the write's
        // dead-device copy is re-issued across the backoff budget and
        // lands once the recovery takes effect — no write_lost.
        let s = server();
        s.register(1, 1, OverloadPolicy::Delay).unwrap();
        let scheme = s.config().qos.scheme.clone();
        let dead = scheme.replicas(scheme.bucket_for_lbn(7))[0];
        s.inject_fault(dead).unwrap();
        let mut h = s.handle();
        assert!(h.submit_write(1, 7, 10).is_admitted());
        // Recover before window 0 seals: execution (window 1) sees it live.
        s.recover_device(dead).unwrap();
        drop(h);
        let m = s.finish();
        assert_eq!(m.write_settled, 1, "{m:#?}");
        assert_eq!(m.write_lost, 0);
        assert_extended_law(&m);
    }
}
