//! # fqos-server — concurrent online QoS serving engine
//!
//! The rest of the workspace reproduces the paper's algorithms as
//! single-threaded library calls; this crate puts them behind a
//! thread-safe front door so many producer threads can serve a
//! multi-tenant workload online:
//!
//! ```text
//!  submitter threads        ┌──────────────────────────────┐
//!  (one handle each)   ───► │ TenantRegistry (sharded)     │  S(M) aggregate
//!                           │   └ AppAdmission (§III-A)    │  admission
//!                           ├──────────────────────────────┤
//!                           │ WindowRing (interval slots)  │  per-window
//!                           │   └ IncrementalRetrieval /   │  feasibility,
//!                           │     EFT replica selection    │  ≤ M per device
//!                           ├──────────────────────────────┤
//!                           │ dispatcher (watermark seal)  │  in-order,
//!                           │   └ bounded worker queues    │  backpressure
//!                           ├──────────────────────────────┤
//!                           │ worker pool (device % W)     │  FCFS device
//!                           │   └ CalibratedSsd models     │  service loops
//!                           └──────────────────────────────┘
//!                                        │
//!                                        ▼
//!                           MetricsSnapshot (latency histogram,
//!                           per-tenant counters, violation audit)
//! ```
//!
//! The engine's contract is the paper's per-interval guarantee, made
//! concurrent: a request admitted deterministically into window `t` is
//! serviced in `(t+1)·T .. (t+2)·T` — **never later**, under any thread
//! interleaving. See [`engine`](QosServer) for the proof sketch and the
//! watermark protocol that makes sealing race-free; with statistical
//! admission (`ε > 0`, §III-B2) overflow requests ride along without a
//! guarantee and their violations are accounted separately.

pub mod config;
mod engine;
pub mod fault;
pub mod metrics;
pub mod registry;
mod sync;
pub mod wal;
mod window;

pub use config::{AssignmentMode, GcConfig, ServerConfig, WalConfig, WINDOW_RING};
pub use engine::{QosServer, RejectReason, SubmitOutcome, SubmitterHandle};
pub use fault::{
    DeviceHealth, FaultEvent, FaultKind, FaultPlane, FaultSchedule, FaultSpecError, HealthParams,
    DEFAULT_SLOW_FACTOR,
};
pub use fqos_core::OverloadPolicy;
pub use fqos_flashsim::{FtlGeometry, IoOp};
pub use metrics::{LatencyHistogram, MetricsSnapshot, TenantCounters, TenantSnapshot};
pub use registry::{RegisterError, Tenant, TenantRegistry};
pub use wal::CRASH_POINTS;
