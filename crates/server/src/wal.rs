//! Write-ahead durability for the serving engine.
//!
//! Every state transition the conservation law depends on — tenant
//! register/deregister, window admissions, window seals, and completion
//! settlement — is framed into an append-only, CRC-checked record log
//! before the engine acknowledges it. [`crate::QosServer::recover`]
//! replays the log (plus the latest compaction snapshot) into a state
//! where window reservations, the in-flight ledger and per-tenant
//! counters are mutually consistent and
//! `served + fault_lost + hedges_cancelled == admitted_total` holds over
//! the durable admissions.
//!
//! # Record framing and the torn-tail rule
//!
//! Each record is `[lsn u64][len u32][crc32 u32][payload]`, little-endian,
//! with the CRC taken over `lsn || payload`. LSNs are strictly increasing
//! within the file. Replay stops at the first frame that is short, fails
//! its CRC, has a non-monotonic LSN or does not decode — the partial tail
//! a crash mid-write leaves behind — and truncates the file there. A torn
//! record was by construction never acknowledged (acknowledgement happens
//! after the buffered frame reaches the log), so discarding it never
//! loses an acked admission.
//!
//! # Fsync contract
//!
//! Records accumulate in a userspace buffer and reach the file (followed
//! by one `fdatasync`) every `fsync_batch` records, or immediately for
//! the cold-path records (register/deregister/seal) and on
//! [`Wal::sync_now`]. With `fsync_batch = 1` every admission is durable
//! before `submit` returns; larger batches amortize the fsync at the cost
//! of losing at most `fsync_batch − 1` *unacknowledged-durability*
//! admissions on a crash — recovery still never resurrects a record that
//! did not reach the log.
//!
//! # Snapshot + compaction state machine
//!
//! Every `snapshot_interval` sealed windows the materialized [`WalState`]
//! is serialized to `wal.snapshot.tmp`, fsynced, renamed over
//! `wal.snapshot` (the atomic commit point), and only then is the log
//! truncated. A crash between rename and truncate leaves records the
//! snapshot already covers in the log; replay skips them by LSN, so the
//! sequence is idempotent. Restart cost is therefore bounded by the
//! records since the last compaction — the active window horizon — not by
//! history length.
//!
//! # Crash points
//!
//! `FQOS_CRASH_POINT=name[:N]` aborts the process at the `N`-th hit of a
//! named point ([`CRASH_POINTS`]), giving the crash suite deterministic
//! kill sites: pre-fsync append loss, a torn tail, a durable-but-unacked
//! admission, a sealed-but-undispatched window, and a half-finished
//! compaction swap.
//!
//! Lock class `engine.wal` (leaf): the internal mutex is acquired under
//! `engine.dispatch` (seal/compaction) and `registry.admission`
//! (register/deregister) and never holds anything else.

use crate::config::WalConfig;
use crate::sync::Mutex;
use fqos_core::OverloadPolicy;
use std::collections::BTreeMap;
use std::fs::{File, OpenOptions};
use std::io::{Read, Seek, SeekFrom, Write};
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::OnceLock;

/// Largest payload a frame may carry; anything bigger is corruption.
const MAX_PAYLOAD: usize = 256;
/// Frame header: lsn (8) + len (4) + crc (4).
const FRAME_HEADER: usize = 16;
/// Snapshot file magic (8 bytes, versioned).
const SNAP_MAGIC: &[u8; 8] = b"FQWSNAP2";

/// The deterministic crash points the injection harness recognizes, in
/// log order of the operation they interrupt.
pub const CRASH_POINTS: &[&str] = &[
    "wal-append-pre-fsync",
    "wal-append-torn",
    "post-admit-pre-ack",
    "seal-mid-batch",
    "compact-mid-swap",
    "wal-write-settle",
];

static CRASH_SPEC: OnceLock<Option<(String, u64)>> = OnceLock::new();
static CRASH_HITS: AtomicU64 = AtomicU64::new(0);

fn crash_spec() -> &'static Option<(String, u64)> {
    CRASH_SPEC.get_or_init(|| {
        let spec = std::env::var("FQOS_CRASH_POINT").ok()?;
        let spec = spec.trim().to_string();
        if spec.is_empty() {
            return None;
        }
        match spec.split_once(':') {
            Some((name, nth)) => {
                let nth: u64 = nth.trim().parse().unwrap_or(1);
                Some((name.to_string(), nth.max(1)))
            }
            None => Some((spec, 1)),
        }
    })
}

/// True exactly on the armed occurrence of `point`
/// (`FQOS_CRASH_POINT=point[:N]`, `N`-th hit, 1-based). Counts every hit
/// of the armed point so `:N` lands mid-trace deterministically.
fn crash_armed(point: &str) -> bool {
    match crash_spec() {
        Some((name, nth)) if name == point => {
            CRASH_HITS.fetch_add(1, Ordering::Relaxed) + 1 == *nth
        }
        _ => false,
    }
}

/// Abort the process (no unwinding, no destructors — a real crash) when
/// `point` is armed. No-op in production (env unset).
pub(crate) fn crash_point(point: &str) {
    if crash_armed(point) {
        std::process::abort();
    }
}

/// How a durable admission left the system.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum SettleKind {
    /// Served by its primary dispatch.
    Served,
    /// Completed by a winning hedge (counts `hedges_won` and, via the
    /// exactly-once invariant, `hedges_cancelled`).
    HedgeWin,
    /// Unservable: every replica down at seal, or stranded by a crash
    /// between seal and settlement (charged to `fault_lost`).
    Lost,
    /// A replicated write whose every copy landed (all-must-settle).
    WriteSettled,
    /// A replicated write with at least one copy permanently failed after
    /// bounded retries — or stranded mid-fan-out by a crash (charged to
    /// `write_lost`).
    WriteLost,
}

#[derive(Debug, Clone, PartialEq, Eq)]
enum WalRecord {
    Register {
        tenant: u64,
        reserved: u64,
        policy: OverloadPolicy,
    },
    Deregister {
        tenant: u64,
    },
    Admit {
        window: u64,
        tenant: u64,
        lbn: u64,
        guaranteed: bool,
        delayed: bool,
        is_write: bool,
    },
    Seal {
        window: u64,
    },
    Settle {
        window: u64,
        tenant: u64,
        kind: SettleKind,
    },
}

/// One admission of an as-yet-unsealed window, replayable into a fresh
/// window ring.
#[derive(Debug, Clone, PartialEq, Eq)]
pub(crate) struct OpenEntry {
    pub tenant: u64,
    pub lbn: u64,
    pub guaranteed: bool,
    pub delayed: bool,
    pub is_write: bool,
}

/// Per-tenant durable counters (the law-relevant subset of
/// [`crate::metrics::TenantCounters`]; rejected/violations/delay are
/// telemetry and deliberately non-durable).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub(crate) struct TenantState {
    pub reserved: u64,
    pub policy: u8,
    pub live: bool,
    pub admitted: u64,
    pub overflow: u64,
    pub delayed: u64,
    pub served: u64,
    pub hedge_wins: u64,
    pub lost: u64,
    pub write_settled: u64,
    pub write_lost: u64,
}

/// The state a full replay of the log materializes: every counter the
/// conservation law touches, the admissions of still-open windows, and
/// the unsettled residue of sealed windows.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub(crate) struct WalState {
    /// Highest LSN folded into this state (0 = none).
    pub last_lsn: u64,
    /// All windows `< sealed_through` carry a durable seal record.
    pub sealed_through: u64,
    pub admitted: u64,
    pub overflow: u64,
    pub delayed: u64,
    pub served: u64,
    pub hedges_won: u64,
    pub lost: u64,
    pub write_settled: u64,
    pub write_lost: u64,
    pub tenants: BTreeMap<u64, TenantState>,
    /// Admissions of windows without a seal record, in admission order.
    pub open: BTreeMap<u64, Vec<OpenEntry>>,
    /// Sealed windows' unsettled admissions: window → tenant → read/write
    /// counts. Non-empty at recovery = dispatches a crash stranded
    /// (crash-lost; stranded writes resolve to `write_lost`).
    pub pending: BTreeMap<u64, BTreeMap<u64, PendingCounts>>,
    /// Records that violated the durable-order contract (a settle without
    /// a durable sealed admission, an admit into a sealed window, …).
    /// Invariantly zero; the model suite asserts it on every schedule.
    pub misordered: u64,
}

/// Unsettled sealed admissions of one `(window, tenant)`, split by class:
/// a read settles `Served`/`HedgeWin`/`Lost`, a logical write settles
/// `WriteSettled`/`WriteLost` — the split keeps a crash resolution able to
/// charge stranded writes to `write_lost` rather than `fault_lost`.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub(crate) struct PendingCounts {
    pub reads: u64,
    pub writes: u64,
}

impl PendingCounts {
    fn is_empty(self) -> bool {
        self.reads == 0 && self.writes == 0
    }
}

impl WalState {
    fn apply_record(&mut self, rec: &WalRecord) {
        match *rec {
            WalRecord::Register {
                tenant,
                reserved,
                policy,
            } => {
                // A re-registered id is a fresh serving epoch: counters
                // restart (matching the registry's semantics).
                self.tenants.insert(
                    tenant,
                    TenantState {
                        reserved,
                        policy: encode_policy(policy),
                        live: true,
                        ..TenantState::default()
                    },
                );
            }
            WalRecord::Deregister { tenant } => match self.tenants.get_mut(&tenant) {
                Some(t) => t.live = false,
                None => self.misordered += 1,
            },
            WalRecord::Admit {
                window,
                tenant,
                lbn,
                guaranteed,
                delayed,
                is_write,
            } => {
                let Some(t) = self.tenants.get_mut(&tenant) else {
                    // An admit must follow its tenant's durable register.
                    self.misordered += 1;
                    return;
                };
                if guaranteed {
                    t.admitted += 1; // ledger: defer(replay tally; later Settle/Seal records in the log settle it)
                    self.admitted += 1; // ledger: defer(replay tally; later Settle/Seal records in the log settle it)
                    if delayed {
                        t.delayed += 1;
                        self.delayed += 1;
                    }
                } else {
                    t.overflow += 1; // ledger: defer(replay tally; later Settle/Seal records in the log settle it)
                    self.overflow += 1; // ledger: defer(replay tally; later Settle/Seal records in the log settle it)
                }
                if window < self.sealed_through {
                    // The watermark protocol orders every admit before its
                    // window's seal; seeing the reverse is a durability
                    // ordering bug.
                    self.misordered += 1;
                }
                self.open.entry(window).or_default().push(OpenEntry {
                    tenant,
                    lbn,
                    guaranteed,
                    delayed,
                    is_write,
                });
            }
            WalRecord::Seal { window } => {
                if window < self.sealed_through {
                    self.misordered += 1; // double seal
                }
                self.sealed_through = self.sealed_through.max(window + 1);
                if let Some(entries) = self.open.remove(&window) {
                    let per_tenant = self.pending.entry(window).or_default();
                    for e in entries {
                        let counts = per_tenant.entry(e.tenant).or_default();
                        if e.is_write {
                            counts.writes += 1;
                        } else {
                            counts.reads += 1;
                        }
                    }
                }
            }
            WalRecord::Settle {
                window,
                tenant,
                kind,
            } => {
                // A settlement is only legal against a durable, sealed,
                // not-yet-exhausted admission of (window, tenant) — of the
                // matching class (a write settle cannot consume a read
                // admission, or vice versa).
                let wants_write = matches!(kind, SettleKind::WriteSettled | SettleKind::WriteLost);
                let matched = match self.pending.get_mut(&window) {
                    Some(per_tenant) => match per_tenant.get_mut(&tenant) {
                        Some(counts) => {
                            let n = if wants_write {
                                &mut counts.writes
                            } else {
                                &mut counts.reads
                            };
                            if *n > 0 {
                                *n -= 1;
                                if counts.is_empty() {
                                    per_tenant.remove(&tenant);
                                }
                                true
                            } else {
                                false
                            }
                        }
                        None => false,
                    },
                    None => false,
                };
                if !matched {
                    self.misordered += 1;
                    return;
                }
                if self
                    .pending
                    .get(&window)
                    .is_some_and(std::collections::BTreeMap::is_empty)
                {
                    self.pending.remove(&window);
                }
                let Some(t) = self.tenants.get_mut(&tenant) else {
                    self.misordered += 1;
                    return;
                };
                match kind {
                    SettleKind::Served => {
                        t.served += 1;
                        self.served += 1;
                    }
                    SettleKind::HedgeWin => {
                        t.hedge_wins += 1;
                        self.hedges_won += 1;
                    }
                    SettleKind::Lost => {
                        t.lost += 1;
                        self.lost += 1;
                    }
                    SettleKind::WriteSettled => {
                        t.write_settled += 1;
                        self.write_settled += 1;
                    }
                    SettleKind::WriteLost => {
                        t.write_lost += 1;
                        self.write_lost += 1;
                    }
                }
            }
        }
    }

    /// Admissions durable in this state (guaranteed + overflow).
    #[cfg(test)]
    pub fn admitted_total(&self) -> u64 {
        self.admitted + self.overflow
    }
}

fn encode_policy(p: OverloadPolicy) -> u8 {
    match p {
        OverloadPolicy::Delay => 0,
        OverloadPolicy::Reject => 1,
    }
}

pub(crate) fn decode_policy(p: u8) -> OverloadPolicy {
    if p == 1 {
        OverloadPolicy::Reject
    } else {
        OverloadPolicy::Delay
    }
}

/// CRC-32 (IEEE 802.3, reflected, poly 0xEDB88320) — bitwise, dependency
/// free; the log is fsync-bound, not checksum-bound.
fn crc32(seed: u32, bytes: &[u8]) -> u32 {
    let mut crc = !seed;
    for &b in bytes {
        crc ^= u32::from(b);
        for _ in 0..8 {
            let mask = (crc & 1).wrapping_neg();
            crc = (crc >> 1) ^ (0xEDB8_8320 & mask);
        }
    }
    !crc
}

fn frame_crc(lsn: u64, payload: &[u8]) -> u32 {
    crc32(crc32(0, &lsn.to_le_bytes()), payload)
}

fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn encode_payload(rec: &WalRecord, out: &mut Vec<u8>) {
    match *rec {
        WalRecord::Register {
            tenant,
            reserved,
            policy,
        } => {
            out.push(1);
            put_u64(out, tenant);
            put_u64(out, reserved);
            out.push(encode_policy(policy));
        }
        WalRecord::Deregister { tenant } => {
            out.push(2);
            put_u64(out, tenant);
        }
        WalRecord::Admit {
            window,
            tenant,
            lbn,
            guaranteed,
            delayed,
            is_write,
        } => {
            out.push(3);
            put_u64(out, window);
            put_u64(out, tenant);
            put_u64(out, lbn);
            out.push(u8::from(guaranteed) | u8::from(delayed) << 1 | u8::from(is_write) << 2);
        }
        WalRecord::Seal { window } => {
            out.push(4);
            put_u64(out, window);
        }
        WalRecord::Settle {
            window,
            tenant,
            kind,
        } => {
            out.push(5);
            put_u64(out, window);
            put_u64(out, tenant);
            out.push(match kind {
                SettleKind::Served => 0,
                SettleKind::HedgeWin => 1,
                SettleKind::Lost => 2,
                SettleKind::WriteSettled => 3,
                SettleKind::WriteLost => 4,
            });
        }
    }
}

/// Bounds-checked little-endian reader for payload and snapshot decoding.
struct Reader<'a> {
    bytes: &'a [u8],
    off: usize,
}

impl<'a> Reader<'a> {
    fn new(bytes: &'a [u8]) -> Self {
        Reader { bytes, off: 0 }
    }

    fn take_u8(&mut self) -> Option<u8> {
        let b = *self.bytes.get(self.off)?;
        self.off += 1;
        Some(b)
    }

    fn take_u64(&mut self) -> Option<u64> {
        let end = self.off.checked_add(8)?;
        let chunk = self.bytes.get(self.off..end)?;
        self.off = end;
        Some(u64::from_le_bytes(chunk.try_into().ok()?))
    }

    fn exhausted(&self) -> bool {
        self.off == self.bytes.len()
    }
}

fn decode_payload(payload: &[u8]) -> Option<WalRecord> {
    let mut r = Reader::new(payload);
    let rec = match r.take_u8()? {
        1 => WalRecord::Register {
            tenant: r.take_u64()?,
            reserved: r.take_u64()?,
            policy: match r.take_u8()? {
                0 => OverloadPolicy::Delay,
                1 => OverloadPolicy::Reject,
                _ => return None,
            },
        },
        2 => WalRecord::Deregister {
            tenant: r.take_u64()?,
        },
        3 => {
            let window = r.take_u64()?;
            let tenant = r.take_u64()?;
            let lbn = r.take_u64()?;
            let flags = r.take_u8()?;
            if flags > 7 {
                return None;
            }
            WalRecord::Admit {
                window,
                tenant,
                lbn,
                guaranteed: flags & 1 == 1,
                delayed: flags & 2 == 2,
                is_write: flags & 4 == 4,
            }
        }
        4 => WalRecord::Seal {
            window: r.take_u64()?,
        },
        5 => WalRecord::Settle {
            window: r.take_u64()?,
            tenant: r.take_u64()?,
            kind: match r.take_u8()? {
                0 => SettleKind::Served,
                1 => SettleKind::HedgeWin,
                2 => SettleKind::Lost,
                3 => SettleKind::WriteSettled,
                4 => SettleKind::WriteLost,
                _ => return None,
            },
        },
        _ => return None,
    };
    r.exhausted().then_some(rec)
}

fn encode_state(state: &WalState) -> Vec<u8> {
    let mut body = Vec::with_capacity(256);
    put_u64(&mut body, state.last_lsn);
    put_u64(&mut body, state.sealed_through);
    put_u64(&mut body, state.admitted);
    put_u64(&mut body, state.overflow);
    put_u64(&mut body, state.delayed);
    put_u64(&mut body, state.served);
    put_u64(&mut body, state.hedges_won);
    put_u64(&mut body, state.lost);
    put_u64(&mut body, state.write_settled);
    put_u64(&mut body, state.write_lost);
    put_u64(&mut body, state.misordered);
    put_u64(&mut body, state.tenants.len() as u64);
    for (&id, t) in &state.tenants {
        put_u64(&mut body, id);
        put_u64(&mut body, t.reserved);
        body.push(t.policy);
        body.push(u8::from(t.live));
        for v in [
            t.admitted,
            t.overflow,
            t.delayed,
            t.served,
            t.hedge_wins,
            t.lost,
            t.write_settled,
            t.write_lost,
        ] {
            put_u64(&mut body, v);
        }
    }
    put_u64(&mut body, state.open.len() as u64);
    for (&w, entries) in &state.open {
        put_u64(&mut body, w);
        put_u64(&mut body, entries.len() as u64);
        for e in entries {
            put_u64(&mut body, e.tenant);
            put_u64(&mut body, e.lbn);
            body.push(
                u8::from(e.guaranteed) | u8::from(e.delayed) << 1 | u8::from(e.is_write) << 2,
            );
        }
    }
    put_u64(&mut body, state.pending.len() as u64);
    for (&w, per_tenant) in &state.pending {
        put_u64(&mut body, w);
        put_u64(&mut body, per_tenant.len() as u64);
        for (&t, &n) in per_tenant {
            put_u64(&mut body, t);
            put_u64(&mut body, n.reads);
            put_u64(&mut body, n.writes);
        }
    }
    let mut out = Vec::with_capacity(body.len() + 12);
    out.extend_from_slice(SNAP_MAGIC);
    out.extend_from_slice(&body);
    out.extend_from_slice(&crc32(0, &body).to_le_bytes());
    out
}

fn decode_state(bytes: &[u8]) -> Option<WalState> {
    let body = bytes.strip_prefix(SNAP_MAGIC.as_slice())?;
    if body.len() < 4 {
        return None;
    }
    let (body, crc_bytes) = body.split_at(body.len() - 4);
    let expect = u32::from_le_bytes(crc_bytes.try_into().ok()?);
    if crc32(0, body) != expect {
        return None;
    }
    let mut r = Reader::new(body);
    let mut state = WalState {
        last_lsn: r.take_u64()?,
        sealed_through: r.take_u64()?,
        admitted: r.take_u64()?,
        overflow: r.take_u64()?,
        delayed: r.take_u64()?,
        served: r.take_u64()?,
        hedges_won: r.take_u64()?,
        lost: r.take_u64()?,
        write_settled: r.take_u64()?,
        write_lost: r.take_u64()?,
        misordered: r.take_u64()?,
        ..WalState::default()
    };
    for _ in 0..r.take_u64()? {
        let id = r.take_u64()?;
        let reserved = r.take_u64()?;
        let policy = r.take_u8()?;
        let live = r.take_u8()? == 1;
        let mut vals = [0u64; 8];
        for v in &mut vals {
            *v = r.take_u64()?;
        }
        state.tenants.insert(
            id,
            TenantState {
                reserved,
                policy,
                live,
                admitted: vals[0],
                overflow: vals[1],
                delayed: vals[2],
                served: vals[3],
                hedge_wins: vals[4],
                lost: vals[5],
                write_settled: vals[6],
                write_lost: vals[7],
            },
        );
    }
    for _ in 0..r.take_u64()? {
        let w = r.take_u64()?;
        let n = r.take_u64()?;
        let mut entries = Vec::new();
        for _ in 0..n {
            let tenant = r.take_u64()?;
            let lbn = r.take_u64()?;
            let flags = r.take_u8()?;
            entries.push(OpenEntry {
                tenant,
                lbn,
                guaranteed: flags & 1 == 1,
                delayed: flags & 2 == 2,
                is_write: flags & 4 == 4,
            });
        }
        state.open.insert(w, entries);
    }
    for _ in 0..r.take_u64()? {
        let w = r.take_u64()?;
        let n = r.take_u64()?;
        let mut per_tenant = BTreeMap::new();
        for _ in 0..n {
            let t = r.take_u64()?;
            let reads = r.take_u64()?;
            let writes = r.take_u64()?;
            per_tenant.insert(t, PendingCounts { reads, writes });
        }
        state.pending.insert(w, per_tenant);
    }
    r.exhausted().then_some(state)
}

enum Backing {
    File {
        log: File,
        dir: PathBuf,
    },
    /// In-memory log for unit and model-check tests: same framing and
    /// ordering checks, no filesystem nondeterminism in the schedule
    /// space.
    Memory {
        log: Vec<u8>,
    },
}

struct WalInner {
    backing: Backing,
    /// Framed records not yet handed to the backing (lost on a crash —
    /// this models the pre-fsync window; an OS page-cache write would
    /// survive an abort and hide it).
    buf: Vec<u8>,
    /// Records currently in `buf`.
    pending_records: u64,
    next_lsn: u64,
    state: WalState,
    records: u64,
    fsyncs: u64,
    compactions: u64,
    seals_since_compact: u64,
    /// Backing I/O failures (sticky count). The engine keeps serving with
    /// durability degraded rather than unwinding under a lock; the audit
    /// surfaces the count.
    io_errors: u64,
}

/// Live counter view for [`crate::MetricsSnapshot`].
#[derive(Debug, Clone, Copy, Default)]
pub(crate) struct WalCounters {
    pub records: u64,
    pub fsyncs: u64,
    pub compactions: u64,
    pub misordered: u64,
    pub io_errors: u64,
}

/// What [`Wal::resume`] found on disk.
#[derive(Debug, Clone, Copy, Default)]
pub(crate) struct ReplayReport {
    /// Log records folded into the state (excludes snapshot-covered ones).
    pub records: u64,
    /// A torn tail was discarded and the log truncated at the last whole
    /// record.
    pub torn: bool,
    /// A compaction snapshot seeded the state.
    pub snapshot: bool,
}

/// The write-ahead log: a mutex-serialized appender over a file (or
/// in-memory) backing plus the continuously materialized [`WalState`].
pub(crate) struct Wal {
    wal: Mutex<WalInner>,
    batch: u64,
    snapshot_every: u64,
}

impl Wal {
    /// Start a fresh log epoch, discarding any previous log/snapshot in
    /// the directory (use [`Wal::resume`] to continue one).
    pub fn create(cfg: &WalConfig) -> Result<Self, String> {
        let backing = match &cfg.dir {
            None => Backing::Memory { log: Vec::new() },
            Some(dir) => {
                std::fs::create_dir_all(dir)
                    .map_err(|e| format!("wal dir {}: {e}", dir.display()))?;
                for stale in ["wal.snapshot", "wal.snapshot.tmp"] {
                    let _ = std::fs::remove_file(dir.join(stale));
                }
                let log = OpenOptions::new()
                    .read(true)
                    .write(true)
                    .create(true)
                    .truncate(true)
                    .open(dir.join("wal.log"))
                    .map_err(|e| format!("wal log {}: {e}", dir.display()))?;
                Backing::File {
                    log,
                    dir: dir.clone(),
                }
            }
        };
        Ok(Self::with_backing(cfg, backing, WalState::default(), 1))
    }

    /// Reopen an existing log directory: load the snapshot (if any),
    /// replay the log tail, truncate a torn final record, and leave the
    /// log positioned for appending.
    pub fn resume(cfg: &WalConfig) -> Result<(Self, ReplayReport), String> {
        let Some(dir) = &cfg.dir else {
            // The memory backing persists nothing: resuming it is a fresh
            // epoch by definition.
            return Ok((Self::create(cfg)?, ReplayReport::default()));
        };
        std::fs::create_dir_all(dir).map_err(|e| format!("wal dir {}: {e}", dir.display()))?;
        let mut report = ReplayReport::default();
        let mut state = WalState::default();
        let snap_path = dir.join("wal.snapshot");
        if snap_path.exists() {
            let bytes = std::fs::read(&snap_path)
                .map_err(|e| format!("wal snapshot {}: {e}", snap_path.display()))?;
            // The published snapshot is fsynced before its rename commits
            // it, so it is either absent or whole; failing its CRC means
            // real corruption, which recovery must surface, not mask.
            state = decode_state(&bytes)
                .ok_or_else(|| format!("corrupt WAL snapshot {}", snap_path.display()))?;
            report.snapshot = true;
        }
        let mut log = OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(false)
            .open(dir.join("wal.log"))
            .map_err(|e| format!("wal log {}: {e}", dir.display()))?;
        let mut bytes = Vec::new();
        log.read_to_end(&mut bytes)
            .map_err(|e| format!("wal log read: {e}"))?;
        let mut off = 0usize;
        let mut prev_lsn = 0u64;
        let mut max_lsn = state.last_lsn;
        while off + FRAME_HEADER <= bytes.len() {
            let lsn = u64::from_le_bytes(bytes[off..off + 8].try_into().map_err(|_| "frame")?);
            let len = u32::from_le_bytes(bytes[off + 8..off + 12].try_into().map_err(|_| "frame")?)
                as usize;
            let crc =
                u32::from_le_bytes(bytes[off + 12..off + 16].try_into().map_err(|_| "frame")?);
            if len == 0 || len > MAX_PAYLOAD || off + FRAME_HEADER + len > bytes.len() {
                break; // short or absurd frame: torn tail
            }
            let payload = &bytes[off + FRAME_HEADER..off + FRAME_HEADER + len];
            if frame_crc(lsn, payload) != crc || lsn <= prev_lsn {
                break;
            }
            let Some(rec) = decode_payload(payload) else {
                break;
            };
            prev_lsn = lsn;
            off += FRAME_HEADER + len;
            // Skip records the snapshot already covers (a crash between
            // the snapshot rename and the log truncate leaves them here).
            if lsn > state.last_lsn {
                state.apply_record(&rec);
                state.last_lsn = lsn;
                report.records += 1;
            }
            max_lsn = max_lsn.max(lsn);
        }
        if off < bytes.len() {
            report.torn = true;
            log.set_len(off as u64)
                .map_err(|e| format!("wal truncate: {e}"))?;
        }
        log.seek(SeekFrom::Start(off as u64))
            .map_err(|e| format!("wal seek: {e}"))?;
        let wal = Self::with_backing(
            cfg,
            Backing::File {
                log,
                dir: dir.clone(),
            },
            state,
            max_lsn + 1,
        );
        Ok((wal, report))
    }

    fn with_backing(cfg: &WalConfig, backing: Backing, state: WalState, next_lsn: u64) -> Self {
        Wal {
            wal: Mutex::new(WalInner {
                backing,
                buf: Vec::new(),
                pending_records: 0,
                next_lsn,
                state,
                records: 0,
                fsyncs: 0,
                compactions: 0,
                seals_since_compact: 0,
                io_errors: 0,
            }),
            batch: cfg.fsync_batch.max(1),
            snapshot_every: cfg.snapshot_interval.max(1),
        }
    }

    fn push_record(&self, rec: &WalRecord, force_sync: bool, pre_fsync_point: bool) {
        let mut g = self.wal.lock();
        let lsn = g.next_lsn;
        g.next_lsn += 1;
        g.state.apply_record(rec);
        g.state.last_lsn = lsn;
        let mut payload = Vec::with_capacity(32);
        encode_payload(rec, &mut payload);
        let crc = frame_crc(lsn, &payload);
        put_u64(&mut g.buf, lsn);
        let len = payload.len() as u32;
        g.buf.extend_from_slice(&len.to_le_bytes());
        g.buf.extend_from_slice(&crc.to_le_bytes());
        g.buf.extend_from_slice(&payload);
        g.pending_records += 1;
        g.records += 1;
        if pre_fsync_point {
            // The record exists only in the userspace buffer here: an
            // abort loses it, exactly the pre-fsync crash window.
            crash_point("wal-append-pre-fsync");
        }
        if (force_sync || g.pending_records >= self.batch) && flush_inner(&mut g).is_err() {
            g.io_errors += 1;
        }
    }

    /// Log a tenant registration (durable before the registry publishes
    /// the record, so a durable admit can never precede its register).
    pub fn log_register(&self, tenant: u64, reserved: usize, policy: OverloadPolicy) {
        self.push_record(
            &WalRecord::Register {
                tenant,
                reserved: reserved as u64,
                policy,
            },
            true,
            false,
        );
    }

    /// Log a tenant departure (reservation freed; record drains).
    pub fn log_deregister(&self, tenant: u64) {
        self.push_record(&WalRecord::Deregister { tenant }, true, false);
    }

    /// Log one admission. Durability follows the fsync contract: with
    /// `fsync_batch = 1` the record is on stable storage when this
    /// returns.
    pub fn log_admit(
        &self,
        window: u64,
        tenant: u64,
        lbn: u64,
        guaranteed: bool,
        delayed: bool,
        is_write: bool,
    ) {
        self.push_record(
            &WalRecord::Admit {
                window,
                tenant,
                lbn,
                guaranteed,
                delayed,
                is_write,
            },
            false,
            true,
        );
    }

    /// Log a window seal (force-synced: the seal is the boundary after
    /// which an unsettled admission becomes crash-lost) and run the
    /// compaction cadence.
    pub fn log_seal(&self, window: u64) {
        self.push_record(&WalRecord::Seal { window }, true, false);
        let mut g = self.wal.lock();
        g.seals_since_compact += 1;
        if g.seals_since_compact >= self.snapshot_every {
            g.seals_since_compact = 0;
            if compact_inner(&mut g).is_err() {
                g.io_errors += 1;
            } else {
                g.compactions += 1;
            }
        }
    }

    /// Log one settlement (batched; a settle is re-derivable as
    /// crash-lost, so it does not need per-record durability).
    pub fn log_settle(&self, window: u64, tenant: u64, kind: SettleKind) {
        if matches!(kind, SettleKind::WriteSettled | SettleKind::WriteLost) {
            // Kill site between the last copy landing and the settle
            // record: recovery must resolve the write as crash-lost.
            crash_point("wal-write-settle");
        }
        self.push_record(
            &WalRecord::Settle {
                window,
                tenant,
                kind,
            },
            false,
            false,
        );
    }

    /// Flush and fsync everything buffered.
    pub fn sync_now(&self) {
        let mut g = self.wal.lock();
        if flush_inner(&mut g).is_err() {
            g.io_errors += 1;
        }
    }

    /// Force a snapshot + log truncation now (recovery calls this so the
    /// next restart replays only post-recovery records).
    pub fn compact(&self) {
        let mut g = self.wal.lock();
        g.seals_since_compact = 0;
        if compact_inner(&mut g).is_err() {
            g.io_errors += 1;
        } else {
            g.compactions += 1;
        }
    }

    /// Convert every sealed-but-unsettled admission into a durable-state
    /// loss (the dispatches a crash stranded). Returns how many. Called
    /// once by recovery, after replay and before the engine restores;
    /// idempotent across repeated recoveries because the resolution
    /// re-derives from the same pending set.
    pub fn resolve_crash_losses(&self) -> u64 {
        let mut g = self.wal.lock();
        let pending = std::mem::take(&mut g.state.pending);
        let mut lost = 0u64;
        for per_tenant in pending.into_values() {
            for (tenant, n) in per_tenant {
                lost += n.reads + n.writes;
                g.state.lost += n.reads;
                g.state.write_lost += n.writes;
                if let Some(t) = g.state.tenants.get_mut(&tenant) {
                    t.lost += n.reads;
                    t.write_lost += n.writes;
                }
            }
        }
        lost
    }

    /// Drop one open-window admission that could not be re-parked at
    /// recovery and account it lost (a write to `write_lost`), keeping the
    /// materialized state in step with the engine's books.
    pub fn forfeit_open(&self, window: u64, tenant: u64, is_write: bool) {
        let mut g = self.wal.lock();
        let state = &mut g.state;
        let mut hit = false;
        let mut emptied = false;
        if let Some(entries) = state.open.get_mut(&window) {
            if let Some(i) = entries
                .iter()
                .position(|e| e.tenant == tenant && e.is_write == is_write)
            {
                entries.remove(i);
                hit = true;
            }
            emptied = entries.is_empty();
        }
        if hit {
            if is_write {
                state.write_lost += 1;
            } else {
                state.lost += 1;
            }
            if let Some(t) = state.tenants.get_mut(&tenant) {
                if is_write {
                    t.write_lost += 1;
                } else {
                    t.lost += 1;
                }
            }
        }
        if emptied {
            state.open.remove(&window);
        }
    }

    /// Clone of the materialized state (recovery seed; tests).
    pub fn state_snapshot(&self) -> WalState {
        self.wal.lock().state.clone()
    }

    /// Live counters for the metrics snapshot.
    pub fn wal_counters(&self) -> WalCounters {
        let g = self.wal.lock();
        WalCounters {
            records: g.records,
            fsyncs: g.fsyncs,
            compactions: g.compactions,
            misordered: g.state.misordered,
            io_errors: g.io_errors,
        }
    }
}

fn flush_inner(inner: &mut WalInner) -> std::io::Result<()> {
    if inner.buf.is_empty() {
        return Ok(());
    }
    if crash_armed("wal-append-torn") {
        // Persist all but the tail 6 bytes — cutting inside the final
        // record's frame — then die: recovery must discard exactly the
        // torn record and keep every whole one before it.
        let cut = inner.buf.len().saturating_sub(6);
        if let Backing::File { log, .. } = &mut inner.backing {
            let _ = log.write_all(&inner.buf[..cut]);
            let _ = log.sync_data();
        }
        std::process::abort();
    }
    match &mut inner.backing {
        Backing::File { log, .. } => {
            log.write_all(&inner.buf)?;
            log.sync_data()?;
        }
        Backing::Memory { log } => log.extend_from_slice(&inner.buf),
    }
    inner.buf.clear();
    inner.pending_records = 0;
    inner.fsyncs += 1;
    Ok(())
}

fn compact_inner(inner: &mut WalInner) -> std::io::Result<()> {
    flush_inner(inner)?;
    let body = encode_state(&inner.state);
    match &mut inner.backing {
        Backing::Memory { log } => {
            // The materialized state *is* the snapshot; the log bytes are
            // now redundant.
            log.clear();
            Ok(())
        }
        Backing::File { log, dir } => {
            let tmp = dir.join("wal.snapshot.tmp");
            let snap = dir.join("wal.snapshot");
            {
                let mut f = File::create(&tmp)?;
                f.write_all(&body)?;
                f.sync_data()?;
            }
            // The rename is the commit point: before it the old snapshot
            // (or none) plus the full log recover the same state; after
            // it the new snapshot subsumes the log by LSN.
            std::fs::rename(&tmp, &snap)?;
            if let Ok(d) = File::open(dir.as_path()) {
                let _ = d.sync_all();
            }
            crash_point("compact-mid-swap");
            log.set_len(0)?;
            log.seek(SeekFrom::Start(0))?;
            Ok(())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mem_cfg() -> WalConfig {
        WalConfig {
            dir: None,
            fsync_batch: 1,
            snapshot_interval: 64,
        }
    }

    fn dir_cfg(dir: &std::path::Path, batch: u64) -> WalConfig {
        WalConfig {
            dir: Some(dir.to_path_buf()),
            fsync_batch: batch,
            snapshot_interval: 64,
        }
    }

    fn tmpdir(tag: &str) -> PathBuf {
        let d = std::env::temp_dir().join(format!(
            "fqos-wal-{tag}-{}-{}",
            std::process::id(),
            std::thread::current().name().unwrap_or("t").len()
        ));
        let _ = std::fs::remove_dir_all(&d);
        std::fs::create_dir_all(&d).unwrap();
        d
    }

    #[test]
    fn crc32_check_vector() {
        // CRC-32/ISO-HDLC of "123456789".
        assert_eq!(crc32(0, b"123456789"), 0xCBF4_3926);
    }

    #[test]
    fn records_round_trip_through_the_payload_codec() {
        let records = [
            WalRecord::Register {
                tenant: 7,
                reserved: 3,
                policy: OverloadPolicy::Reject,
            },
            WalRecord::Deregister { tenant: 7 },
            WalRecord::Admit {
                window: 41,
                tenant: 7,
                lbn: 123,
                guaranteed: true,
                delayed: true,
                is_write: false,
            },
            WalRecord::Admit {
                window: 42,
                tenant: 7,
                lbn: 124,
                guaranteed: true,
                delayed: false,
                is_write: true,
            },
            WalRecord::Seal { window: 41 },
            WalRecord::Settle {
                window: 41,
                tenant: 7,
                kind: SettleKind::HedgeWin,
            },
            WalRecord::Settle {
                window: 42,
                tenant: 7,
                kind: SettleKind::WriteSettled,
            },
            WalRecord::Settle {
                window: 42,
                tenant: 7,
                kind: SettleKind::WriteLost,
            },
        ];
        for rec in records {
            let mut payload = Vec::new();
            encode_payload(&rec, &mut payload);
            assert_eq!(decode_payload(&payload), Some(rec), "payload {payload:?}");
            // Truncated payloads never decode.
            for cut in 0..payload.len() {
                assert_eq!(decode_payload(&payload[..cut]), None, "cut {cut}");
            }
        }
    }

    #[test]
    fn state_snapshot_round_trips() {
        let cfg = mem_cfg();
        let wal = Wal::create(&cfg).unwrap();
        wal.log_register(1, 2, OverloadPolicy::Delay);
        wal.log_register(2, 1, OverloadPolicy::Reject);
        wal.log_admit(0, 1, 5, true, false, false);
        wal.log_admit(0, 2, 9, false, false, false);
        wal.log_admit(1, 1, 6, true, true, false);
        wal.log_seal(0);
        wal.log_settle(0, 1, SettleKind::Served);
        wal.log_deregister(2);
        let state = wal.state_snapshot();
        let decoded = decode_state(&encode_state(&state)).expect("decode");
        assert_eq!(decoded, state);
        assert_eq!(state.misordered, 0);
        assert_eq!(state.admitted, 2);
        assert_eq!(state.overflow, 1);
        assert_eq!(state.sealed_through, 1);
        assert_eq!(
            state.pending[&0][&2],
            PendingCounts {
                reads: 1,
                writes: 0
            },
            "unsettled overflow admission"
        );
        assert_eq!(state.open[&1].len(), 1);
        // A flipped byte breaks the CRC.
        let mut bytes = encode_state(&state);
        bytes[10] ^= 0x40;
        assert!(decode_state(&bytes).is_none());
    }

    #[test]
    fn settle_without_durable_admission_is_misordered() {
        let wal = Wal::create(&mem_cfg()).unwrap();
        wal.log_register(1, 2, OverloadPolicy::Delay);
        wal.log_settle(0, 1, SettleKind::Served); // nothing sealed
        assert_eq!(wal.wal_counters().misordered, 1);
        wal.log_admit(0, 1, 5, true, false, false);
        wal.log_seal(0);
        wal.log_settle(0, 1, SettleKind::Served);
        wal.log_settle(0, 1, SettleKind::Served); // double settle
        assert_eq!(wal.wal_counters().misordered, 2);
        let s = wal.state_snapshot();
        assert_eq!(s.served, 1);
    }

    #[test]
    fn resume_replays_the_log_and_truncates_a_torn_tail() {
        let dir = tmpdir("torn");
        let cfg = dir_cfg(&dir, 1);
        {
            let wal = Wal::create(&cfg).unwrap();
            wal.log_register(1, 2, OverloadPolicy::Delay);
            wal.log_admit(0, 1, 11, true, false, false);
            wal.log_admit(0, 1, 12, true, false, false);
            wal.sync_now();
        }
        // Tear the final record: chop 5 bytes off the file.
        let log_path = dir.join("wal.log");
        let len = std::fs::metadata(&log_path).unwrap().len();
        OpenOptions::new()
            .write(true)
            .open(&log_path)
            .unwrap()
            .set_len(len - 5)
            .unwrap();
        let (wal, report) = Wal::resume(&cfg).unwrap();
        assert!(report.torn);
        assert!(!report.snapshot);
        assert_eq!(report.records, 2, "register + first admit survive");
        let s = wal.state_snapshot();
        assert_eq!(s.admitted, 1, "torn admit discarded");
        assert_eq!(s.open[&0].len(), 1);
        assert_eq!(s.misordered, 0);
        // The truncated log accepts new appends and replays cleanly.
        wal.log_admit(0, 1, 13, true, false, false);
        wal.sync_now();
        drop(wal);
        let (wal, report) = Wal::resume(&cfg).unwrap();
        assert!(!report.torn);
        assert_eq!(wal.state_snapshot().admitted, 2);
        assert_eq!(report.records, 3);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn buffered_records_are_lost_without_a_flush() {
        let dir = tmpdir("batch");
        let cfg = dir_cfg(&dir, 64); // large batch: nothing auto-flushes
        {
            let wal = Wal::create(&cfg).unwrap();
            wal.log_register(1, 2, OverloadPolicy::Delay); // force-synced
            wal.log_admit(0, 1, 11, true, false, false); // buffered only
                                                         // Dropped without sync_now: the admit never reached the file,
                                                         // exactly what an abort in the pre-fsync window loses.
        }
        let (wal, report) = Wal::resume(&cfg).unwrap();
        assert_eq!(report.records, 1);
        let s = wal.state_snapshot();
        assert_eq!(s.admitted, 0);
        assert!(s.tenants[&1].live);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn compaction_snapshot_subsumes_the_log_by_lsn() {
        let dir = tmpdir("compact");
        let cfg = dir_cfg(&dir, 1);
        {
            let wal = Wal::create(&cfg).unwrap();
            wal.log_register(1, 2, OverloadPolicy::Delay);
            for w in 0..4u64 {
                wal.log_admit(w, 1, w, true, false, false);
                wal.log_seal(w);
                wal.log_settle(w, 1, SettleKind::Served);
            }
            wal.compact();
            assert_eq!(std::fs::metadata(dir.join("wal.log")).unwrap().len(), 0);
            wal.log_admit(4, 1, 99, true, false, false);
            wal.sync_now();
        }
        let (wal, report) = Wal::resume(&cfg).unwrap();
        assert!(report.snapshot);
        assert_eq!(report.records, 1, "only the post-compaction admit replays");
        let s = wal.state_snapshot();
        assert_eq!(s.admitted, 5);
        assert_eq!(s.served, 4);
        assert_eq!(s.sealed_through, 4);
        assert_eq!(s.open[&4].len(), 1);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn resolve_crash_losses_charges_sealed_unsettled_residue() {
        let wal = Wal::create(&mem_cfg()).unwrap();
        wal.log_register(1, 2, OverloadPolicy::Delay);
        wal.log_admit(0, 1, 1, true, false, false);
        wal.log_admit(0, 1, 2, true, false, false);
        wal.log_seal(0);
        wal.log_settle(0, 1, SettleKind::Served);
        assert_eq!(wal.resolve_crash_losses(), 1);
        let s = wal.state_snapshot();
        assert_eq!(s.lost, 1);
        assert_eq!(s.tenants[&1].lost, 1);
        assert!(s.pending.is_empty());
        assert_eq!(s.served + s.lost, s.admitted_total());
        // Idempotent: nothing left to resolve.
        assert_eq!(wal.resolve_crash_losses(), 0);
    }

    #[test]
    fn forfeit_open_keeps_the_ledger_balanced() {
        let wal = Wal::create(&mem_cfg()).unwrap();
        wal.log_register(1, 2, OverloadPolicy::Delay);
        wal.log_admit(3, 1, 1, true, false, false);
        wal.forfeit_open(3, 1, false);
        let s = wal.state_snapshot();
        assert!(s.open.is_empty());
        assert_eq!(s.lost, 1);
        assert_eq!(s.served + s.lost, s.admitted_total());
        // Forfeiting something absent is a no-op.
        wal.forfeit_open(3, 1, false);
        assert_eq!(wal.state_snapshot().lost, 1);
        // A forfeited write charges write_lost, and only a write entry
        // satisfies a write forfeit.
        wal.log_admit(4, 1, 2, true, false, true);
        wal.forfeit_open(4, 1, false);
        assert_eq!(wal.state_snapshot().lost, 1, "class mismatch: no-op");
        wal.forfeit_open(4, 1, true);
        let s = wal.state_snapshot();
        assert!(s.open.is_empty());
        assert_eq!(s.write_lost, 1);
        assert_eq!(s.tenants[&1].write_lost, 1);
    }

    #[test]
    fn write_settlement_and_crash_resolution_use_the_write_ledger() {
        let wal = Wal::create(&mem_cfg()).unwrap();
        wal.log_register(1, 4, OverloadPolicy::Delay);
        wal.log_admit(0, 1, 1, true, false, true); // settles WriteSettled
        wal.log_admit(0, 1, 2, true, false, true); // settles WriteLost
        wal.log_admit(0, 1, 3, true, false, true); // stranded by "crash"
        wal.log_admit(0, 1, 4, true, false, false); // read, settles Served
        wal.log_seal(0);
        // A read settle must not consume a pending write admission.
        wal.log_settle(0, 1, SettleKind::WriteSettled);
        wal.log_settle(0, 1, SettleKind::WriteLost);
        wal.log_settle(0, 1, SettleKind::Served);
        assert_eq!(wal.wal_counters().misordered, 0);
        wal.log_settle(0, 1, SettleKind::Served);
        assert_eq!(
            wal.wal_counters().misordered,
            1,
            "read class exhausted; the stranded write must not absorb it"
        );
        assert_eq!(wal.resolve_crash_losses(), 1, "the stranded write");
        let s = wal.state_snapshot();
        assert_eq!(s.write_settled, 1);
        assert_eq!(s.write_lost, 2, "retry-exhausted + crash-stranded");
        assert_eq!(s.tenants[&1].write_settled, 1);
        assert_eq!(s.tenants[&1].write_lost, 2);
        // Extended conservation over the durable admissions.
        assert_eq!(
            s.served + s.write_settled + s.lost + s.write_lost,
            s.admitted_total()
        );
        let decoded = decode_state(&encode_state(&s)).expect("decode");
        assert_eq!(decoded, s);
    }

    #[test]
    fn reregistration_starts_a_fresh_epoch_in_state() {
        let wal = Wal::create(&mem_cfg()).unwrap();
        wal.log_register(1, 2, OverloadPolicy::Delay);
        wal.log_admit(0, 1, 1, true, false, false);
        wal.log_seal(0);
        wal.log_settle(0, 1, SettleKind::Served);
        wal.log_deregister(1);
        wal.log_register(1, 3, OverloadPolicy::Reject);
        let s = wal.state_snapshot();
        let t = &s.tenants[&1];
        assert!(t.live);
        assert_eq!(t.reserved, 3);
        assert_eq!(t.admitted, 0, "fresh epoch");
        assert_eq!(s.admitted, 1, "global history is kept");
    }
}
