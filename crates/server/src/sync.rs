//! Synchronization facade: every concurrency primitive the engine uses,
//! behind one import point.
//!
//! By default this re-exports the production primitives (`parking_lot`
//! locks, `crossbeam` channels, `std` atomics and threads). Under the
//! `model-check` feature the same names resolve to the `interleave` model
//! checker's instrumented twins, so `engine.rs`, `window.rs`,
//! `registry.rs` and `fault.rs` can be schedule-explored unmodified — the
//! checked code and the shipped code are the same code.
//!
//! The one deliberate exception is `metrics.rs`, which stays on `std`
//! atomics directly: its counters are write-only leaves that never feed
//! back into control flow, so instrumenting them would multiply the
//! schedule space without adding any observable interleaving (see
//! DESIGN.md, "Concurrency invariants").

#[cfg(feature = "model-check")]
pub(crate) use interleave::channel;
#[cfg(feature = "model-check")]
pub(crate) use interleave::sync::{atomic, Arc, Mutex, MutexGuard, RwLock};
#[cfg(feature = "model-check")]
pub(crate) use interleave::thread;

#[cfg(not(feature = "model-check"))]
pub(crate) use crossbeam::channel;
#[cfg(not(feature = "model-check"))]
pub(crate) use parking_lot::{Mutex, MutexGuard, RwLock};
#[cfg(not(feature = "model-check"))]
pub(crate) use std::sync::{atomic, Arc};
#[cfg(not(feature = "model-check"))]
pub(crate) use std::thread;
