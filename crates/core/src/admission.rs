//! Admission control (§III-A, §III-B).

use fqos_decluster::sampling::OptimalRetrievalProbabilities;
use std::collections::HashMap;

/// Application-level admission (§III-A, the Table I walk-through):
/// applications declare a per-interval request size and are admitted while
/// the aggregate stays within `S(M)`.
#[derive(Debug, Clone)]
pub struct AppAdmission {
    limit: usize,
    total: usize,
    apps: HashMap<u64, usize>,
}

impl AppAdmission {
    /// Create a controller with per-interval request limit `S(M)`.
    pub fn new(limit: usize) -> Self {
        AppAdmission {
            limit,
            total: 0,
            apps: HashMap::new(),
        }
    }

    /// The configured limit.
    pub fn limit(&self) -> usize {
        self.limit
    }

    /// Currently admitted aggregate request size.
    pub fn total(&self) -> usize {
        self.total
    }

    /// Request admission for application `app` with `request_size` block
    /// requests per interval. Returns `true` iff admitted. Re-registering
    /// an admitted application updates its size (admitting the change only
    /// if the new aggregate fits).
    pub fn register(&mut self, app: u64, request_size: usize) -> bool {
        let current = self.apps.get(&app).copied().unwrap_or(0);
        let new_total = self.total - current + request_size;
        if new_total > self.limit {
            return false;
        }
        self.apps.insert(app, request_size);
        self.total = new_total;
        true
    }

    /// Remove an application, freeing its capacity.
    pub fn deregister(&mut self, app: u64) {
        if let Some(size) = self.apps.remove(&app) {
            self.total -= size;
        }
    }

    /// Remaining admittable request size.
    pub fn headroom(&self) -> usize {
        self.limit - self.total
    }
}

/// The statistical QoS state (§III-B2): per-request-size interval counters.
///
/// `N_k` counts intervals that carried `k` requests, `N_t` the total
/// intervals. `R_k = N_k / N_t` estimates the request-size distribution and
/// `Q = Σ_k (1 − P_k) · R_k` the probability that an interval cannot be
/// retrieved optimally. Requests beyond the deterministic limit are admitted
/// while `Q < ε`.
#[derive(Debug, Clone, Default)]
pub struct StatisticalCounters {
    n_k: Vec<u64>,
    n_t: u64,
}

impl StatisticalCounters {
    /// Fresh counters.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record a completed interval that carried `k` requests.
    pub fn record_interval(&mut self, k: usize) {
        if self.n_k.len() <= k {
            self.n_k.resize(k + 1, 0);
        }
        self.n_k[k] += 1;
        self.n_t += 1;
    }

    /// Total intervals observed.
    pub fn intervals(&self) -> u64 {
        self.n_t
    }

    /// `Q = Σ_k (1 − P_k) · R_k` over the recorded history.
    pub fn violation_probability(&self, p: &OptimalRetrievalProbabilities) -> f64 {
        if self.n_t == 0 {
            return 0.0;
        }
        self.n_k
            .iter()
            .enumerate()
            .filter(|&(_, &n)| n > 0)
            .map(|(k, &n)| (1.0 - p.p_k(k)) * (n as f64 / self.n_t as f64))
            .sum()
    }

    /// Would admitting an interval of size `k` keep `Q < ε`? Evaluates `Q`
    /// with the tentative interval counted (§III-B2: "Admission control
    /// algorithm admits the requests of the current interval if Q … is
    /// smaller than ε").
    pub fn would_admit(&self, k: usize, p: &OptimalRetrievalProbabilities, epsilon: f64) -> bool {
        let n_t = (self.n_t + 1) as f64;
        let mut q = 0.0;
        for (size, &n) in self.n_k.iter().enumerate() {
            let n = n + u64::from(size == k);
            if n > 0 {
                q += (1.0 - p.p_k(size)) * (n as f64 / n_t);
            }
        }
        if self.n_k.len() <= k {
            // Tentative interval size beyond the recorded table.
            q += (1.0 - p.p_k(k)) / n_t;
        }
        q < epsilon
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fqos_decluster::sampling::optimal_retrieval_probabilities;
    use fqos_decluster::DesignTheoretic;

    #[test]
    fn table1_walkthrough() {
        // §III-A: S = 5. App 1 (size 2) joins at T0, app 2 (size 2) at T1,
        // app 3 (size 1) at T2 — all admitted, limit reached; app 4 rejected.
        let mut ac = AppAdmission::new(5);
        assert!(ac.register(1, 2));
        assert!(ac.register(2, 2));
        assert!(ac.register(3, 1));
        assert_eq!(ac.total(), 5);
        assert_eq!(ac.headroom(), 0);
        assert!(!ac.register(4, 1));
        // One app leaves; capacity frees up.
        ac.deregister(2);
        assert!(ac.register(4, 2));
    }

    #[test]
    fn reregistration_updates_size() {
        let mut ac = AppAdmission::new(5);
        assert!(ac.register(1, 3));
        assert!(ac.register(1, 5)); // grow within limit
        assert_eq!(ac.total(), 5);
        assert!(!ac.register(1, 6)); // too big
        assert_eq!(ac.total(), 5); // unchanged after rejection
    }

    fn p931() -> OptimalRetrievalProbabilities {
        optimal_retrieval_probabilities(&DesignTheoretic::paper_9_3_1(), 12, 4000, 3)
    }

    #[test]
    fn q_is_zero_for_small_intervals() {
        let p = p931();
        let mut c = StatisticalCounters::new();
        for _ in 0..100 {
            c.record_interval(3);
        }
        // P_3 ≈ 1 → Q ≈ 0.
        assert!(c.violation_probability(&p) < 0.01);
    }

    #[test]
    fn q_grows_with_oversized_intervals() {
        let p = p931();
        let mut c = StatisticalCounters::new();
        for _ in 0..50 {
            c.record_interval(3);
        }
        let q_before = c.violation_probability(&p);
        for _ in 0..50 {
            c.record_interval(9); // P_9 ≈ 0.75 → each adds ~0.25 weight
        }
        let q_after = c.violation_probability(&p);
        assert!(q_after > q_before + 0.05, "{q_before} → {q_after}");
        // Roughly (1 - 0.75) × 0.5 ≈ 0.125.
        assert!((q_after - 0.125).abs() < 0.05, "{q_after}");
    }

    #[test]
    fn would_admit_respects_epsilon() {
        let p = p931();
        let mut c = StatisticalCounters::new();
        for _ in 0..99 {
            c.record_interval(2);
        }
        // One interval of 9 among 100: Q ≈ 0.25/100 = 0.0025.
        assert!(c.would_admit(9, &p, 0.01));
        assert!(!c.would_admit(9, &p, 0.001));
        // Deterministic (ε = 0) never admits anything via Q.
        assert!(!c.would_admit(2, &p, 0.0));
    }

    #[test]
    fn empty_history_bases_q_on_single_interval() {
        let p = p931();
        let c = StatisticalCounters::new();
        // First interval of size 9: Q = 1 − P_9 ≈ 0.25.
        assert!(c.would_admit(9, &p, 0.5));
        assert!(!c.would_admit(9, &p, 0.1));
    }
}
