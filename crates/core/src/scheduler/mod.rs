//! The two QoS schedulers: online (§IV-B) and interval-aligned
//! design-theoretic (§III-C).

pub mod interval;
pub mod online;

pub use interval::IntervalQos;
pub use online::OnlineQos;

use fqos_flashsim::SimTime;
use std::collections::BTreeMap;

/// Per-window device start budgets: device `d` may *start* at most `M`
/// accesses within one QoS window `T`. Enforcing this is exactly what makes
/// the deterministic guarantee hold — a device that starts ≤ M reads of
/// `t_read ≤ T/M` each is always idle again by the next window.
#[derive(Debug, Clone)]
pub(crate) struct WindowBudgets {
    devices: usize,
    accesses: usize,
    /// window index → (per-device starts, total admitted in window).
    windows: BTreeMap<u64, (Vec<u8>, usize)>,
}

impl WindowBudgets {
    pub(crate) fn new(devices: usize, accesses: usize) -> Self {
        assert!((1..256).contains(&accesses));
        WindowBudgets {
            devices,
            accesses,
            windows: BTreeMap::new(),
        }
    }

    /// Remaining start budget of `device` in `window`.
    pub(crate) fn remaining(&self, window: u64, device: usize) -> usize {
        match self.windows.get(&window) {
            Some((starts, _)) => self.accesses - starts[device] as usize,
            None => self.accesses,
        }
    }

    /// Record a start of `device` in `window`.
    pub(crate) fn record_start(&mut self, window: u64, device: usize) {
        let entry = self
            .windows
            .entry(window)
            .or_insert_with(|| (vec![0; self.devices], 0));
        debug_assert!((entry.0[device] as usize) < self.accesses);
        entry.0[device] += 1;
        entry.1 += 1;
    }

    /// Record a statistical over-admission into `window`: counts toward the
    /// window's request size (and therefore the `N_k` history feedback)
    /// without consuming a device start budget.
    pub(crate) fn record_overload(&mut self, window: u64) {
        let entry = self
            .windows
            .entry(window)
            .or_insert_with(|| (vec![0; self.devices], 0));
        entry.1 += 1;
    }

    /// Number of requests admitted into `window` so far.
    pub(crate) fn admitted(&self, window: u64) -> usize {
        self.windows.get(&window).map_or(0, |(_, n)| *n)
    }

    /// Drop state for windows `< keep_from`, returning the request counts
    /// of the closed non-empty windows (feeds the statistical counters).
    pub(crate) fn close_before(&mut self, keep_from: u64) -> Vec<usize> {
        let mut closed = Vec::new();
        while let Some((&w, _)) = self.windows.first_key_value() {
            if w >= keep_from {
                break;
            }
            let (_, n) = self.windows.remove(&w).unwrap();
            closed.push(n);
        }
        closed
    }
}

/// The QoS window of a point in time.
#[inline]
pub(crate) fn window_of(t: SimTime, interval_ns: u64) -> u64 {
    t / interval_ns
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn budget_tracking() {
        let mut b = WindowBudgets::new(3, 2);
        assert_eq!(b.remaining(5, 0), 2);
        b.record_start(5, 0);
        b.record_start(5, 0);
        assert_eq!(b.remaining(5, 0), 0);
        assert_eq!(b.remaining(5, 1), 2);
        assert_eq!(b.remaining(6, 0), 2);
        assert_eq!(b.admitted(5), 2);
    }

    #[test]
    fn closing_returns_sizes_in_order() {
        let mut b = WindowBudgets::new(2, 1);
        b.record_start(1, 0);
        b.record_start(3, 1);
        b.record_start(3, 0);
        assert_eq!(b.close_before(3), vec![1]);
        assert_eq!(b.close_before(10), vec![2]);
        assert!(b.close_before(10).is_empty());
    }
}
