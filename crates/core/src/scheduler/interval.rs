//! The interval-aligned design-theoretic scheduler (§III-C).
//!
//! Requests arriving *within* a window are aligned to the next window
//! boundary; requests arriving exactly at a boundary are scheduled there
//! (the paper's synthetic workloads place all requests at interval starts,
//! so Table III sees no alignment delay — Fig. 12 measures it on the real
//! workloads). At each boundary the batch is scheduled with the hybrid
//! retrieval (design-theoretic heuristic, max-flow fallback) and submitted
//! to the array; per-device FCFS executes the `M` access rounds.
//!
//! This scheduler also runs the RAID baselines of Table III: any
//! [`AllocationScheme`] can be plugged in, with admission control disabled
//! (the baselines have no QoS machinery — that is exactly why they miss
//! the guarantees).

use crate::admission::StatisticalCounters;
use crate::config::QosConfig;
use crate::mapping::BlockMapping;
use crate::report::QosReport;
use fqos_decluster::retrieval::hybrid_retrieval;
use fqos_decluster::sampling::{optimal_retrieval_probabilities, OptimalRetrievalProbabilities};
use fqos_decluster::AllocationScheme;
use fqos_flashsim::{CalibratedSsd, FlashArray, IoRequest, SimTime};
use fqos_traces::Trace;
use std::collections::VecDeque;

/// The interval-aligned scheduler.
#[derive(Debug, Clone)]
pub struct IntervalQos {
    config: QosConfig,
    /// Enforce the `S(M)` per-interval admission limit (on for the QoS
    /// system, off for the RAID baselines).
    admission: bool,
    /// `P_k` table for statistical admission (ε > 0), sampled once.
    p_k: Option<OptimalRetrievalProbabilities>,
}

#[derive(Debug, Clone)]
struct Pending {
    arrival: SimTime,
    interval_idx: usize,
    bucket: usize,
}

impl IntervalQos {
    /// Scheduler with admission control (the paper's QoS configuration).
    /// With `ε > 0` this is the original §III-B statistical QoS: a batch
    /// larger than `S(M)` is admitted whole while `Q < ε`.
    pub fn new(config: QosConfig) -> Self {
        config.validate().expect("invalid QoS configuration");
        let p_k = (config.epsilon > 0.0).then(|| {
            let k_max = config.scheme.num_buckets().min(4 * config.request_limit());
            optimal_retrieval_probabilities(&config.scheme, k_max, 20_000, 0xF19u64)
        });
        IntervalQos {
            config,
            admission: true,
            p_k,
        }
    }

    /// Scheduler without admission (baseline mode).
    pub fn without_admission(config: QosConfig) -> Self {
        IntervalQos {
            config,
            admission: false,
            p_k: None,
        }
    }

    /// Run with the config's own design-theoretic scheme.
    pub fn run(&self, trace: &Trace, mapping: &mut BlockMapping) -> QosReport {
        let scheme = self.config.scheme.clone();
        self.run_scheme(trace, &scheme, mapping)
    }

    /// Run with an arbitrary allocation scheme (Table III baselines).
    pub fn run_scheme<S: AllocationScheme>(
        &self,
        trace: &Trace,
        scheme: &S,
        mapping: &mut BlockMapping,
    ) -> QosReport {
        let cfg = &self.config;
        let t_win = cfg.interval_ns;
        let devices = scheme.devices();
        let limit = cfg.request_limit();
        let mut array = FlashArray::new(
            (0..devices)
                .map(|_| CalibratedSsd::with_latencies(cfg.service_ns, cfg.service_ns))
                .collect::<Vec<_>>(),
        );
        let mut report = QosReport::new(format!(
            "interval {} ({})",
            scheme.name(),
            if self.admission {
                "admission"
            } else {
                "no admission"
            }
        ));

        // Note: Reject is only meaningful online; the interval scheduler
        // always drains by delaying to later boundaries.
        let mut pending: VecDeque<Pending> = VecDeque::new();
        let mut boundary: SimTime = 0;
        let mut counters = StatisticalCounters::new();

        // Schedule one batch at `boundary`: the FCFS prefix of pending
        // requests that have already arrived. Simultaneous requests for the
        // same bucket coalesce into one read (the `S(M)` guarantee is about
        // distinct buckets), and admission caps the number of *distinct*
        // buckets per batch — or, with ε > 0, admits a larger batch while
        // the estimated violation probability `Q` stays below ε (§III-B2).
        let flush = |boundary: SimTime,
                     pending: &mut VecDeque<Pending>,
                     array: &mut FlashArray<CalibratedSsd>,
                     report: &mut QosReport,
                     counters: &mut StatisticalCounters| {
            let arrived = pending.iter().take_while(|p| p.arrival <= boundary).count();
            if arrived == 0 {
                return;
            }
            // Statistical admission: may the whole arrived batch in?
            let arrived_distinct = {
                let mut seen: Vec<usize> = Vec::new();
                for p in pending.iter().take(arrived) {
                    if !seen.contains(&p.bucket) {
                        seen.push(p.bucket);
                    }
                }
                seen.len()
            };
            let stat_admit = match (&self.p_k, self.admission) {
                (Some(p), true) if arrived_distinct > limit => {
                    counters.would_admit(arrived_distinct, p, cfg.epsilon)
                }
                _ => false,
            };
            // FCFS prefix covering at most `limit` distinct buckets (or all
            // of them under statistical admission).
            let cap = if stat_admit { arrived_distinct } else { limit };
            let mut distinct: Vec<usize> = Vec::new(); // buckets, first-seen order
            let mut take = 0;
            for p in pending.iter().take(arrived) {
                if !distinct.contains(&p.bucket) {
                    if self.admission && distinct.len() == cap {
                        break;
                    }
                    distinct.push(p.bucket);
                }
                take += 1;
            }
            if self.p_k.is_some() && !distinct.is_empty() {
                counters.record_interval(distinct.len());
            }
            let batch: Vec<Pending> = pending.drain(..take).collect();
            let replica_refs: Vec<&[usize]> =
                distinct.iter().map(|&b| scheme.replicas(b)).collect();
            let (schedule, _) = hybrid_retrieval(&replica_refs, devices);
            // One read per distinct bucket; every coalesced request of that
            // bucket completes with it.
            let mut finish_of = std::collections::HashMap::new();
            for (&bucket, &device) in distinct.iter().zip(&schedule.assignment) {
                let req = IoRequest::read_block(bucket as u64, boundary, device, bucket as u64);
                let c = array.submit(&req, boundary);
                finish_of.insert(bucket, c.finish);
            }
            for p in &batch {
                let finish = finish_of[&p.bucket];
                report.record(p.interval_idx, finish - boundary, boundary - p.arrival);
            }
        };

        for (interval_idx, records) in trace.intervals().enumerate() {
            for r in records {
                // Flush every boundary strictly before this arrival; an
                // arrival exactly at a boundary joins that boundary's batch.
                while boundary < r.arrival_ns {
                    flush(
                        boundary,
                        &mut pending,
                        &mut array,
                        &mut report,
                        &mut counters,
                    );
                    boundary += t_win;
                }
                let bucket = mapping.bucket_for(r.lbn);
                pending.push_back(Pending {
                    arrival: r.arrival_ns,
                    interval_idx,
                    bucket,
                });
            }
            // Mining happens at reporting-interval boundaries as in the
            // online scheduler.
            let (matched, mining) = mapping.advance_interval(records);
            report.matched_fraction.push(matched);
            if let Some(m) = mining {
                report.mining.push(m);
            }
        }
        // Drain the tail.
        while !pending.is_empty() {
            flush(
                boundary,
                &mut pending,
                &mut array,
                &mut report,
                &mut counters,
            );
            boundary += t_win;
        }
        report
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mapping::MappingStrategy;
    use fqos_flashsim::time::BASE_INTERVAL_NS;
    use fqos_flashsim::{IoOp, BLOCK_READ_NS, BLOCK_SIZE_BYTES};
    use fqos_traces::TraceRecord;

    fn rec(t: u64, lbn: u64) -> TraceRecord {
        TraceRecord {
            arrival_ns: t,
            device: 0,
            lbn,
            size_bytes: BLOCK_SIZE_BYTES,
            op: IoOp::Read,
        }
    }

    fn modulo_mapping() -> BlockMapping {
        BlockMapping::new(MappingStrategy::Modulo, 36, BASE_INTERVAL_NS, 1)
    }

    #[test]
    fn boundary_arrivals_have_no_alignment_delay() {
        // The Table III pattern: requests at window starts.
        let trace = Trace::new(
            "t",
            (0..5).map(|i| rec(0, i)).collect(),
            9,
            BASE_INTERVAL_NS,
        );
        let q = IntervalQos::new(QosConfig::paper_9_3_1());
        let report = q.run(&trace, &mut modulo_mapping());
        assert_eq!(report.completed(), 5);
        assert_eq!(report.delayed_pct(), 0.0);
        assert_eq!(report.total_response.max_ns(), BLOCK_READ_NS);
    }

    #[test]
    fn mid_window_arrivals_align_to_next_boundary() {
        let trace = Trace::new("t", vec![rec(BASE_INTERVAL_NS / 2, 0)], 9, BASE_INTERVAL_NS);
        let q = IntervalQos::new(QosConfig::paper_9_3_1());
        let report = q.run(&trace, &mut modulo_mapping());
        assert_eq!(report.completed(), 1);
        // Aligned to the next boundary: delayed by T/2.
        let delayed: u64 = report.intervals.delayed.iter().sum();
        assert_eq!(delayed, 1);
        let delay_ms = report.avg_delay_ms();
        assert!((delay_ms - 0.0665).abs() < 1e-6, "{delay_ms}");
    }

    #[test]
    fn admission_splits_oversized_batches() {
        // 8 distinct buckets at one boundary with S(1) = 5: 5 now, 3 next.
        let trace = Trace::new(
            "t",
            (0..8).map(|i| rec(0, i)).collect(),
            9,
            BASE_INTERVAL_NS,
        );
        let q = IntervalQos::new(QosConfig::paper_9_3_1());
        let report = q.run(&trace, &mut modulo_mapping());
        assert_eq!(report.completed(), 8);
        let delayed: u64 = report.intervals.delayed.iter().sum();
        assert_eq!(delayed, 3);
        assert_eq!(report.total_response.max_ns(), BLOCK_READ_NS);
    }

    #[test]
    fn two_access_configuration_fits_interval() {
        // M = 2: 14 requests in 0.266 ms; max response ≤ 2 reads.
        let trace = Trace::new(
            "t",
            (0..14).map(|i| rec(0, i)).collect(),
            9,
            2 * BASE_INTERVAL_NS,
        );
        let q = IntervalQos::new(QosConfig::paper_9_3_1().with_accesses(2));
        let report = q.run(&trace, &mut modulo_mapping());
        assert_eq!(report.completed(), 14);
        assert_eq!(report.delayed_pct(), 0.0);
        assert!(report.total_response.max_ns() <= 2 * BLOCK_READ_NS);
        assert!(report.total_response.max_ns() <= 2 * BASE_INTERVAL_NS);
    }

    #[test]
    fn statistical_interval_admission_admits_oversized_batches() {
        // 8 distinct buckets per boundary: deterministic splits 5 + 3;
        // ε = 0.9 admits all 8 at once (P_8 ≈ 0.94 keeps Q < ε), so no
        // request is delayed, at the cost of occasionally needing a second
        // access within the interval.
        let mut records = Vec::new();
        for w in 0..20u64 {
            for i in 0..8u64 {
                records.push(rec(w * BASE_INTERVAL_NS, (w * 5 + i * 3) % 36));
            }
        }
        let trace = Trace::new("t", records, 9, 10 * BASE_INTERVAL_NS);

        let det = IntervalQos::new(QosConfig::paper_9_3_1());
        let det_report = det.run(&trace, &mut modulo_mapping());
        assert!(det_report.delayed_pct() > 0.0);

        let stat = IntervalQos::new(QosConfig::paper_9_3_1().with_epsilon(0.9));
        let stat_report = stat.run(&trace, &mut modulo_mapping());
        assert_eq!(
            stat_report.delayed_pct(),
            0.0,
            "ε = 0.9 should admit whole batches"
        );
        assert_eq!(stat_report.completed(), det_report.completed());
        // The accepted risk: responses may exceed one access, but stay
        // within two (8 buckets never need more).
        assert!(stat_report.total_response.max_ns() <= 2 * BLOCK_READ_NS);
    }

    #[test]
    fn baseline_without_admission_can_violate() {
        use fqos_decluster::Raid1Mirrored;
        // 27 random distinct buckets per window: some windows overload one
        // mirror group (> 3·M buckets on 3 devices), blowing the deadline.
        let mut records = Vec::new();
        let mut state = 0x5EEDu64;
        for w in 0..50u64 {
            let mut pool: Vec<u64> = (0..36).collect();
            for i in 0..27usize {
                state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
                let j = i + (state >> 33) as usize % (pool.len() - i);
                pool.swap(i, j);
                records.push(rec(w * 3 * BASE_INTERVAL_NS, pool[i]));
            }
        }
        let trace = Trace::new("t", records, 9, 3 * BASE_INTERVAL_NS);
        let cfg = QosConfig::paper_9_3_1().with_accesses(3);
        let mirrored = Raid1Mirrored::paper();
        let q = IntervalQos::without_admission(cfg);
        let report = q.run_scheme(&trace, &mirrored, &mut modulo_mapping());
        assert_eq!(report.completed(), 27 * 50);
        // The mirrored layout must violate the 0.399 ms interval guarantee.
        assert!(
            report.total_response.max_ns() > 3 * BASE_INTERVAL_NS,
            "max = {} ns",
            report.total_response.max_ns()
        );
    }
}
