//! The online QoS scheduler (§IV-B).
//!
//! Requests are served on arrival, FCFS. A request is served *immediately*
//! iff one of its replicas is idle and still has start budget in the
//! current window — then its response time is exactly the device service
//! time, which is what lets the deterministic mode report a flat
//! 0.132507 ms line in Fig. 8/9. Otherwise:
//!
//! * **statistical mode** (`ε > 0`): if admitting this request keeps the
//!   estimated violation probability `Q < ε`, it is served right away on
//!   the earliest-finishing replica (queueing — its response exceeds the
//!   guarantee, which is exactly the Fig. 10 trade-off);
//! * **delay policy**: the request starts at the earliest time some replica
//!   is both free and budgeted; the shift is reported as its delay;
//! * **reject policy**: the request is dropped and counted.

use crate::admission::StatisticalCounters;
use crate::config::{OverloadPolicy, QosConfig};
use crate::mapping::BlockMapping;
use crate::report::QosReport;
use crate::scheduler::{window_of, WindowBudgets};
use fqos_decluster::sampling::{optimal_retrieval_probabilities, OptimalRetrievalProbabilities};
use fqos_decluster::AllocationScheme;
use fqos_flashsim::{CalibratedSsd, FlashArray, IoRequest, SimTime};
use fqos_traces::Trace;

/// Number of Monte-Carlo trials used to build the `P_k` table when the
/// statistical mode is enabled.
const P_K_TRIALS: usize = 20_000;

/// The online scheduler.
#[derive(Debug, Clone)]
pub struct OnlineQos {
    config: QosConfig,
    p_k: Option<OptimalRetrievalProbabilities>,
}

impl OnlineQos {
    /// Build a scheduler; in statistical mode (`ε > 0`) this samples the
    /// scheme's `P_k` table once up front (§III-B1).
    pub fn new(config: QosConfig) -> Self {
        config.validate().expect("invalid QoS configuration");
        let p_k = (config.epsilon > 0.0).then(|| {
            let k_max = config.scheme.num_buckets().min(4 * config.request_limit());
            optimal_retrieval_probabilities(&config.scheme, k_max, P_K_TRIALS, 0xF19u64)
        });
        OnlineQos { config, p_k }
    }

    /// Build with a precomputed `P_k` table (avoids resampling in sweeps).
    pub fn with_probabilities(config: QosConfig, p_k: OptimalRetrievalProbabilities) -> Self {
        config.validate().expect("invalid QoS configuration");
        OnlineQos {
            config,
            p_k: Some(p_k),
        }
    }

    /// The configuration.
    pub fn config(&self) -> &QosConfig {
        &self.config
    }

    /// Run a trace through the scheduler with the given block mapping.
    pub fn run(&self, trace: &Trace, mapping: &mut BlockMapping) -> QosReport {
        let cfg = &self.config;
        let t_ival = cfg.interval_ns;
        let devices = cfg.devices();
        let mut array = FlashArray::new(
            (0..devices)
                .map(|_| CalibratedSsd::with_latencies(cfg.service_ns, cfg.service_ns))
                .collect::<Vec<_>>(),
        );
        let mut budgets = WindowBudgets::new(devices, cfg.accesses);
        let mut counters = StatisticalCounters::new();
        let mut report = QosReport::new(format!(
            "online {} (ε = {})",
            cfg.scheme.name(),
            cfg.epsilon
        ));

        for (interval_idx, records) in trace.intervals().enumerate() {
            // §IV-B: "the requests that come exactly at the same time are
            // retrieved together as previously" — process same-timestamp
            // groups as one batch with design-theoretic remapping; all
            // other requests are strictly FCFS.
            let mut i = 0;
            while i < records.len() {
                let t = records[i].arrival_ns;
                let mut j = i + 1;
                while j < records.len() && records[j].arrival_ns == t {
                    j += 1;
                }
                let group = &records[i..j];
                i = j;

                let w = window_of(t, t_ival);
                // Close finished windows into the statistical history.
                for closed in budgets.close_before(w) {
                    counters.record_interval(closed);
                }

                let buckets: Vec<usize> = group.iter().map(|r| mapping.bucket_for(r.lbn)).collect();

                // Joint assignment for simultaneous arrivals (remapping).
                let joint: Option<Vec<usize>> = if group.len() > 1 {
                    let refs: Vec<&[usize]> =
                        buckets.iter().map(|&b| cfg.scheme.replicas(b)).collect();
                    let (schedule, _) = fqos_decluster::retrieval::hybrid_retrieval(&refs, devices);
                    Some(schedule.assignment)
                } else {
                    None
                };

                for (g_idx, r) in group.iter().enumerate() {
                    let replicas = cfg.scheme.replicas(buckets[g_idx]);

                    // Writes must update every replica: they start when all
                    // `c` devices are simultaneously free and budgeted, and
                    // complete after one service time on each.
                    if r.op == fqos_flashsim::IoOp::Write {
                        let start = self.earliest_joint_start(&array, &budgets, replicas, t);
                        if start > t && cfg.policy == OverloadPolicy::Reject {
                            report.rejected += 1;
                            continue;
                        }
                        for &d in replicas {
                            let mut req = IoRequest::read_block(r.lbn, t, d, r.lbn);
                            req.op = fqos_flashsim::IoOp::Write;
                            req.arrival = start;
                            array.submit(&req, start);
                            budgets.record_start(window_of(start, t_ival), d);
                        }
                        report.record(interval_idx, cfg.service_ns, start - t);
                        continue;
                    }

                    // Prefer the batch's remapped device when it can start
                    // immediately; otherwise fall back per-request.
                    if let Some(assign) = &joint {
                        let d = assign[g_idx];
                        if budgets.remaining(w, d) > 0 && array.next_free(d, t) == t {
                            let c = array.submit(&IoRequest::read_block(r.lbn, t, d, r.lbn), t);
                            budgets.record_start(w, d);
                            report.record(interval_idx, c.response_time(), 0);
                            continue;
                        }
                    }

                    // Earliest feasible start per replica (budget + queue).
                    let (device, start) = replicas
                        .iter()
                        .map(|&d| (d, self.earliest_start(&array, &budgets, d, t)))
                        .min_by_key(|&(_, s)| s)
                        .expect("non-empty replica tuple");

                    if start == t {
                        let c = array.submit(&IoRequest::read_block(r.lbn, t, device, r.lbn), t);
                        budgets.record_start(w, device);
                        report.record(interval_idx, c.response_time(), 0);
                        continue;
                    }

                    // Statistical over-admission: a request that cannot be
                    // served optimally is a potential guarantee violation;
                    // admit it anyway (queued on the earliest-finishing
                    // replica) while the estimated violation probability Q
                    // stays below ε. The over-admission is recorded into
                    // the window's size so the N_k history drives Q toward
                    // ε — the control loop of §III-B2.
                    if cfg.epsilon > 0.0 {
                        let k = budgets.admitted(w) + 1;
                        let p = self.p_k.as_ref().expect("P_k table exists when ε > 0");
                        if counters.would_admit(k, p, cfg.epsilon) {
                            let d = *replicas
                                .iter()
                                .min_by_key(|&&d| array.next_free(d, t))
                                .unwrap();
                            let c = array.submit(&IoRequest::read_block(r.lbn, t, d, r.lbn), t);
                            budgets.record_overload(w);
                            report.record(interval_idx, c.response_time(), 0);
                            continue;
                        }
                    }

                    match cfg.policy {
                        OverloadPolicy::Delay => {
                            // Serve at the earliest feasible start; the
                            // shift is the delay, the response restarts
                            // from there.
                            let mut req = IoRequest::read_block(r.lbn, t, device, r.lbn);
                            req.arrival = start;
                            let c = array.submit(&req, start);
                            budgets.record_start(window_of(start, t_ival), device);
                            report.record(interval_idx, c.finish - start, start - t);
                        }
                        OverloadPolicy::Reject => {
                            report.rejected += 1;
                        }
                    }
                }
            }

            let (matched, mining) = mapping.advance_interval(records);
            report.matched_fraction.push(matched);
            if let Some(m) = mining {
                report.mining.push(m);
            }
        }
        report
    }

    /// Earliest time ≥ `t` at which **all** `replicas` are simultaneously
    /// free with start budget — the write path, which must touch every
    /// copy.
    fn earliest_joint_start(
        &self,
        array: &FlashArray<CalibratedSsd>,
        budgets: &WindowBudgets,
        replicas: &[usize],
        t: SimTime,
    ) -> SimTime {
        let t_ival = self.config.interval_ns;
        let mut s = replicas
            .iter()
            .map(|&d| array.next_free(d, t))
            .max()
            .expect("non-empty replica tuple");
        loop {
            let busy = replicas
                .iter()
                .map(|&d| array.next_free(d, s))
                .max()
                .unwrap();
            if busy > s {
                s = busy;
                continue;
            }
            let w = window_of(s, t_ival);
            if replicas.iter().all(|&d| budgets.remaining(w, d) > 0) {
                return s;
            }
            s = (w + 1) * t_ival;
        }
    }

    /// Earliest time ≥ `t` at which `device` is both free and has start
    /// budget remaining in the window containing that time.
    fn earliest_start(
        &self,
        array: &FlashArray<CalibratedSsd>,
        budgets: &WindowBudgets,
        device: usize,
        t: SimTime,
    ) -> SimTime {
        let t_ival = self.config.interval_ns;
        let mut s = array.next_free(device, t);
        loop {
            let w = window_of(s, t_ival);
            if budgets.remaining(w, device) > 0 {
                return s;
            }
            s = (w + 1) * t_ival;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mapping::MappingStrategy;
    use fqos_flashsim::time::BASE_INTERVAL_NS;
    use fqos_flashsim::{IoOp, BLOCK_READ_NS, BLOCK_SIZE_BYTES};
    use fqos_traces::TraceRecord;

    fn rec(t: u64, lbn: u64) -> TraceRecord {
        TraceRecord {
            arrival_ns: t,
            device: 0,
            lbn,
            size_bytes: BLOCK_SIZE_BYTES,
            op: IoOp::Read,
        }
    }

    fn modulo_mapping() -> BlockMapping {
        BlockMapping::new(MappingStrategy::Modulo, 36, BASE_INTERVAL_NS, 1)
    }

    #[test]
    fn within_limit_requests_meet_guarantee_exactly() {
        // 5 distinct buckets at one window start: all served immediately.
        let trace = Trace::new(
            "t",
            (0..5).map(|i| rec(0, i)).collect(),
            9,
            BASE_INTERVAL_NS,
        );
        let q = OnlineQos::new(QosConfig::paper_9_3_1());
        let report = q.run(&trace, &mut modulo_mapping());
        assert_eq!(report.completed(), 5);
        assert_eq!(report.delayed_pct(), 0.0);
        assert_eq!(report.total_response.max_ns(), BLOCK_READ_NS);
    }

    #[test]
    fn over_limit_requests_are_delayed_to_next_window() {
        // Buckets 0..9 at once: S(1) = 5 immediate at best; the (9,3,1)
        // design may fit up to 9 non-conflicting, but repeats must wait.
        let trace = Trace::new(
            "t",
            (0..12).map(|i| rec(0, i % 6)).collect(),
            9,
            BASE_INTERVAL_NS,
        );
        let q = OnlineQos::new(QosConfig::paper_9_3_1());
        let report = q.run(&trace, &mut modulo_mapping());
        assert_eq!(report.completed(), 12);
        assert!(report.delayed_pct() > 0.0);
        // Served requests still meet the per-request guarantee.
        assert_eq!(report.total_response.max_ns(), BLOCK_READ_NS);
        // Delays are multiples of-ish window shifts, bounded by a few T.
        assert!(report.avg_delay_ms() > 0.0);
    }

    #[test]
    fn reject_policy_drops_overload() {
        let mut cfg = QosConfig::paper_9_3_1();
        cfg.policy = OverloadPolicy::Reject;
        let trace = Trace::new(
            "t",
            (0..12).map(|i| rec(0, i % 3)).collect(),
            9,
            BASE_INTERVAL_NS,
        );
        let report = OnlineQos::new(cfg).run(&trace, &mut modulo_mapping());
        assert!(report.rejected > 0);
        assert_eq!(report.completed() + report.rejected, 12);
        assert_eq!(report.delayed_pct(), 0.0);
    }

    #[test]
    fn statistical_mode_trades_delay_for_response() {
        // A bursty window: 9 requests at once, repeatedly.
        let mut records = Vec::new();
        for w in 0..40u64 {
            for i in 0..9 {
                records.push(rec(w * BASE_INTERVAL_NS, i));
            }
        }
        let trace = Trace::new("t", records, 9, 10 * BASE_INTERVAL_NS);

        let det = OnlineQos::new(QosConfig::paper_9_3_1()).run(&trace, &mut modulo_mapping());
        let stat = OnlineQos::new(QosConfig::paper_9_3_1().with_epsilon(0.9))
            .run(&trace, &mut modulo_mapping());

        assert!(
            stat.delayed_pct() < det.delayed_pct(),
            "stat {} vs det {}",
            stat.delayed_pct(),
            det.delayed_pct()
        );
        assert!(
            stat.total_response.mean_ns() >= det.total_response.mean_ns(),
            "stat {} vs det {}",
            stat.total_response.mean_ns(),
            det.total_response.mean_ns()
        );
    }

    fn write_rec(t: u64, lbn: u64) -> TraceRecord {
        TraceRecord {
            arrival_ns: t,
            device: 0,
            lbn,
            size_bytes: BLOCK_SIZE_BYTES,
            op: IoOp::Write,
        }
    }

    #[test]
    fn writes_touch_all_replicas_and_meet_the_guarantee() {
        // A lone write at a window start: all three replicas idle, so it
        // starts immediately and costs one service time.
        let trace = Trace::new("t", vec![write_rec(0, 7)], 9, BASE_INTERVAL_NS);
        let q = OnlineQos::new(QosConfig::paper_9_3_1());
        let report = q.run(&trace, &mut modulo_mapping());
        assert_eq!(report.completed(), 1);
        assert_eq!(report.total_response.max_ns(), BLOCK_READ_NS);
        assert_eq!(report.delayed_pct(), 0.0);
    }

    #[test]
    fn write_blocks_subsequent_reads_of_its_replicas_in_the_window() {
        // The write consumes the start budget of all three replica devices;
        // a same-window read of the same bucket must be delayed (M = 1).
        let trace = Trace::new(
            "t",
            vec![write_rec(0, 7), rec(1_000, 7)],
            9,
            BASE_INTERVAL_NS,
        );
        let q = OnlineQos::new(QosConfig::paper_9_3_1());
        let report = q.run(&trace, &mut modulo_mapping());
        assert_eq!(report.completed(), 2);
        let delayed: u64 = report.intervals.delayed.iter().sum();
        assert_eq!(delayed, 1);
    }

    #[test]
    fn mixed_workload_conserves_requests() {
        let mut records = Vec::new();
        for w in 0..30u64 {
            for i in 0..4 {
                let r = if i % 2 == 0 {
                    rec(w * BASE_INTERVAL_NS, (w + i) % 36)
                } else {
                    write_rec(w * BASE_INTERVAL_NS, (w + i) % 36)
                };
                records.push(r);
            }
        }
        let trace = Trace::new("t", records, 9, 10 * BASE_INTERVAL_NS);
        let q = OnlineQos::new(QosConfig::paper_9_3_1());
        let report = q.run(&trace, &mut modulo_mapping());
        assert_eq!(report.completed(), 120);
        // Served responses still never exceed one service time.
        assert_eq!(report.total_response.max_ns(), BLOCK_READ_NS);
    }

    #[test]
    fn budget_spreads_same_bucket_across_replicas() {
        // Three simultaneous requests for one bucket: replicas allow all
        // three to start at once (3 copies), a fourth must wait.
        let trace = Trace::new(
            "t",
            (0..4).map(|_| rec(0, 7)).collect(),
            9,
            BASE_INTERVAL_NS,
        );
        let q = OnlineQos::new(QosConfig::paper_9_3_1());
        let report = q.run(&trace, &mut modulo_mapping());
        assert_eq!(report.completed(), 4);
        let delayed: u64 = report.intervals.delayed.iter().sum();
        assert_eq!(delayed, 1);
    }
}
