//! The replication-based QoS framework for flash arrays — the paper's
//! primary contribution (§III–§IV).
//!
//! Time is divided into intervals of length `T`. Buckets are placed by an
//! `(N, c, 1)` design-theoretic declustering, so any
//! `S(M) = (c−1)M² + cM` requests per interval are guaranteed retrievable
//! in `M` parallel accesses — and therefore within `T` when
//! `M · t_read <= T`. Admission control enforces that limit
//! (deterministically, or statistically against a violation budget `ε`),
//! delaying or rejecting the excess.
//!
//! # Layers
//!
//! * [`config::QosConfig`] — design, access budget `M`, interval `T`,
//!   `ε`, overload policy.
//! * [`admission`] — application-level admission (§III-A), and the
//!   statistical counters `N_k / N_t` with the violation estimate
//!   `Q = Σ (1 − P_k)·R_k` (§III-B).
//! * [`mapping`] — data-block → bucket mapping: FIM-mined matching with
//!   modulo fallback (§IV-A), plus the ablation strategies.
//! * [`scheduler`] — the online scheduler (§IV-B: serve on arrival, idle
//!   replica first, else earliest finish or delay) and the interval-aligned
//!   design-theoretic scheduler (§III-C).
//! * [`baseline`] — the "original stand" replay (every request goes to the
//!   device named by the trace).
//! * [`report`] — per-interval response/delay series (the Fig. 8–10
//!   metrics).
//! * [`pipeline`] — end-to-end: trace → FIM → allocation → admission →
//!   retrieval → flash array simulation → report.
//!
//! # Quickstart
//!
//! ```
//! use fqos_core::config::QosConfig;
//! use fqos_core::pipeline::QosPipeline;
//! use fqos_traces::SyntheticConfig;
//! use fqos_flashsim::time::BASE_INTERVAL_NS;
//!
//! // 5 random blocks per 0.133 ms interval on a (9,3,1) flash array.
//! let trace = SyntheticConfig::table3(5, BASE_INTERVAL_NS).generate();
//! let config = QosConfig::paper_9_3_1();
//! let interval_ns = config.interval_ns;
//! let report = QosPipeline::new(config).run_online(&trace);
//! // Every admitted request met the deterministic guarantee.
//! assert!(report.total_response.max_ns() <= interval_ns);
//! ```

pub mod admission;
pub mod baseline;
pub mod config;
pub mod mapping;
pub mod pipeline;
pub mod report;
pub mod scheduler;

pub use admission::{AppAdmission, StatisticalCounters};
pub use config::{OverloadPolicy, QosConfig};
pub use mapping::{BlockMapping, MappingStrategy};
pub use pipeline::QosPipeline;
pub use report::QosReport;
