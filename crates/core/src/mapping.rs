//! Data-block → bucket mapping strategies (§IV-A).

use fqos_fim::{match_design_blocks, Apriori, BlockMatcher, PairMiner, TransactionDb};
use fqos_traces::TraceRecord;

/// How data blocks are mapped to design-block buckets.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum MappingStrategy {
    /// FIM matching of the previous interval's trace, modulo fallback —
    /// the paper's method.
    #[default]
    Fim,
    /// Pure modulo (`lbn % numBuckets`) — the fallback used alone.
    Modulo,
    /// Round-robin over buckets in order of first appearance — the other
    /// naive alternative the paper mentions.
    RoundRobin,
}

/// Per-interval block mapping state. Call [`BlockMapping::advance_interval`]
/// at every reporting-interval boundary with the just-finished interval's
/// records; the mapping used *within* interval `i` is mined from interval
/// `i − 1` ("we use the trace one previous than the current interval for
/// mining", §V-D).
#[derive(Debug, Clone)]
pub struct BlockMapping {
    strategy: MappingStrategy,
    num_buckets: usize,
    /// FIM window (the paper uses `T` = 0.133 ms).
    window_ns: u64,
    /// Minimum support for mining.
    min_support: u32,
    matcher: BlockMatcher,
    /// Round-robin state.
    rr_assign: std::collections::HashMap<u64, usize>,
    rr_next: usize,
}

impl BlockMapping {
    /// Create a mapping over `num_buckets` buckets with the given FIM
    /// window and support.
    pub fn new(
        strategy: MappingStrategy,
        num_buckets: usize,
        window_ns: u64,
        min_support: u32,
    ) -> Self {
        BlockMapping {
            strategy,
            num_buckets,
            window_ns,
            min_support,
            matcher: BlockMatcher::empty(num_buckets),
            rr_assign: Default::default(),
            rr_next: 0,
        }
    }

    /// Bucket for a data block under the current interval's mapping.
    pub fn bucket_for(&mut self, lbn: u64) -> usize {
        match self.strategy {
            MappingStrategy::Fim => self.matcher.bucket_for(lbn),
            MappingStrategy::Modulo => (lbn % self.num_buckets as u64) as usize,
            MappingStrategy::RoundRobin => {
                let next = &mut self.rr_next;
                let n = self.num_buckets;
                *self.rr_assign.entry(lbn).or_insert_with(|| {
                    let b = *next % n;
                    *next += 1;
                    b
                })
            }
        }
    }

    /// Finish an interval: mine its records and install the result as the
    /// next interval's matcher. Returns the fraction of the interval's
    /// requests that the *outgoing* matcher had matched (the Fig. 11
    /// metric), paired with the mining report.
    pub fn advance_interval(
        &mut self,
        finished_interval: &[TraceRecord],
    ) -> (f64, Option<fqos_fim::MiningReport>) {
        let matched = match self.strategy {
            MappingStrategy::Fim => self
                .matcher
                .matched_fraction(finished_interval.iter().map(|r| r.lbn)),
            _ => 0.0,
        };
        let report = if self.strategy == MappingStrategy::Fim {
            let db = TransactionDb::from_timed_events(
                finished_interval.iter().map(|r| (r.arrival_ns, r.lbn)),
                self.window_ns,
            );
            let (pairs, report) = Apriori.mine_pairs_with_report(&db, self.min_support);
            self.matcher = match_design_blocks(&pairs, self.num_buckets);
            Some(report)
        } else {
            None
        };
        (matched, report)
    }

    /// The active matcher (inspection).
    pub fn matcher(&self) -> &BlockMatcher {
        &self.matcher
    }

    /// Strategy in use.
    pub fn strategy(&self) -> MappingStrategy {
        self.strategy
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fqos_flashsim::IoOp;

    fn rec(t: u64, lbn: u64) -> TraceRecord {
        TraceRecord {
            arrival_ns: t,
            device: 0,
            lbn,
            size_bytes: 8192,
            op: IoOp::Read,
        }
    }

    #[test]
    fn modulo_and_round_robin() {
        let mut m = BlockMapping::new(MappingStrategy::Modulo, 36, 133_000, 1);
        assert_eq!(m.bucket_for(40), 4);

        let mut rr = BlockMapping::new(MappingStrategy::RoundRobin, 36, 133_000, 1);
        assert_eq!(rr.bucket_for(500), 0);
        assert_eq!(rr.bucket_for(700), 1);
        assert_eq!(rr.bucket_for(500), 0); // stable per block
    }

    #[test]
    fn fim_mapping_separates_co_requested_blocks() {
        let mut m = BlockMapping::new(MappingStrategy::Fim, 36, 100, 2);
        // Interval 0: blocks 100 and 200 always together. Under modulo both
        // map to bucket 100%36 = 28 and 200%36 = 20 (different here), so use
        // colliding blocks: 36 and 72 both → bucket 0 under modulo.
        let interval: Vec<TraceRecord> = (0..10)
            .flat_map(|i| [rec(i * 1000, 36), rec(i * 1000 + 1, 72)])
            .collect();
        assert_eq!(m.bucket_for(36), 0);
        assert_eq!(m.bucket_for(72), 0); // pre-mining collision
        let (matched0, report) = m.advance_interval(&interval);
        assert_eq!(matched0, 0.0); // first interval: empty matcher
        assert!(report.is_some());
        // After mining, the pair is separated.
        assert_ne!(m.bucket_for(36), m.bucket_for(72));
        // Fig. 11 metric on a repeat of the same interval: all matched.
        let (matched1, _) = m.advance_interval(&interval);
        assert_eq!(matched1, 1.0);
    }

    #[test]
    fn fim_unmatched_blocks_fall_back_to_modulo() {
        let mut m = BlockMapping::new(MappingStrategy::Fim, 36, 100, 1);
        let interval = vec![rec(0, 10), rec(1, 20)];
        m.advance_interval(&interval);
        // Block 999 never seen → modulo.
        assert_eq!(m.bucket_for(999), (999 % 36) as usize);
    }
}
