//! Experiment reports: per-interval response/delay series.

use fqos_fim::MiningReport;
use fqos_flashsim::{IntervalStats, ResponseStats};

/// Outcome of running a workload through a QoS scheduler (or a baseline).
#[derive(Debug, Clone, Default)]
pub struct QosReport {
    /// Which scheduler/baseline produced this report.
    pub name: String,
    /// Per-reporting-interval response and delay statistics.
    pub intervals: IntervalStats,
    /// Whole-run response statistics.
    pub total_response: ResponseStats,
    /// Requests rejected (only under [`crate::OverloadPolicy::Reject`]).
    pub rejected: u64,
    /// Fig. 11 series: fraction of each interval's requests matched by the
    /// previous interval's FIM mining (empty unless FIM mapping was used).
    pub matched_fraction: Vec<f64>,
    /// Mining reports per interval (Table IV inputs).
    pub mining: Vec<MiningReport>,
}

impl QosReport {
    /// New empty report.
    pub fn new(name: impl Into<String>) -> Self {
        QosReport {
            name: name.into(),
            ..Default::default()
        }
    }

    /// Record one completed request.
    pub fn record(&mut self, interval: usize, response_ns: u64, delay_ns: u64) {
        self.intervals.record(interval, response_ns, delay_ns);
        self.total_response.record(response_ns);
    }

    /// Total requests completed.
    pub fn completed(&self) -> u64 {
        self.total_response.count()
    }

    /// Overall percentage of delayed requests (Fig. 8(d) / Fig. 9 labels).
    pub fn delayed_pct(&self) -> f64 {
        self.intervals.total_delayed_pct()
    }

    /// Overall average delay (ms) of delayed requests (Fig. 8(c)).
    pub fn avg_delay_ms(&self) -> f64 {
        self.intervals.total_avg_delay_ms()
    }

    /// Mean matched fraction (Fig. 11 summary: "in average 17 % / 87 %"),
    /// excluding the first interval which has no history.
    pub fn avg_matched_fraction(&self) -> f64 {
        if self.matched_fraction.len() <= 1 {
            return 0.0;
        }
        let tail = &self.matched_fraction[1..];
        tail.iter().sum::<f64>() / tail.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_flow_to_both_aggregates() {
        let mut r = QosReport::new("t");
        r.record(0, 100, 0);
        r.record(0, 200, 50);
        r.record(1, 300, 0);
        assert_eq!(r.completed(), 3);
        assert_eq!(r.intervals.requests[0], 2);
        assert!((r.total_response.mean_ns() - 200.0).abs() < 1e-9);
        assert!((r.delayed_pct() - 100.0 / 3.0).abs() < 1e-9);
    }

    #[test]
    fn matched_fraction_average_skips_first_interval() {
        let mut r = QosReport::new("t");
        r.matched_fraction = vec![0.0, 0.5, 0.7];
        assert!((r.avg_matched_fraction() - 0.6).abs() < 1e-12);
        r.matched_fraction = vec![0.0];
        assert_eq!(r.avg_matched_fraction(), 0.0);
    }
}
