//! QoS framework configuration.

use fqos_decluster::DesignTheoretic;
use fqos_designs::RetrievalGuarantee;
use fqos_flashsim::time::{BASE_INTERVAL_NS, BLOCK_READ_NS};
use fqos_flashsim::Duration;

/// What to do with requests that would violate the guarantee (§III-A: "it
/// can either be rejected or delayed to the next available interval"; the
/// paper's experiments use Delay "since canceling the requests may effect
/// the running state of applications").
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum OverloadPolicy {
    /// Push the request to the next interval with capacity.
    #[default]
    Delay,
    /// Drop the request (counted in the report).
    Reject,
}

/// Configuration of one QoS deployment.
#[derive(Debug, Clone)]
pub struct QosConfig {
    /// The design-theoretic allocation in use.
    pub scheme: DesignTheoretic,
    /// Access budget `M` per device per interval.
    pub accesses: usize,
    /// Interval length `T` in nanoseconds.
    pub interval_ns: Duration,
    /// Violation budget `ε` for statistical QoS; `0.0` = deterministic.
    pub epsilon: f64,
    /// Overload handling.
    pub policy: OverloadPolicy,
    /// Per-8-KiB-block device service time (the calibrated 0.132507 ms).
    pub service_ns: Duration,
}

impl QosConfig {
    /// The paper's base configuration: `(9,3,1)` design, `M = 1`,
    /// `T = 0.133 ms`, deterministic, delay policy.
    pub fn paper_9_3_1() -> Self {
        QosConfig {
            scheme: DesignTheoretic::paper_9_3_1(),
            accesses: 1,
            interval_ns: BASE_INTERVAL_NS,
            epsilon: 0.0,
            policy: OverloadPolicy::Delay,
            service_ns: BLOCK_READ_NS,
        }
    }

    /// The TPC-E configuration: `(13,3,1)` design, otherwise as above.
    pub fn paper_13_3_1() -> Self {
        QosConfig {
            scheme: DesignTheoretic::paper_13_3_1(),
            ..Self::paper_9_3_1()
        }
    }

    /// Set the access budget `M` and scale the interval to `M · 0.133 ms`
    /// (the Table III pattern: 14 blocks / 0.266 ms, 27 / 0.399 ms).
    pub fn with_accesses(mut self, m: usize) -> Self {
        assert!(m >= 1);
        self.accesses = m;
        self.interval_ns = m as u64 * BASE_INTERVAL_NS;
        self
    }

    /// Set the statistical violation budget.
    pub fn with_epsilon(mut self, epsilon: f64) -> Self {
        assert!((0.0..=1.0).contains(&epsilon));
        self.epsilon = epsilon;
        self
    }

    /// The per-interval request limit `S(M) = (c−1)M² + cM`.
    pub fn request_limit(&self) -> usize {
        self.guarantee().buckets_in(self.accesses)
    }

    /// The worst-case guarantee algebra of the scheme.
    pub fn guarantee(&self) -> RetrievalGuarantee {
        self.scheme.guarantee()
    }

    /// Number of devices.
    pub fn devices(&self) -> usize {
        self.scheme.guarantee().devices
    }

    /// Sanity-check: `M` accesses must fit in the interval, or no guarantee
    /// can ever be met.
    pub fn validate(&self) -> Result<(), String> {
        let needed = self.accesses as u64 * self.service_ns;
        if needed > self.interval_ns {
            return Err(format!(
                "M = {} accesses need {} ns but the interval is {} ns",
                self.accesses, needed, self.interval_ns
            ));
        }
        if !(0.0..=1.0).contains(&self.epsilon) {
            return Err(format!("epsilon {} outside [0,1]", self.epsilon));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_limits() {
        let c = QosConfig::paper_9_3_1();
        c.validate().unwrap();
        assert_eq!(c.request_limit(), 5);
        assert_eq!(c.clone().with_accesses(2).request_limit(), 14);
        assert_eq!(c.clone().with_accesses(3).request_limit(), 27);
        assert_eq!(c.with_accesses(3).interval_ns, 399_000);
    }

    #[test]
    fn validation_catches_impossible_intervals() {
        let mut c = QosConfig::paper_9_3_1();
        c.accesses = 2; // 2 × 0.1325 ms > 0.133 ms
        assert!(c.validate().is_err());
        assert!(QosConfig::paper_9_3_1().with_accesses(2).validate().is_ok());
    }

    #[test]
    fn epsilon_bounds() {
        assert!(QosConfig::paper_9_3_1()
            .with_epsilon(0.2)
            .validate()
            .is_ok());
        let mut c = QosConfig::paper_9_3_1();
        c.epsilon = 1.5;
        assert!(c.validate().is_err());
    }
}
