//! The "original stand" baseline (§V-D): every block request is retrieved
//! from the device it is stated in the trace, with no QoS machinery — the
//! top lines of Fig. 8 and Fig. 9.

use crate::report::QosReport;
use fqos_flashsim::{CalibratedSsd, Duration, FlashArray, IoRequest};
use fqos_traces::Trace;

/// Replay a trace against its original device layout. Requests queue FCFS
/// per device; the response time includes all queueing (which is what blows
/// past the guarantee whenever a burst hits a hot volume).
pub fn run_original(trace: &Trace, service_ns: Duration) -> QosReport {
    let mut array = FlashArray::new(
        (0..trace.num_devices)
            .map(|_| CalibratedSsd::with_latencies(service_ns, service_ns))
            .collect::<Vec<_>>(),
    );
    let mut report = QosReport::new("original");
    for (interval_idx, records) in trace.intervals().enumerate() {
        for r in records {
            let req = IoRequest::read_block(r.lbn, r.arrival_ns, r.device, r.lbn);
            let c = array.submit(&req, r.arrival_ns);
            report.record(interval_idx, c.response_time(), 0);
        }
    }
    report
}

/// Replay a trace against an arbitrary replicated allocation with the
/// greedy per-request replica policy a real RAID controller uses: each
/// read goes to the replica with the shortest queue (earliest finish) at
/// arrival. No admission control, no batching — this is how the Table III
/// RAID-1 baselines are driven.
pub fn run_scheme_greedy<S: fqos_decluster::AllocationScheme>(
    trace: &Trace,
    scheme: &S,
    mapping: &mut crate::mapping::BlockMapping,
    service_ns: Duration,
) -> QosReport {
    let mut array = FlashArray::new(
        (0..scheme.devices())
            .map(|_| CalibratedSsd::with_latencies(service_ns, service_ns))
            .collect::<Vec<_>>(),
    );
    let mut report = QosReport::new(format!("greedy {}", scheme.name()));
    let mut free = vec![0u64; scheme.devices()];
    for (interval_idx, records) in trace.intervals().enumerate() {
        for r in records {
            let bucket = mapping.bucket_for(r.lbn);
            let replicas = scheme.replicas(bucket);
            let d = fqos_decluster::retrieval::pick_online_device(replicas, &free, r.arrival_ns);
            let c = array.submit(
                &IoRequest::read_block(r.lbn, r.arrival_ns, d, r.lbn),
                r.arrival_ns,
            );
            free[d] = c.finish;
            report.record(interval_idx, c.response_time(), 0);
        }
        let (matched, mining) = mapping.advance_interval(records);
        report.matched_fraction.push(matched);
        if let Some(m) = mining {
            report.mining.push(m);
        }
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use fqos_flashsim::{IoOp, BLOCK_READ_NS, BLOCK_SIZE_BYTES};
    use fqos_traces::TraceRecord;

    fn rec(t: u64, device: usize) -> TraceRecord {
        TraceRecord {
            arrival_ns: t,
            device,
            lbn: 0,
            size_bytes: BLOCK_SIZE_BYTES,
            op: IoOp::Read,
        }
    }

    #[test]
    fn spread_requests_meet_service_time() {
        let trace = Trace::new("t", (0..4).map(|d| rec(0, d)).collect(), 4, 1_000_000);
        let r = run_original(&trace, BLOCK_READ_NS);
        assert_eq!(r.completed(), 4);
        assert_eq!(r.total_response.max_ns(), BLOCK_READ_NS);
    }

    #[test]
    fn hot_device_bursts_queue_up() {
        // 10 simultaneous requests on one device: the last waits 9 services.
        let trace = Trace::new("t", (0..10).map(|_| rec(0, 2)).collect(), 4, 1_000_000);
        let r = run_original(&trace, BLOCK_READ_NS);
        assert_eq!(r.total_response.max_ns(), 10 * BLOCK_READ_NS);
        assert!(r.total_response.mean_ns() > 5.0 * BLOCK_READ_NS as f64);
    }
}
