//! The end-to-end QoS pipeline: trace → block mapping → allocation →
//! admission → retrieval → flash array simulation → report.

use crate::baseline::run_original;
use crate::config::QosConfig;
use crate::mapping::{BlockMapping, MappingStrategy};
use crate::report::QosReport;
use crate::scheduler::{IntervalQos, OnlineQos};
use fqos_decluster::AllocationScheme;
use fqos_traces::Trace;

/// Default minimum support for the FIM miner (the paper's Table IV uses
/// support 1 and notes that raising it trades recall for speed/memory).
pub const DEFAULT_MIN_SUPPORT: u32 = 1;

/// Ties every piece of the framework together. One pipeline = one
/// [`QosConfig`]; each `run_*` call processes a whole trace and returns the
/// per-interval report.
#[derive(Debug, Clone)]
pub struct QosPipeline {
    config: QosConfig,
    strategy: MappingStrategy,
    min_support: u32,
}

impl QosPipeline {
    /// Pipeline with the paper's defaults: FIM block mapping mined per
    /// reporting interval with support 1.
    pub fn new(config: QosConfig) -> Self {
        config.validate().expect("invalid QoS configuration");
        QosPipeline {
            config,
            strategy: MappingStrategy::Fim,
            min_support: DEFAULT_MIN_SUPPORT,
        }
    }

    /// Override the block-mapping strategy (ablations: Modulo, RoundRobin).
    pub fn with_mapping(mut self, strategy: MappingStrategy) -> Self {
        self.strategy = strategy;
        self
    }

    /// Override the FIM minimum support.
    pub fn with_min_support(mut self, min_support: u32) -> Self {
        self.min_support = min_support.max(1);
        self
    }

    /// The configuration.
    pub fn config(&self) -> &QosConfig {
        &self.config
    }

    fn mapping(&self) -> BlockMapping {
        BlockMapping::new(
            self.strategy,
            self.config.scheme.num_buckets(),
            self.config.interval_ns,
            self.min_support,
        )
    }

    /// Run with the online scheduler (§IV-B) — the configuration used for
    /// Figs. 8, 9 and 10.
    pub fn run_online(&self, trace: &Trace) -> QosReport {
        let mut mapping = self.mapping();
        OnlineQos::new(self.config.clone()).run(trace, &mut mapping)
    }

    /// Run with the interval-aligned design-theoretic scheduler (§III-C) —
    /// the configuration used for Table III and the top lines of Fig. 12.
    pub fn run_interval(&self) -> IntervalRunner<'_> {
        IntervalRunner { pipeline: self }
    }

    /// Run the "original stand" baseline (top lines of Figs. 8/9).
    pub fn run_original(&self, trace: &Trace) -> QosReport {
        run_original(trace, self.config.service_ns)
    }
}

/// Builder-style access to the interval scheduler so baselines can swap the
/// allocation scheme.
#[derive(Debug, Clone, Copy)]
pub struct IntervalRunner<'a> {
    pipeline: &'a QosPipeline,
}

impl IntervalRunner<'_> {
    /// The paper's QoS configuration: design-theoretic scheme + admission.
    pub fn run(&self, trace: &Trace) -> QosReport {
        let mut mapping = self.pipeline.mapping();
        IntervalQos::new(self.pipeline.config.clone()).run(trace, &mut mapping)
    }

    /// A Table III baseline: arbitrary scheme, greedy per-request replica
    /// choice (the RAID-controller policy), no admission control.
    pub fn run_baseline<S: AllocationScheme>(&self, trace: &Trace, scheme: &S) -> QosReport {
        let mut mapping = BlockMapping::new(
            MappingStrategy::Modulo,
            scheme.num_buckets(),
            self.pipeline.config.interval_ns,
            self.pipeline.min_support,
        );
        crate::baseline::run_scheme_greedy(
            trace,
            scheme,
            &mut mapping,
            self.pipeline.config.service_ns,
        )
    }

    /// A baseline that still batches at interval boundaries with exact
    /// max-flow retrieval but has no admission control — the strongest
    /// possible version of a baseline scheme (ablation).
    pub fn run_baseline_batched<S: AllocationScheme>(
        &self,
        trace: &Trace,
        scheme: &S,
    ) -> QosReport {
        let mut mapping = BlockMapping::new(
            MappingStrategy::Modulo,
            scheme.num_buckets(),
            self.pipeline.config.interval_ns,
            self.pipeline.min_support,
        );
        IntervalQos::without_admission(self.pipeline.config.clone()).run_scheme(
            trace,
            scheme,
            &mut mapping,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fqos_flashsim::time::BASE_INTERVAL_NS;
    use fqos_flashsim::BLOCK_READ_NS;
    use fqos_traces::SyntheticConfig;

    #[test]
    fn table3_shape_design_vs_mirrored() {
        // The headline Table III result in miniature: the design-theoretic
        // QoS system keeps every response within the interval, the mirrored
        // baseline does not.
        let trace = SyntheticConfig {
            blocks_per_interval: 27,
            interval_ns: 3 * BASE_INTERVAL_NS,
            total_requests: 2_000,
            block_pool: 36,
            seed: 1,
        }
        .generate();
        let pipeline = QosPipeline::new(QosConfig::paper_9_3_1().with_accesses(3))
            .with_mapping(MappingStrategy::Modulo);

        let qos = pipeline.run_interval().run(&trace);
        assert!(qos.total_response.max_ns() <= 3 * BASE_INTERVAL_NS);

        let mirrored = fqos_decluster::Raid1Mirrored::paper();
        let base = pipeline.run_interval().run_baseline(&trace, &mirrored);
        assert!(
            base.total_response.max_ns() > qos.total_response.max_ns(),
            "mirrored {} vs design {}",
            base.total_response.max_ns(),
            qos.total_response.max_ns()
        );
    }

    #[test]
    fn online_pipeline_with_fim_runs_end_to_end() {
        let trace = SyntheticConfig {
            blocks_per_interval: 5,
            interval_ns: BASE_INTERVAL_NS,
            total_requests: 500,
            block_pool: 36,
            seed: 2,
        }
        .generate();
        let report = QosPipeline::new(QosConfig::paper_9_3_1()).run_online(&trace);
        assert_eq!(report.completed(), 500);
        assert_eq!(report.total_response.max_ns(), BLOCK_READ_NS);
        assert!(!report.matched_fraction.is_empty());
    }

    #[test]
    fn original_baseline_reflects_trace_devices() {
        let trace = SyntheticConfig::table3(5, BASE_INTERVAL_NS).generate();
        // All synthetic records target device 0 → massive queueing.
        let report = QosPipeline::new(QosConfig::paper_9_3_1()).run_original(&trace);
        assert_eq!(report.completed(), 10_000);
        assert!(report.total_response.max_ns() > BASE_INTERVAL_NS);
    }
}
