//! Focused tests of the statistical QoS machinery (§III-B).

use fqos_core::admission::StatisticalCounters;
use fqos_core::config::QosConfig;
use fqos_core::mapping::{BlockMapping, MappingStrategy};
use fqos_core::scheduler::OnlineQos;
use fqos_decluster::sampling::optimal_retrieval_probabilities;
use fqos_decluster::{AllocationScheme, DesignTheoretic};
use fqos_flashsim::time::BASE_INTERVAL_NS;
use fqos_flashsim::{IoOp, BLOCK_SIZE_BYTES};
use fqos_traces::{Trace, TraceRecord};

fn rec(t: u64, lbn: u64) -> TraceRecord {
    TraceRecord {
        arrival_ns: t,
        device: 0,
        lbn,
        size_bytes: BLOCK_SIZE_BYTES,
        op: IoOp::Read,
    }
}

fn modulo_mapping() -> BlockMapping {
    BlockMapping::new(MappingStrategy::Modulo, 36, BASE_INTERVAL_NS, 1)
}

/// A workload with persistent 9-request bursts at window starts.
fn bursty_trace(windows: u64) -> Trace {
    let mut records = Vec::new();
    for w in 0..windows {
        for i in 0..9u64 {
            records.push(rec(w * BASE_INTERVAL_NS, (w * 3 + i) % 36));
        }
    }
    Trace::new("bursty", records, 9, 20 * BASE_INTERVAL_NS)
}

#[test]
fn q_converges_to_the_empirical_violation_rate() {
    // Feed counters a fixed size mix and check Q equals the closed form.
    let scheme = DesignTheoretic::paper_9_3_1();
    let p = optimal_retrieval_probabilities(&scheme, 12, 30_000, 9);
    let mut c = StatisticalCounters::new();
    for _ in 0..60 {
        c.record_interval(3);
    }
    for _ in 0..30 {
        c.record_interval(8);
    }
    for _ in 0..10 {
        c.record_interval(9);
    }
    let q = c.violation_probability(&p);
    let expected = 0.6 * (1.0 - p.p_k(3)) + 0.3 * (1.0 - p.p_k(8)) + 0.1 * (1.0 - p.p_k(9));
    assert!(
        (q - expected).abs() < 1e-12,
        "q = {q}, expected = {expected}"
    );
    assert_eq!(c.intervals(), 100);
}

#[test]
fn epsilon_zero_matches_deterministic_exactly() {
    let trace = bursty_trace(60);
    let det = OnlineQos::new(QosConfig::paper_9_3_1());
    let stat_zero = OnlineQos::new(QosConfig::paper_9_3_1().with_epsilon(0.0));
    let a = det.run(&trace, &mut modulo_mapping());
    let b = stat_zero.run(&trace, &mut modulo_mapping());
    assert_eq!(a.delayed_pct(), b.delayed_pct());
    assert_eq!(a.total_response.max_ns(), b.total_response.max_ns());
    assert_eq!(a.total_response.mean_ns(), b.total_response.mean_ns());
}

#[test]
fn delayed_fraction_is_monotone_in_epsilon() {
    let trace = bursty_trace(80);
    let mut last = f64::INFINITY;
    for eps in [0.0, 0.05, 0.5] {
        let report = OnlineQos::new(QosConfig::paper_9_3_1().with_epsilon(eps))
            .run(&trace, &mut modulo_mapping());
        assert!(
            report.delayed_pct() <= last + 1e-9,
            "ε = {eps}: delayed {} > previous {last}",
            report.delayed_pct()
        );
        last = report.delayed_pct();
    }
}

#[test]
fn statistical_runs_are_deterministic() {
    let trace = bursty_trace(40);
    let a = OnlineQos::new(QosConfig::paper_9_3_1().with_epsilon(0.1))
        .run(&trace, &mut modulo_mapping());
    let b = OnlineQos::new(QosConfig::paper_9_3_1().with_epsilon(0.1))
        .run(&trace, &mut modulo_mapping());
    assert_eq!(a.delayed_pct(), b.delayed_pct());
    assert_eq!(a.total_response.max_ns(), b.total_response.max_ns());
    assert_eq!(a.completed(), b.completed());
}

#[test]
fn over_admitted_requests_are_still_served() {
    // Conservation holds in statistical mode: nothing is lost, the
    // trade-off only moves requests between "delayed" and "queued".
    let trace = bursty_trace(50);
    let report = OnlineQos::new(QosConfig::paper_9_3_1().with_epsilon(0.3))
        .run(&trace, &mut modulo_mapping());
    assert_eq!(report.completed(), trace.len() as u64);
    assert_eq!(report.rejected, 0);
}

#[test]
fn precomputed_probability_table_matches_internal_sampling() {
    // with_probabilities exists so ε sweeps can share one P_k table; it
    // must behave identically to the internally sampled table when seeded
    // the same way.
    let trace = bursty_trace(30);
    let cfg = QosConfig::paper_9_3_1().with_epsilon(0.02);
    let k_max = cfg.scheme.num_buckets().min(4 * cfg.request_limit());
    let table = optimal_retrieval_probabilities(&cfg.scheme, k_max, 20_000, 0xF19u64);
    let a = OnlineQos::new(cfg.clone()).run(&trace, &mut modulo_mapping());
    let b = OnlineQos::with_probabilities(cfg, table).run(&trace, &mut modulo_mapping());
    assert_eq!(a.delayed_pct(), b.delayed_pct());
    assert_eq!(a.total_response.mean_ns(), b.total_response.mean_ns());
}
