//! Property-based tests of the QoS schedulers' invariants.

use fqos_core::config::QosConfig;
use fqos_core::mapping::{BlockMapping, MappingStrategy};
use fqos_core::scheduler::{IntervalQos, OnlineQos};
use fqos_core::OverloadPolicy;
use fqos_flashsim::time::BASE_INTERVAL_NS;
use fqos_flashsim::{IoOp, BLOCK_SIZE_BYTES};
use fqos_traces::{Trace, TraceRecord};
use proptest::prelude::*;

fn rec(t: u64, lbn: u64) -> TraceRecord {
    TraceRecord {
        arrival_ns: t,
        device: 0,
        lbn,
        size_bytes: BLOCK_SIZE_BYTES,
        op: IoOp::Read,
    }
}

fn modulo_mapping() -> BlockMapping {
    BlockMapping::new(MappingStrategy::Modulo, 36, BASE_INTERVAL_NS, 1)
}

/// Arbitrary small traces: bursts of requests at arbitrary times.
fn trace_strategy() -> impl Strategy<Value = Trace> {
    prop::collection::vec((0u64..40, 0u64..36), 1..120).prop_map(|pairs| {
        let records = pairs
            .into_iter()
            .map(|(w, lbn)| rec(w * (BASE_INTERVAL_NS / 3), lbn))
            .collect();
        Trace::new("prop", records, 9, 4 * BASE_INTERVAL_NS)
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// THE deterministic guarantee: every served request's response time is
    /// exactly the device service time, no matter how adversarial the
    /// trace — overload shows up as delay, never as a violated response.
    #[test]
    fn deterministic_online_never_violates_response_guarantee(trace in trace_strategy()) {
        let cfg = QosConfig::paper_9_3_1();
        let service = cfg.service_ns;
        let report = OnlineQos::new(cfg).run(&trace, &mut modulo_mapping());
        prop_assert_eq!(report.completed(), trace.len() as u64);
        prop_assert_eq!(report.total_response.max_ns(), service);
        prop_assert_eq!(report.rejected, 0);
    }

    /// Conservation under Reject: completed + rejected = offered.
    #[test]
    fn reject_policy_conserves_requests(trace in trace_strategy()) {
        let mut cfg = QosConfig::paper_9_3_1();
        cfg.policy = OverloadPolicy::Reject;
        let report = OnlineQos::new(cfg).run(&trace, &mut modulo_mapping());
        prop_assert_eq!(report.completed() + report.rejected, trace.len() as u64);
        // Nothing is both rejected and delayed.
        let delayed: u64 = report.intervals.delayed.iter().sum();
        prop_assert_eq!(delayed, 0);
    }

    /// The interval scheduler with admission keeps every response within
    /// M × service (the batch bound), for any trace.
    #[test]
    fn interval_scheduler_bounds_responses(trace in trace_strategy()) {
        let cfg = QosConfig::paper_9_3_1();
        let bound = cfg.accesses as u64 * cfg.service_ns;
        let report = IntervalQos::new(cfg).run(&trace, &mut modulo_mapping());
        prop_assert_eq!(report.completed(), trace.len() as u64);
        prop_assert!(report.total_response.max_ns() <= bound);
    }

    /// Delay accounting is consistent: delayed% > 0 iff some delay was
    /// recorded, and average delay is positive exactly then.
    #[test]
    fn delay_accounting_consistency(trace in trace_strategy()) {
        let report = OnlineQos::new(QosConfig::paper_9_3_1())
            .run(&trace, &mut modulo_mapping());
        let delayed: u64 = report.intervals.delayed.iter().sum();
        if delayed == 0 {
            prop_assert_eq!(report.avg_delay_ms(), 0.0);
            prop_assert_eq!(report.delayed_pct(), 0.0);
        } else {
            prop_assert!(report.avg_delay_ms() > 0.0);
            prop_assert!(report.delayed_pct() > 0.0);
        }
    }

    /// Loads within the per-window limit are never delayed when they hit
    /// distinct buckets at window starts.
    #[test]
    fn within_limit_window_start_loads_are_never_delayed(
        windows in 1usize..20,
        k in 1usize..6,
        seed in any::<u64>(),
    ) {
        let mut records = Vec::new();
        let mut state = seed | 1;
        for w in 0..windows {
            // k distinct buckets per window.
            let mut pool: Vec<u64> = (0..36).collect();
            for i in 0..k {
                state = state.wrapping_mul(6364136223846793005).wrapping_add(99);
                let j = i + (state >> 33) as usize % (pool.len() - i);
                pool.swap(i, j);
                records.push(rec(w as u64 * BASE_INTERVAL_NS, pool[i]));
            }
        }
        let trace = Trace::new("t", records, 9, 4 * BASE_INTERVAL_NS);
        let report = OnlineQos::new(QosConfig::paper_9_3_1())
            .run(&trace, &mut modulo_mapping());
        prop_assert_eq!(report.delayed_pct(), 0.0, "k = {}", k);
    }
}
