//! Offline stand-in for the `proptest` crate (the subset this workspace's
//! property tests use).
//!
//! Supports the `proptest!` macro with per-block `ProptestConfig`,
//! range/tuple/`any`/`prop::collection::vec` strategies, `prop_map`, and the
//! `prop_assert!`/`prop_assert_eq!` assertion macros. Inputs are drawn from
//! a generator seeded deterministically from the test name and case index,
//! so failures reproduce across runs. **No shrinking**: a failing case
//! reports the case number instead of a minimized input.

use rand::rngs::StdRng;
use rand::{Rng, RngCore, SeedableRng};
use std::fmt;

/// A failed property-test assertion (carried as an `Err` so `prop_assert!`
/// can abort just the current case's closure).
#[derive(Debug)]
pub struct TestCaseError {
    msg: String,
}

impl TestCaseError {
    /// Build a failure with a preformatted message.
    pub fn fail(msg: String) -> Self {
        TestCaseError { msg }
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.msg)
    }
}

/// Result type each generated test case returns.
pub type TestCaseResult = Result<(), TestCaseError>;

/// Per-`proptest!` block configuration.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases per test.
    pub cases: u32,
}

impl ProptestConfig {
    /// Config running `cases` random cases per test.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        // Upstream defaults to 256; 64 keeps un-configured suites quick on
        // the single-core CI box while still exercising the space.
        ProptestConfig { cases: 64 }
    }
}

/// A generator of random values for one test parameter.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Draw one value.
    fn sample(&self, rng: &mut StdRng) -> Self::Value;

    /// Transform generated values with `f`.
    fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }
}

/// Strategy adapter produced by [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;

    fn sample(&self, rng: &mut StdRng) -> O {
        (self.f)(self.inner.sample(rng))
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut StdRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
        impl Strategy for core::ops::RangeInclusive<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut StdRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Values with a canonical whole-domain strategy (see [`any`]).
pub trait Arbitrary {
    /// Draw a uniform value from the full domain.
    fn arbitrary(rng: &mut StdRng) -> Self;
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut StdRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut StdRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

/// Whole-domain strategy returned by [`any`].
#[derive(Debug, Clone, Copy)]
pub struct Any<T> {
    _marker: core::marker::PhantomData<T>,
}

/// Strategy over every value of `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any {
        _marker: core::marker::PhantomData,
    }
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn sample(&self, rng: &mut StdRng) -> T {
        T::arbitrary(rng)
    }
}

macro_rules! impl_tuple_strategy {
    ($($s:ident . $idx:tt),+) => {
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn sample(&self, rng: &mut StdRng) -> Self::Value {
                ($(self.$idx.sample(rng),)+)
            }
        }
    };
}

impl_tuple_strategy!(A.0);
impl_tuple_strategy!(A.0, B.1);
impl_tuple_strategy!(A.0, B.1, C.2);
impl_tuple_strategy!(A.0, B.1, C.2, D.3);
impl_tuple_strategy!(A.0, B.1, C.2, D.3, E.4);
impl_tuple_strategy!(A.0, B.1, C.2, D.3, E.4, F.5);

/// Mirrors `proptest::prop` — combinator namespaces.
pub mod prop {
    /// Collection strategies.
    pub mod collection {
        use super::super::Strategy;
        use rand::rngs::StdRng;
        use rand::Rng;

        /// Strategy for `Vec<S::Value>` with length drawn from `size`.
        #[derive(Debug, Clone)]
        pub struct VecStrategy<S> {
            elem: S,
            size: core::ops::Range<usize>,
        }

        /// `Vec` strategy: each case draws a length in `size`, then that
        /// many elements from `elem`.
        pub fn vec<S: Strategy>(elem: S, size: core::ops::Range<usize>) -> VecStrategy<S> {
            assert!(size.start < size.end, "empty vec size range");
            VecStrategy { elem, size }
        }

        impl<S: Strategy> Strategy for VecStrategy<S> {
            type Value = Vec<S::Value>;

            fn sample(&self, rng: &mut StdRng) -> Vec<S::Value> {
                let len = rng.gen_range(self.size.clone());
                (0..len).map(|_| self.elem.sample(rng)).collect()
            }
        }
    }
}

/// FNV-1a over the test name: stable per-test seed base, independent of
/// link order and of other tests in the block.
fn name_seed(name: &str) -> u64 {
    let mut h: u64 = 0xcbf29ce484222325;
    for b in name.as_bytes() {
        h ^= *b as u64;
        h = h.wrapping_mul(0x100000001b3);
    }
    h
}

/// `PROPTEST_CASES` override, mirroring upstream's environment knob.
/// Upstream folds it into `Config::default()`; the shim applies it at run
/// time so suites with an explicit `with_cases` widen under CI too.
fn env_cases() -> Option<u32> {
    std::env::var("PROPTEST_CASES").ok()?.trim().parse().ok()
}

/// Driver behind the `proptest!` macro: runs `f` for each case with a
/// deterministic per-case generator, panicking on the first failure.
pub fn run_property(
    name: &str,
    config: &ProptestConfig,
    mut f: impl FnMut(&mut StdRng) -> TestCaseResult,
) {
    let base = name_seed(name);
    let cases = env_cases().unwrap_or(config.cases);
    for case in 0..cases {
        let mut rng = StdRng::seed_from_u64(base ^ (case as u64).wrapping_mul(0x9E3779B97F4A7C15));
        if let Err(e) = f(&mut rng) {
            panic!("property `{name}` failed at case {case}/{cases}: {e}");
        }
    }
}

/// Common imports, mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::{
        any, prop, prop_assert, prop_assert_eq, proptest, Arbitrary, ProptestConfig, Strategy,
        TestCaseError, TestCaseResult,
    };
}

/// Property-test entry macro. Accepts an optional
/// `#![proptest_config(...)]` header followed by `#[test] fn name(args in
/// strategies) { body }` items; each becomes a plain `#[test]` running
/// `cases` deterministic random cases.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items!(($cfg) $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items!((<$crate::ProptestConfig as ::core::default::Default>::default()) $($rest)*);
    };
}

/// Internal expansion of the items inside a `proptest!` block.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (($cfg:expr)) => {};
    (($cfg:expr)
        $(#[$meta:meta])*
        fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let __config = $cfg;
            $crate::run_property(stringify!($name), &__config, |__rng| {
                $(let $arg = $crate::Strategy::sample(&($strat), __rng);)+
                #[allow(clippy::redundant_closure_call)]
                let __out: $crate::TestCaseResult = (|| {
                    $body
                    Ok(())
                })();
                __out
            });
        }
        $crate::__proptest_items!(($cfg) $($rest)*);
    };
}

/// `assert!` counterpart that fails only the current case's closure.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        if !$cond {
            return Err($crate::TestCaseError::fail(format!(
                "assertion failed: {} ({}:{})", stringify!($cond), file!(), line!()
            )));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return Err($crate::TestCaseError::fail(format!(
                "assertion failed: {} — {} ({}:{})",
                stringify!($cond), format!($($fmt)+), file!(), line!()
            )));
        }
    };
}

/// `assert_eq!` counterpart that fails only the current case's closure.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (__l, __r) = (&$left, &$right);
        if !(*__l == *__r) {
            return Err($crate::TestCaseError::fail(format!(
                "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?} ({}:{})",
                stringify!($left), stringify!($right), __l, __r, file!(), line!()
            )));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (__l, __r) = (&$left, &$right);
        if !(*__l == *__r) {
            return Err($crate::TestCaseError::fail(format!(
                "assertion failed: `{} == {}` — {}\n  left: {:?}\n right: {:?} ({}:{})",
                stringify!($left), stringify!($right), format!($($fmt)+), __l, __r,
                file!(), line!()
            )));
        }
    }};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn deterministic_between_runs() {
        let cfg = ProptestConfig::with_cases(8);
        let mut first: Vec<u64> = Vec::new();
        crate::run_property("determinism_probe", &cfg, |rng| {
            first.push((0u64..1000).sample(rng));
            Ok(())
        });
        let mut second: Vec<u64> = Vec::new();
        crate::run_property("determinism_probe", &cfg, |rng| {
            second.push((0u64..1000).sample(rng));
            Ok(())
        });
        assert_eq!(first, second);
        assert_eq!(first.len(), 8);
    }

    #[test]
    #[should_panic(expected = "failed at case")]
    fn failing_property_panics_with_case_number() {
        crate::run_property("always_fails", &ProptestConfig::with_cases(4), |_| {
            Err(TestCaseError::fail("boom".into()))
        });
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_and_tuples_stay_in_bounds(
            a in 3u64..17,
            pair in (0usize..4, 10i32..20),
            flag in any::<bool>(),
        ) {
            prop_assert!((3..17).contains(&a));
            prop_assert!(pair.0 < 4);
            prop_assert!((10..20).contains(&pair.1));
            let _ = flag;
        }

        #[test]
        fn vec_strategy_respects_length(
            v in prop::collection::vec((0u64..5, 0u64..5), 2..9),
        ) {
            prop_assert!((2..9).contains(&v.len()));
            for (x, y) in &v {
                prop_assert!(*x < 5 && *y < 5);
            }
        }

        #[test]
        fn prop_map_applies(x in (1u32..10).prop_map(|v| v * 2)) {
            prop_assert!(x % 2 == 0);
            prop_assert!((2..20).contains(&x));
        }
    }

    // `any::<u64>()` hits the full domain: over a few cases we should see
    // values above 2^32 (probability of failure ~2^-32 per draw).
    proptest! {
        #[test]
        fn any_u64_is_full_width(x in any::<u64>()) {
            let _ = x;
        }
    }

    #[test]
    fn full_width_values_appear() {
        let mut high = false;
        crate::run_property("width_probe", &ProptestConfig::with_cases(16), |rng| {
            if any::<u64>().sample(rng) > u32::MAX as u64 {
                high = true;
            }
            Ok(())
        });
        assert!(high);
    }
}
