//! Offline stand-in for the `parking_lot` crate (0.12 API subset).
//!
//! Wraps `std::sync` primitives behind parking_lot's panic-free signatures:
//! `lock()`/`read()`/`write()` return guards directly, and a lock poisoned
//! by a panicking holder is recovered rather than propagated (parking_lot
//! has no poisoning at all, so recovery matches its semantics). Not a
//! performance shim — fairness and timed waits beyond `wait_for` are out of
//! scope.

use std::ops::{Deref, DerefMut};
use std::sync;
use std::time::Duration;

/// Mutual exclusion lock; `lock` never returns an error.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized> {
    inner: sync::Mutex<T>,
}

/// Guard for [`Mutex`]. Holds the inner std guard in an `Option` so
/// [`Condvar::wait`] can temporarily take ownership of it.
#[derive(Debug)]
pub struct MutexGuard<'a, T: ?Sized> {
    inner: Option<sync::MutexGuard<'a, T>>,
}

impl<T> Mutex<T> {
    /// Create a new mutex.
    pub const fn new(value: T) -> Self {
        Mutex {
            inner: sync::Mutex::new(value),
        }
    }

    /// Consume the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.inner
            .into_inner()
            .unwrap_or_else(sync::PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquire the lock, blocking; recovers from poisoning.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        let g = self
            .inner
            .lock()
            .unwrap_or_else(sync::PoisonError::into_inner);
        MutexGuard { inner: Some(g) }
    }

    /// Try to acquire without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(g) => Some(MutexGuard { inner: Some(g) }),
            Err(sync::TryLockError::Poisoned(p)) => Some(MutexGuard {
                inner: Some(p.into_inner()),
            }),
            Err(sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner
            .get_mut()
            .unwrap_or_else(sync::PoisonError::into_inner)
    }
}

impl<T: ?Sized> Deref for MutexGuard<'_, T> {
    type Target = T;

    fn deref(&self) -> &T {
        self.inner
            .as_ref()
            .expect("guard taken during condvar wait")
    }
}

impl<T: ?Sized> DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.inner
            .as_mut()
            .expect("guard taken during condvar wait")
    }
}

/// Reader–writer lock; `read`/`write` never return errors.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized> {
    inner: sync::RwLock<T>,
}

/// Shared-read guard for [`RwLock`].
pub struct RwLockReadGuard<'a, T: ?Sized> {
    inner: sync::RwLockReadGuard<'a, T>,
}

/// Exclusive-write guard for [`RwLock`].
pub struct RwLockWriteGuard<'a, T: ?Sized> {
    inner: sync::RwLockWriteGuard<'a, T>,
}

impl<T> RwLock<T> {
    /// Create a new reader–writer lock.
    pub const fn new(value: T) -> Self {
        RwLock {
            inner: sync::RwLock::new(value),
        }
    }

    /// Consume the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.inner
            .into_inner()
            .unwrap_or_else(sync::PoisonError::into_inner)
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquire shared read access.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        RwLockReadGuard {
            inner: self
                .inner
                .read()
                .unwrap_or_else(sync::PoisonError::into_inner),
        }
    }

    /// Acquire exclusive write access.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        RwLockWriteGuard {
            inner: self
                .inner
                .write()
                .unwrap_or_else(sync::PoisonError::into_inner),
        }
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner
            .get_mut()
            .unwrap_or_else(sync::PoisonError::into_inner)
    }
}

impl<T: ?Sized> Deref for RwLockReadGuard<'_, T> {
    type Target = T;

    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T: ?Sized> Deref for RwLockWriteGuard<'_, T> {
    type Target = T;

    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T: ?Sized> DerefMut for RwLockWriteGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.inner
    }
}

/// Condition variable with parking_lot's `&mut guard` wait signature.
#[derive(Debug, Default)]
pub struct Condvar {
    inner: sync::Condvar,
}

/// Result of [`Condvar::wait_for`].
#[derive(Debug, Clone, Copy)]
pub struct WaitTimeoutResult {
    timed_out: bool,
}

impl WaitTimeoutResult {
    /// Whether the wait ended by timeout rather than notification.
    pub fn timed_out(&self) -> bool {
        self.timed_out
    }
}

impl Condvar {
    /// Create a new condition variable.
    pub const fn new() -> Self {
        Condvar {
            inner: sync::Condvar::new(),
        }
    }

    /// Block until notified, releasing the mutex while waiting.
    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        let inner = guard.inner.take().expect("re-entrant condvar wait");
        let inner = self
            .inner
            .wait(inner)
            .unwrap_or_else(sync::PoisonError::into_inner);
        guard.inner = Some(inner);
    }

    /// Block until notified or `timeout` elapses.
    pub fn wait_for<T>(
        &self,
        guard: &mut MutexGuard<'_, T>,
        timeout: Duration,
    ) -> WaitTimeoutResult {
        let inner = guard.inner.take().expect("re-entrant condvar wait");
        let (inner, res) = match self.inner.wait_timeout(inner, timeout) {
            Ok((g, r)) => (g, r),
            Err(p) => {
                let (g, r) = p.into_inner();
                (g, r)
            }
        };
        guard.inner = Some(inner);
        WaitTimeoutResult {
            timed_out: res.timed_out(),
        }
    }

    /// Wake one waiter.
    pub fn notify_one(&self) {
        self.inner.notify_one();
    }

    /// Wake all waiters.
    pub fn notify_all(&self) {
        self.inner.notify_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use std::thread;

    #[test]
    fn mutex_basic_and_poison_recovery() {
        let m = Arc::new(Mutex::new(0u32));
        *m.lock() += 5;
        assert_eq!(*m.lock(), 5);

        // A panicking holder must not poison subsequent locks.
        let m2 = Arc::clone(&m);
        let _ = thread::spawn(move || {
            let _g = m2.lock();
            panic!("poison attempt");
        })
        .join();
        *m.lock() += 1;
        assert_eq!(*m.lock(), 6);
    }

    #[test]
    fn try_lock_contends() {
        let m = Mutex::new(1);
        let g = m.lock();
        assert!(m.try_lock().is_none());
        drop(g);
        assert!(m.try_lock().is_some());
    }

    #[test]
    fn rwlock_many_readers_one_writer() {
        let l = RwLock::new(vec![1, 2, 3]);
        {
            let r1 = l.read();
            let r2 = l.read();
            assert_eq!(r1.len() + r2.len(), 6);
        }
        l.write().push(4);
        assert_eq!(*l.read(), vec![1, 2, 3, 4]);
    }

    #[test]
    fn condvar_wakes_waiter() {
        let pair = Arc::new((Mutex::new(false), Condvar::new()));
        let pair2 = Arc::clone(&pair);
        let waiter = thread::spawn(move || {
            let (lock, cv) = &*pair2;
            let mut ready = lock.lock();
            while !*ready {
                cv.wait(&mut ready);
            }
            true
        });
        {
            let (lock, cv) = &*pair;
            *lock.lock() = true;
            cv.notify_one();
        }
        assert!(waiter.join().unwrap());
    }

    #[test]
    fn condvar_wait_for_times_out() {
        let m = Mutex::new(());
        let cv = Condvar::new();
        let mut g = m.lock();
        let res = cv.wait_for(&mut g, Duration::from_millis(10));
        assert!(res.timed_out());
    }
}
