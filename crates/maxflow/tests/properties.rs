//! Property-based cross-checks of the max-flow implementations.

use fqos_maxflow::{dinic, edmonds_karp, FlowNetwork, IncrementalRetrieval, RetrievalNetwork};
use proptest::prelude::*;

/// Build a random directed network from a proptest-generated edge list.
fn build(n: usize, edges: &[(usize, usize, u64)]) -> (FlowNetwork, FlowNetwork) {
    let a = {
        let mut g = FlowNetwork::new(n, 0, n - 1);
        for &(u, v, c) in edges {
            if u != v {
                g.add_edge(u % n, v % n, c % 32);
            }
        }
        g
    };
    (a.clone(), a)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn dinic_equals_edmonds_karp(
        n in 2usize..12,
        edges in prop::collection::vec((0usize..12, 0usize..12, 0u64..32), 0..40),
    ) {
        let (mut g1, mut g2) = build(n, &edges);
        let f1 = dinic::max_flow(&mut g1);
        let f2 = edmonds_karp::max_flow(&mut g2);
        prop_assert_eq!(f1, f2);
        prop_assert!(g1.check_conservation());
        prop_assert!(g2.check_conservation());
        prop_assert_eq!(g1.total_flow(), f1);
    }

    #[test]
    fn schedule_is_feasible_and_minimal(
        devices in 2usize..10,
        reqs in prop::collection::vec(prop::collection::vec(0usize..10, 1..4), 1..25),
    ) {
        let reqs: Vec<Vec<usize>> = reqs
            .into_iter()
            .map(|r| {
                let mut r: Vec<usize> = r.into_iter().map(|d| d % devices).collect();
                r.sort_unstable();
                r.dedup();
                r
            })
            .collect();
        let refs: Vec<&[usize]> = reqs.iter().map(std::vec::Vec::as_slice).collect();
        let net = RetrievalNetwork::new(devices);
        let s = net.optimal_schedule(&refs);

        // Every assignment uses a true replica.
        for (i, r) in reqs.iter().enumerate() {
            prop_assert!(r.contains(&s.assignment[i]));
        }
        // The schedule respects its own access bound.
        let loads = s.device_loads(devices);
        prop_assert!(loads.iter().all(|&l| l <= s.accesses));
        // Minimality: one fewer access must be infeasible.
        if s.accesses > reqs.len().div_ceil(devices) {
            prop_assert!(net.feasible(&refs, s.accesses - 1).is_none());
        }
        // Never better than the information-theoretic lower bound.
        prop_assert!(s.accesses >= reqs.len().div_ceil(devices));
    }

    #[test]
    fn incremental_agrees_with_batch(
        devices in 2usize..8,
        m in 1usize..4,
        reqs in prop::collection::vec(prop::collection::vec(0usize..8, 1..4), 1..20),
    ) {
        let reqs: Vec<Vec<usize>> = reqs
            .into_iter()
            .map(|r| {
                let mut r: Vec<usize> = r.into_iter().map(|d| d % devices).collect();
                r.sort_unstable();
                r.dedup();
                r
            })
            .collect();
        let net = RetrievalNetwork::new(devices);
        let mut inc = IncrementalRetrieval::new(devices, m);
        let mut admitted: Vec<Vec<usize>> = Vec::new();
        for r in &reqs {
            let accepted = inc.try_add(r);
            if accepted {
                admitted.push(r.clone());
            }
            // Incremental acceptance must equal batch feasibility of the
            // would-be admitted prefix.
            let mut probe = admitted.clone();
            if !accepted {
                probe.push(r.clone());
            }
            let probe_refs: Vec<&[usize]> = probe.iter().map(std::vec::Vec::as_slice).collect();
            let batch_ok = net.feasible(&probe_refs, m).is_some();
            prop_assert_eq!(accepted, batch_ok || accepted,
                "incremental rejected a feasible set");
            if !accepted {
                prop_assert!(!batch_ok, "incremental rejected a batch-feasible request");
            }
        }
        // The final incremental schedule is within budget.
        let loads = inc.device_loads();
        prop_assert!(loads.iter().all(|&l| l <= m));
    }
}
