//! Push–relabel max-flow (Goldberg–Tarjan) with the FIFO active-vertex rule
//! and the global gap heuristic.
//!
//! `O(V³)` worst case but typically the fastest exact algorithm on dense
//! networks; included as a third independent implementation for the
//! cross-check suite and for the retrieval-network benchmarks.

use crate::graph::FlowNetwork;
use std::collections::VecDeque;

/// Compute the maximum flow of `net` with push–relabel.
///
/// Note: unlike the augmenting-path algorithms, intermediate states hold
/// *pre*-flow; only the returned total (and the final edge flows) are
/// meaningful.
pub fn max_flow(net: &mut FlowNetwork) -> u64 {
    let n = net.num_vertices();
    let (source, sink) = (net.source(), net.sink());
    let mut height = vec![0usize; n];
    let mut excess = vec![0i128; n];
    let mut active: VecDeque<usize> = VecDeque::new();
    let mut in_queue = vec![false; n];

    height[source] = n;
    // Saturate all source edges.
    let source_edges: Vec<usize> = net.adjacent(source).to_vec();
    for e in source_edges {
        if e % 2 == 0 {
            let cap = net.capacity(e);
            if cap > 0 {
                let to = net.edge_to(e);
                net.push(e, cap);
                excess[to] += cap as i128;
                excess[source] -= cap as i128;
                if to != sink && to != source && !in_queue[to] {
                    active.push_back(to);
                    in_queue[to] = true;
                }
            }
        }
    }

    // Height histogram for the gap heuristic.
    let mut height_count = vec![0usize; 2 * n + 1];
    for &h in &height {
        height_count[h] += 1;
    }

    while let Some(v) = active.pop_front() {
        in_queue[v] = false;
        // Discharge v.
        while excess[v] > 0 {
            let mut pushed = false;
            let edges: Vec<usize> = net.adjacent(v).to_vec();
            for e in edges {
                if excess[v] == 0 {
                    break;
                }
                let cap = net.capacity(e);
                let to = net.edge_to(e);
                if cap > 0 && height[v] == height[to] + 1 {
                    let amount = (excess[v].min(cap as i128)) as u64;
                    net.push(e, amount);
                    excess[v] -= amount as i128;
                    excess[to] += amount as i128;
                    pushed = true;
                    if to != source && to != sink && !in_queue[to] {
                        active.push_back(to);
                        in_queue[to] = true;
                    }
                }
            }
            if excess[v] == 0 {
                break;
            }
            if !pushed {
                // Relabel: one above the lowest admissible neighbour.
                let old = height[v];
                let mut min_h = usize::MAX;
                for &e in net.adjacent(v) {
                    if net.capacity(e) > 0 {
                        min_h = min_h.min(height[net.edge_to(e)]);
                    }
                }
                if min_h == usize::MAX {
                    break; // isolated: excess is stranded (returns to source)
                }
                let new = min_h + 1;
                height_count[old] -= 1;
                height[v] = new.min(2 * n);
                height_count[height[v]] += 1;
                // Gap heuristic: if no vertex remains at `old`, every vertex
                // above it (below n) can never reach the sink.
                if height_count[old] == 0 && old < n {
                    for u in 0..n {
                        if u != source && height[u] > old && height[u] < n {
                            height_count[height[u]] -= 1;
                            height[u] = n + 1;
                            height_count[height[u]] += 1;
                        }
                    }
                }
                if height[v] >= 2 * n {
                    break;
                }
            }
        }
    }

    excess[sink] as u64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{dinic, edmonds_karp};

    fn clrs() -> FlowNetwork {
        let mut g = FlowNetwork::new(6, 0, 5);
        g.add_edge(0, 1, 16);
        g.add_edge(0, 2, 13);
        g.add_edge(1, 2, 10);
        g.add_edge(2, 1, 4);
        g.add_edge(1, 3, 12);
        g.add_edge(3, 2, 9);
        g.add_edge(2, 4, 14);
        g.add_edge(4, 3, 7);
        g.add_edge(3, 5, 20);
        g.add_edge(4, 5, 4);
        g
    }

    #[test]
    fn clrs_network() {
        let mut g = clrs();
        assert_eq!(max_flow(&mut g), 23);
    }

    #[test]
    fn single_edge_and_disconnected() {
        let mut g = FlowNetwork::new(2, 0, 1);
        g.add_edge(0, 1, 9);
        assert_eq!(max_flow(&mut g), 9);

        let mut g = FlowNetwork::new(3, 0, 2);
        g.add_edge(0, 1, 5);
        assert_eq!(max_flow(&mut g), 0);
    }

    #[test]
    fn agrees_with_other_algorithms_on_random_graphs() {
        let mut state = 123u64;
        let mut next = || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            (state >> 33) as usize
        };
        for trial in 0..300 {
            let n = 3 + next() % 9;
            let m = next() % 30;
            let mut edges = Vec::new();
            for _ in 0..m {
                let u = next() % n;
                let v = next() % n;
                if u != v {
                    edges.push((u, v, (next() % 20) as u64));
                }
            }
            let build = || {
                let mut g = FlowNetwork::new(n, 0, n - 1);
                for &(u, v, c) in &edges {
                    g.add_edge(u, v, c);
                }
                g
            };
            let (mut a, mut b, mut c) = (build(), build(), build());
            let fa = dinic::max_flow(&mut a);
            let fb = edmonds_karp::max_flow(&mut b);
            let fc = max_flow(&mut c);
            assert_eq!(fa, fb, "trial {trial}");
            assert_eq!(fa, fc, "trial {trial}: push-relabel disagrees");
        }
    }

    #[test]
    fn bipartite_unit_network() {
        // 4 blocks × 3 devices, capacity 2 per device.
        let mut g = FlowNetwork::new(9, 0, 8);
        for b in 0..4 {
            g.add_edge(0, 1 + b, 1);
            g.add_edge(1 + b, 5 + b % 3, 1);
            g.add_edge(1 + b, 5 + (b + 1) % 3, 1);
        }
        for d in 0..3 {
            g.add_edge(5 + d, 8, 2);
        }
        assert_eq!(max_flow(&mut g), 4);
    }
}
