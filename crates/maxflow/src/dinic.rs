//! Dinic's max-flow algorithm: BFS level graph + DFS blocking flow.
//!
//! On the unit-capacity bipartite retrieval networks used by the QoS
//! framework this runs in `O(E·√V)`, comfortably within the paper's `O(b³)`
//! budget for a request of `b` blocks.

use crate::graph::FlowNetwork;

/// Compute the maximum flow of `net` with Dinic's algorithm. The network
/// retains the resulting flow (inspect it with [`FlowNetwork::flow`]).
pub fn max_flow(net: &mut FlowNetwork) -> u64 {
    let n = net.num_vertices();
    let mut total = 0u64;
    let mut level = vec![-1i32; n];
    let mut iter = vec![0usize; n];
    let mut queue = Vec::with_capacity(n);

    loop {
        // BFS: build the level graph on residual edges.
        level.iter_mut().for_each(|l| *l = -1);
        queue.clear();
        queue.push(net.source());
        level[net.source()] = 0;
        let mut head = 0;
        while head < queue.len() {
            let v = queue[head];
            head += 1;
            for &e in net.adjacent(v) {
                let to = net.edge_to(e);
                if net.capacity(e) > 0 && level[to] < 0 {
                    level[to] = level[v] + 1;
                    queue.push(to);
                }
            }
        }
        if level[net.sink()] < 0 {
            return total;
        }

        // DFS blocking flow with the current-arc optimisation.
        iter.iter_mut().for_each(|i| *i = 0);
        loop {
            let pushed = dfs(net, net.source(), u64::MAX, &level, &mut iter);
            if pushed == 0 {
                break;
            }
            total += pushed;
        }
    }
}

fn dfs(net: &mut FlowNetwork, v: usize, limit: u64, level: &[i32], iter: &mut [usize]) -> u64 {
    if v == net.sink() {
        return limit;
    }
    while iter[v] < net.adjacent(v).len() {
        let e = net.adjacent(v)[iter[v]];
        let to = net.edge_to(e);
        if net.capacity(e) > 0 && level[to] == level[v] + 1 {
            let d = dfs(net, to, limit.min(net.capacity(e)), level, iter);
            if d > 0 {
                net.push(e, d);
                return d;
            }
        }
        iter[v] += 1;
    }
    0
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_edge() {
        let mut g = FlowNetwork::new(2, 0, 1);
        g.add_edge(0, 1, 7);
        assert_eq!(max_flow(&mut g), 7);
        assert!(g.check_conservation());
    }

    #[test]
    fn diamond() {
        // 0 → {1,2} → 3, all capacity 1 → flow 2.
        let mut g = FlowNetwork::new(4, 0, 3);
        g.add_edge(0, 1, 1);
        g.add_edge(0, 2, 1);
        g.add_edge(1, 3, 1);
        g.add_edge(2, 3, 1);
        assert_eq!(max_flow(&mut g), 2);
    }

    #[test]
    fn classic_clrs_network() {
        // CLRS Fig. 26.1: max flow 23.
        let mut g = FlowNetwork::new(6, 0, 5);
        g.add_edge(0, 1, 16);
        g.add_edge(0, 2, 13);
        g.add_edge(1, 2, 10);
        g.add_edge(2, 1, 4);
        g.add_edge(1, 3, 12);
        g.add_edge(3, 2, 9);
        g.add_edge(2, 4, 14);
        g.add_edge(4, 3, 7);
        g.add_edge(3, 5, 20);
        g.add_edge(4, 5, 4);
        assert_eq!(max_flow(&mut g), 23);
        assert!(g.check_conservation());
        assert_eq!(g.total_flow(), 23);
    }

    #[test]
    fn needs_residual_push_back() {
        // A network where the greedy path must be undone via residuals.
        let mut g = FlowNetwork::new(4, 0, 3);
        g.add_edge(0, 1, 1);
        g.add_edge(0, 2, 1);
        g.add_edge(1, 2, 1);
        g.add_edge(1, 3, 1);
        g.add_edge(2, 3, 1);
        assert_eq!(max_flow(&mut g), 2);
    }

    #[test]
    fn disconnected_sink() {
        let mut g = FlowNetwork::new(3, 0, 2);
        g.add_edge(0, 1, 5);
        assert_eq!(max_flow(&mut g), 0);
    }
}
