//! Max-flow algorithms and the optimal-retrieval network of the QoS
//! framework.
//!
//! When the design-theoretic retrieval heuristic is non-optimal, the paper
//! (§III-C, and its refs [14,15]) finds the optimal retrieval schedule by
//! solving a maximum-flow problem over the bipartite graph
//! `source → blocks → devices → sink`, where each device edge has capacity
//! `M` (the number of accesses). A request set of `b` blocks is retrievable
//! in `M` accesses iff the max flow equals `b`.
//!
//! # Contents
//!
//! * [`graph::FlowNetwork`] — residual-graph representation.
//! * [`dinic`] — Dinic's algorithm, `O(E·√V)` on unit-capacity bipartite
//!   networks (the production path).
//! * [`edmonds_karp`] — Edmonds–Karp BFS augmentation (cross-check baseline).
//! * [`push_relabel`] — Goldberg–Tarjan push–relabel with the gap
//!   heuristic (third independent implementation, dense-network option).
//! * [`retrieval`] — the block→device retrieval network, feasibility test,
//!   minimal-`M` search and schedule extraction.
//! * [`incremental`] — one-request-at-a-time augmentation for online use.
//!
//! # Example
//!
//! ```
//! use fqos_maxflow::RetrievalNetwork;
//!
//! // Three blocks, each replicated on 2 of 3 devices.
//! let requests: Vec<&[usize]> = vec![&[0, 1], &[1, 2], &[2, 0]];
//! let schedule = RetrievalNetwork::new(3).optimal_schedule(&requests);
//! assert_eq!(schedule.accesses, 1); // one access: a perfect matching exists
//! ```

pub mod dinic;
pub mod edmonds_karp;
pub mod graph;
pub mod incremental;
pub mod push_relabel;
pub mod retrieval;

pub use graph::FlowNetwork;
pub use incremental::IncrementalRetrieval;
pub use retrieval::{RetrievalNetwork, RetrievalSchedule};
