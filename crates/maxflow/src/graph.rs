//! Residual flow-network representation shared by all max-flow algorithms.

/// A directed edge with residual capacity. Edges are stored in pairs: edge
/// `2i` is the forward edge and `2i + 1` its residual twin, so the reverse of
/// edge `e` is `e ^ 1`.
#[derive(Debug, Clone, Copy)]
pub struct Edge {
    /// Head vertex.
    pub to: usize,
    /// Remaining capacity.
    pub cap: u64,
}

/// A flow network over vertices `0..n` with a designated source and sink.
#[derive(Debug, Clone)]
pub struct FlowNetwork {
    edges: Vec<Edge>,
    /// `adj[v]` lists indices into `edges` of the edges leaving `v`
    /// (including residual twins of incoming edges).
    adj: Vec<Vec<usize>>,
    source: usize,
    sink: usize,
}

impl FlowNetwork {
    /// Create an empty network with `n` vertices.
    pub fn new(n: usize, source: usize, sink: usize) -> Self {
        assert!(source < n && sink < n && source != sink);
        FlowNetwork {
            edges: Vec::new(),
            adj: vec![Vec::new(); n],
            source,
            sink,
        }
    }

    /// Number of vertices.
    pub fn num_vertices(&self) -> usize {
        self.adj.len()
    }

    /// Number of forward edges.
    pub fn num_edges(&self) -> usize {
        self.edges.len() / 2
    }

    /// Source vertex.
    pub fn source(&self) -> usize {
        self.source
    }

    /// Sink vertex.
    pub fn sink(&self) -> usize {
        self.sink
    }

    /// Add a directed edge `from → to` with the given capacity. Returns the
    /// edge id (always even); `id ^ 1` is the residual twin.
    pub fn add_edge(&mut self, from: usize, to: usize, cap: u64) -> usize {
        let id = self.edges.len();
        self.edges.push(Edge { to, cap });
        self.edges.push(Edge { to: from, cap: 0 });
        self.adj[from].push(id);
        self.adj[to].push(id + 1);
        id
    }

    /// Add a vertex, returning its id.
    pub fn add_vertex(&mut self) -> usize {
        self.adj.push(Vec::new());
        self.adj.len() - 1
    }

    /// Residual capacity of an edge (forward or twin).
    pub fn capacity(&self, edge: usize) -> u64 {
        self.edges[edge].cap
    }

    /// Flow currently pushed through a *forward* edge id: the residual
    /// capacity accumulated on its twin.
    pub fn flow(&self, edge: usize) -> u64 {
        debug_assert_eq!(edge % 2, 0, "flow() takes forward edge ids");
        self.edges[edge ^ 1].cap
    }

    /// Head of an edge.
    pub fn edge_to(&self, edge: usize) -> usize {
        self.edges[edge].to
    }

    /// Edge ids leaving `v`.
    pub fn adjacent(&self, v: usize) -> &[usize] {
        &self.adj[v]
    }

    /// Push `amount` through `edge`, updating the residual twin.
    pub(crate) fn push(&mut self, edge: usize, amount: u64) {
        debug_assert!(self.edges[edge].cap >= amount);
        self.edges[edge].cap -= amount;
        self.edges[edge ^ 1].cap += amount;
    }

    /// Set the capacity of a forward edge, preserving already-pushed flow.
    /// Panics if the new capacity is below the current flow.
    pub fn set_capacity(&mut self, edge: usize, cap: u64) {
        debug_assert_eq!(edge % 2, 0);
        let flow = self.flow(edge);
        assert!(cap >= flow, "cannot set capacity below current flow");
        self.edges[edge].cap = cap - flow;
    }

    /// Total flow out of the source (equals flow into the sink by
    /// conservation).
    pub fn total_flow(&self) -> u64 {
        self.adj[self.source]
            .iter()
            .filter(|&&e| e % 2 == 0)
            .map(|&e| self.flow(e))
            .sum()
    }

    /// Verify flow conservation at every vertex except source and sink.
    /// Used by tests.
    pub fn check_conservation(&self) -> bool {
        let n = self.num_vertices();
        let mut balance = vec![0i64; n];
        for e in (0..self.edges.len()).step_by(2) {
            let from = self.edges[e ^ 1].to;
            let to = self.edges[e].to;
            let f = self.flow(e) as i64;
            balance[from] -= f;
            balance[to] += f;
        }
        (0..n).all(|v| v == self.source || v == self.sink || balance[v] == 0)
    }

    /// Remove all flow, restoring original capacities.
    pub fn reset_flow(&mut self) {
        for e in (0..self.edges.len()).step_by(2) {
            let f = self.edges[e ^ 1].cap;
            self.edges[e].cap += f;
            self.edges[e ^ 1].cap = 0;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn edge_pairing_invariant() {
        let mut g = FlowNetwork::new(3, 0, 2);
        let e = g.add_edge(0, 1, 5);
        assert_eq!(e, 0);
        assert_eq!(g.edge_to(e), 1);
        assert_eq!(g.edge_to(e ^ 1), 0);
        assert_eq!(g.capacity(e), 5);
        assert_eq!(g.capacity(e ^ 1), 0);
    }

    #[test]
    fn push_moves_capacity_to_twin() {
        let mut g = FlowNetwork::new(2, 0, 1);
        let e = g.add_edge(0, 1, 5);
        g.push(e, 3);
        assert_eq!(g.capacity(e), 2);
        assert_eq!(g.flow(e), 3);
    }

    #[test]
    fn reset_flow_restores_capacity() {
        let mut g = FlowNetwork::new(2, 0, 1);
        let e = g.add_edge(0, 1, 5);
        g.push(e, 5);
        g.reset_flow();
        assert_eq!(g.capacity(e), 5);
        assert_eq!(g.flow(e), 0);
    }

    #[test]
    fn set_capacity_preserves_flow() {
        let mut g = FlowNetwork::new(2, 0, 1);
        let e = g.add_edge(0, 1, 5);
        g.push(e, 2);
        g.set_capacity(e, 10);
        assert_eq!(g.flow(e), 2);
        assert_eq!(g.capacity(e), 8);
    }

    #[test]
    #[should_panic]
    fn set_capacity_below_flow_panics() {
        let mut g = FlowNetwork::new(2, 0, 1);
        let e = g.add_edge(0, 1, 5);
        g.push(e, 4);
        g.set_capacity(e, 3);
    }
}
