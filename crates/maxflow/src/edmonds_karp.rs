//! Edmonds–Karp max-flow: repeated BFS shortest augmenting paths.
//!
//! Slower than Dinic (`O(V·E²)`) but independent enough to serve as a
//! cross-check oracle in property tests.

use crate::graph::FlowNetwork;

/// Compute the maximum flow of `net` with Edmonds–Karp.
pub fn max_flow(net: &mut FlowNetwork) -> u64 {
    let n = net.num_vertices();
    let mut total = 0u64;
    // parent_edge[v] = edge used to reach v in the BFS tree.
    let mut parent_edge = vec![usize::MAX; n];

    loop {
        parent_edge.iter_mut().for_each(|p| *p = usize::MAX);
        let mut queue = std::collections::VecDeque::new();
        queue.push_back(net.source());
        let mut reached = false;
        'bfs: while let Some(v) = queue.pop_front() {
            for &e in net.adjacent(v) {
                let to = net.edge_to(e);
                if net.capacity(e) > 0 && parent_edge[to] == usize::MAX && to != net.source() {
                    parent_edge[to] = e;
                    if to == net.sink() {
                        reached = true;
                        break 'bfs;
                    }
                    queue.push_back(to);
                }
            }
        }
        if !reached {
            return total;
        }

        // Find bottleneck along the path, then push it.
        let mut bottleneck = u64::MAX;
        let mut v = net.sink();
        while v != net.source() {
            let e = parent_edge[v];
            bottleneck = bottleneck.min(net.capacity(e));
            v = net.edge_to(e ^ 1);
        }
        let mut v = net.sink();
        while v != net.source() {
            let e = parent_edge[v];
            net.push(e, bottleneck);
            v = net.edge_to(e ^ 1);
        }
        total += bottleneck;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clrs_network() {
        let mut g = FlowNetwork::new(6, 0, 5);
        g.add_edge(0, 1, 16);
        g.add_edge(0, 2, 13);
        g.add_edge(1, 2, 10);
        g.add_edge(2, 1, 4);
        g.add_edge(1, 3, 12);
        g.add_edge(3, 2, 9);
        g.add_edge(2, 4, 14);
        g.add_edge(4, 3, 7);
        g.add_edge(3, 5, 20);
        g.add_edge(4, 5, 4);
        assert_eq!(max_flow(&mut g), 23);
        assert!(g.check_conservation());
    }

    #[test]
    fn zero_capacity_edges_carry_nothing() {
        let mut g = FlowNetwork::new(3, 0, 2);
        g.add_edge(0, 1, 0);
        g.add_edge(1, 2, 10);
        assert_eq!(max_flow(&mut g), 0);
    }
}
