//! Incremental retrieval scheduling: add requests one at a time and keep the
//! schedule optimal, re-augmenting instead of re-solving (the "integrated
//! maximum flow" idea of the paper's ref [15]).
//!
//! Used by the online retrieval path and the statistical admission
//! controller, which probe "would adding this request keep the interval
//! retrievable in `M` accesses?" many times per interval.

use crate::graph::FlowNetwork;
use fqos_designs::DeviceId;

/// Incrementally maintained retrieval network with a fixed access budget.
#[derive(Debug, Clone)]
pub struct IncrementalRetrieval {
    net: FlowNetwork,
    devices: usize,
    accesses: usize,
    /// Edge id of `device_d → sink` for capacity updates.
    device_edges: Vec<usize>,
    /// Source-edge id per admitted request, to recover assignments.
    request_edges: Vec<usize>,
    /// Replica tuples of admitted requests.
    requests: Vec<Vec<DeviceId>>,
}

impl IncrementalRetrieval {
    /// Create an empty scheduler over `devices` devices with a per-device
    /// budget of `accesses`.
    pub fn new(devices: usize, accesses: usize) -> Self {
        assert!(devices > 0);
        // Layout: 0 = source, 1 = sink, 2..2+N = devices; blocks appended.
        let mut net = FlowNetwork::new(2 + devices, 0, 1);
        let mut device_edges = Vec::with_capacity(devices);
        for d in 0..devices {
            device_edges.push(net.add_edge(2 + d, 1, accesses as u64));
        }
        IncrementalRetrieval {
            net,
            devices,
            accesses,
            device_edges,
            request_edges: Vec::new(),
            requests: Vec::new(),
        }
    }

    /// Number of admitted requests.
    pub fn len(&self) -> usize {
        self.requests.len()
    }

    /// True if no request has been admitted.
    pub fn is_empty(&self) -> bool {
        self.requests.is_empty()
    }

    /// Current per-device access budget `M`.
    pub fn accesses(&self) -> usize {
        self.accesses
    }

    /// Try to admit one more request. Returns `true` (and keeps the request)
    /// if all admitted requests remain schedulable within `M` accesses;
    /// returns `false` and leaves the state untouched otherwise.
    pub fn try_add(&mut self, replicas: &[DeviceId]) -> bool {
        let block = self.net.add_vertex();
        let source_edge = self.net.add_edge(0, block, 1);
        for &d in replicas {
            debug_assert!(d < self.devices);
            self.net.add_edge(block, 2 + d, 1);
        }
        // One augmenting path suffices: the previous flow saturated all
        // earlier source edges, so max-flow can grow by at most 1.
        let pushed = crate::dinic::max_flow(&mut self.net);
        debug_assert!(pushed <= 1);
        if pushed == 1 {
            self.request_edges.push(source_edge);
            self.requests.push(replicas.to_vec());
            true
        } else {
            // Zero the new source edge so the dead vertex can never carry
            // flow; the vertex itself stays as a tombstone.
            self.net.set_capacity(source_edge, 0);
            false
        }
    }

    /// Raise the access budget to `accesses` (no-op if not larger).
    pub fn grow_accesses(&mut self, accesses: usize) {
        if accesses <= self.accesses {
            return;
        }
        self.accesses = accesses;
        for &e in &self.device_edges {
            let flow = self.net.flow(e);
            self.net.set_capacity(e, (accesses as u64).max(flow));
        }
    }

    /// Current device assignment of every admitted request, in admission
    /// order.
    pub fn assignments(&self) -> Vec<DeviceId> {
        let mut out = Vec::with_capacity(self.requests.len());
        for (&src_edge, replicas) in self.request_edges.iter().zip(&self.requests) {
            let block = self.net.edge_to(src_edge);
            let mut assigned = None;
            for &e in self.net.adjacent(block) {
                if e % 2 == 0 && e != src_edge && self.net.flow(e) == 1 {
                    assigned = Some(self.net.edge_to(e) - 2);
                    break;
                }
            }
            let d = assigned.expect("admitted request must be assigned");
            debug_assert!(replicas.contains(&d));
            out.push(d);
        }
        out
    }

    /// Per-device load of the current schedule.
    pub fn device_loads(&self) -> Vec<usize> {
        let mut loads = vec![0usize; self.devices];
        for d in self.assignments() {
            loads[d] += 1;
        }
        loads
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn admits_up_to_capacity() {
        // 3 devices, 1 access: any 3 disjoint unit requests fit.
        let mut inc = IncrementalRetrieval::new(3, 1);
        assert!(inc.try_add(&[0]));
        assert!(inc.try_add(&[1]));
        assert!(inc.try_add(&[2]));
        assert!(!inc.try_add(&[0]));
        assert_eq!(inc.len(), 3);
    }

    #[test]
    fn rejection_leaves_schedule_intact() {
        let mut inc = IncrementalRetrieval::new(2, 1);
        assert!(inc.try_add(&[0, 1]));
        assert!(inc.try_add(&[0, 1]));
        assert!(!inc.try_add(&[0, 1]));
        let loads = inc.device_loads();
        assert_eq!(loads, vec![1, 1]);
    }

    #[test]
    fn augmenting_reroutes_earlier_requests() {
        // Request A can use {0,1}; request B only {0}. Greedy might put A on
        // 0; adding B must re-route A to 1 through the residual graph.
        let mut inc = IncrementalRetrieval::new(2, 1);
        assert!(inc.try_add(&[0, 1]));
        assert!(inc.try_add(&[0]));
        let assign = inc.assignments();
        assert_eq!(assign[1], 0);
        assert_eq!(assign[0], 1);
    }

    #[test]
    fn grow_accesses_unlocks_rejected_load() {
        let mut inc = IncrementalRetrieval::new(2, 1);
        assert!(inc.try_add(&[0]));
        assert!(inc.try_add(&[0, 1]));
        assert!(!inc.try_add(&[0]));
        inc.grow_accesses(2);
        assert!(inc.try_add(&[0]));
        assert_eq!(inc.len(), 3);
        let loads = inc.device_loads();
        assert_eq!(loads.iter().sum::<usize>(), 3);
        assert!(loads.iter().all(|&l| l <= 2));
    }

    #[test]
    fn matches_batch_scheduler() {
        use crate::retrieval::RetrievalNetwork;
        // Same request set through both paths must agree on feasibility.
        let reqs: Vec<Vec<usize>> = vec![
            vec![0, 1, 2],
            vec![1, 2, 0],
            vec![2, 0, 1],
            vec![3, 8, 1],
            vec![4, 8, 0],
        ];
        let refs: Vec<&[usize]> = reqs.iter().map(std::vec::Vec::as_slice).collect();
        let batch = RetrievalNetwork::new(9).feasible(&refs, 1);
        assert!(batch.is_some());
        let mut inc = IncrementalRetrieval::new(9, 1);
        for r in &reqs {
            assert!(inc.try_add(r));
        }
    }
}
