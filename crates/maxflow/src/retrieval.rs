//! The optimal-retrieval network: is a set of replicated block requests
//! retrievable in `M` parallel accesses, and from which replica should each
//! block be fetched?
//!
//! Model (paper §III-C, refs [14,15]): `source → block_i → device_d → sink`
//! with unit capacity on the source and replica edges and capacity `M` on
//! each device→sink edge. The request set is retrievable in `M` accesses iff
//! the maximum flow saturates all `b` source edges.

use crate::dinic;
use crate::graph::FlowNetwork;

/// Device index type (re-exported from the designs crate for convenience).
pub use fqos_designs::DeviceId;

/// An optimal retrieval schedule: how many parallel accesses are required and
/// which device serves each request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RetrievalSchedule {
    /// Number of parallel accesses (`max` per-device load).
    pub accesses: usize,
    /// `assignment[i]` = device that serves request `i`.
    pub assignment: Vec<DeviceId>,
}

impl RetrievalSchedule {
    /// Per-device load implied by the assignment.
    pub fn device_loads(&self, devices: usize) -> Vec<usize> {
        let mut loads = vec![0usize; devices];
        for &d in &self.assignment {
            loads[d] += 1;
        }
        loads
    }
}

/// Exact retrieval scheduling for a fixed device count.
#[derive(Debug, Clone, Copy)]
pub struct RetrievalNetwork {
    devices: usize,
}

impl RetrievalNetwork {
    /// Create a scheduler for an array of `devices` flash modules.
    pub fn new(devices: usize) -> Self {
        assert!(devices > 0);
        RetrievalNetwork { devices }
    }

    /// Number of devices.
    pub fn devices(&self) -> usize {
        self.devices
    }

    /// Build the flow network for `requests` (each a replica device tuple)
    /// with per-device capacity `m`. Returns `(network, device_edges)` where
    /// `device_edges[d]` is the id of the `device_d → sink` edge.
    fn build(&self, requests: &[&[DeviceId]], m: usize) -> (FlowNetwork, Vec<usize>) {
        let b = requests.len();
        // Layout: 0 = source, 1..=b = blocks, b+1..=b+N = devices, b+N+1 = sink.
        let sink = b + self.devices + 1;
        let mut net = FlowNetwork::new(sink + 1, 0, sink);
        for (i, replicas) in requests.iter().enumerate() {
            net.add_edge(0, 1 + i, 1);
            for &d in replicas.iter() {
                debug_assert!(d < self.devices, "replica device out of range");
                net.add_edge(1 + i, 1 + b + d, 1);
            }
        }
        let mut device_edges = Vec::with_capacity(self.devices);
        for d in 0..self.devices {
            device_edges.push(net.add_edge(1 + b + d, sink, m as u64));
        }
        (net, device_edges)
    }

    /// Extract the per-request device assignment from a saturated network.
    fn extract(&self, net: &FlowNetwork, requests: &[&[DeviceId]]) -> Vec<DeviceId> {
        let b = requests.len();
        let mut assignment = vec![0usize; b];
        for (i, slot) in assignment.iter_mut().enumerate() {
            let block = 1 + i;
            let mut assigned = None;
            for &e in net.adjacent(block) {
                // Forward replica edges leave the block vertex; flow 1 marks
                // the chosen replica.
                if e % 2 == 0 && net.flow(e) == 1 {
                    assigned = Some(net.edge_to(e) - 1 - b);
                    break;
                }
            }
            *slot = assigned.expect("saturated network must assign every block");
        }
        assignment
    }

    /// Test whether `requests` can be retrieved in `m` accesses; on success
    /// returns the device assignment.
    pub fn feasible(&self, requests: &[&[DeviceId]], m: usize) -> Option<Vec<DeviceId>> {
        if requests.is_empty() {
            return Some(Vec::new());
        }
        let (mut net, _) = self.build(requests, m);
        let flow = dinic::max_flow(&mut net);
        if flow == requests.len() as u64 {
            Some(self.extract(&net, requests))
        } else {
            None
        }
    }

    /// Find the optimal (minimal-access) retrieval schedule.
    ///
    /// Starts at the lower bound `⌈b/N⌉` and raises the device capacity one
    /// access at a time, resuming the flow computation on the residual
    /// network rather than recomputing from scratch.
    pub fn optimal_schedule(&self, requests: &[&[DeviceId]]) -> RetrievalSchedule {
        let b = requests.len();
        if b == 0 {
            return RetrievalSchedule {
                accesses: 0,
                assignment: Vec::new(),
            };
        }
        let mut m = b.div_ceil(self.devices);
        let (mut net, device_edges) = self.build(requests, m);
        let mut flow = dinic::max_flow(&mut net);
        while flow < b as u64 {
            m += 1;
            for &e in &device_edges {
                net.set_capacity(e, m as u64);
            }
            flow += dinic::max_flow(&mut net);
            // Every block with at least one replica is routable once m >= b,
            // so this loop always terminates.
            debug_assert!(m <= b);
        }
        RetrievalSchedule {
            accesses: m,
            assignment: self.extract(&net, requests),
        }
    }

    /// True iff the request set is retrievable in the optimal `⌈b/N⌉`
    /// accesses — the test used by the Fig. 4 sampler and the statistical
    /// admission controller.
    pub fn is_optimal_retrievable(&self, requests: &[&[DeviceId]]) -> bool {
        let lb = requests.len().div_ceil(self.devices);
        self.feasible(requests, lb).is_some()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn nets() -> RetrievalNetwork {
        RetrievalNetwork::new(9)
    }

    #[test]
    fn empty_request() {
        let s = nets().optimal_schedule(&[]);
        assert_eq!(s.accesses, 0);
        assert!(s.assignment.is_empty());
    }

    #[test]
    fn paper_fig3_nine_blocks_in_one_access() {
        // §III-B: these nine (9,3,1) buckets are non-conflicting and can be
        // retrieved in a single access.
        let reqs: Vec<Vec<usize>> = vec![
            vec![0, 1, 2],
            vec![1, 2, 0],
            vec![2, 0, 1],
            vec![3, 8, 1],
            vec![4, 8, 0],
            vec![5, 7, 0],
            vec![6, 0, 3],
            vec![7, 0, 5],
            vec![8, 1, 3],
        ];
        let refs: Vec<&[usize]> = reqs.iter().map(std::vec::Vec::as_slice).collect();
        let s = nets().optimal_schedule(&refs);
        assert_eq!(s.accesses, 1);
        let loads = s.device_loads(9);
        assert!(loads.iter().all(|&l| l <= 1), "{loads:?}");
    }

    #[test]
    fn conflicting_blocks_need_more_accesses() {
        // Three buckets all replicated on the same three devices: any
        // schedule puts two of them... actually 3 blocks over 3 devices fit
        // in 1 access. Make 4 blocks over 3 devices → 2 accesses.
        let reqs: Vec<Vec<usize>> =
            vec![vec![0, 1, 2], vec![1, 2, 0], vec![2, 0, 1], vec![0, 1, 2]];
        let refs: Vec<&[usize]> = reqs.iter().map(std::vec::Vec::as_slice).collect();
        let s = RetrievalNetwork::new(3).optimal_schedule(&refs);
        assert_eq!(s.accesses, 2);
    }

    #[test]
    fn assignment_only_uses_replicas() {
        let reqs: Vec<Vec<usize>> = vec![vec![0, 3, 6], vec![5, 7, 0], vec![0, 4, 8]];
        let refs: Vec<&[usize]> = reqs.iter().map(std::vec::Vec::as_slice).collect();
        let s = nets().optimal_schedule(&refs);
        for (i, req) in reqs.iter().enumerate() {
            assert!(req.contains(&s.assignment[i]));
        }
    }

    #[test]
    fn feasibility_monotone_in_m() {
        let reqs: Vec<Vec<usize>> = vec![
            vec![0, 1, 2],
            vec![0, 1, 2],
            vec![0, 1, 2],
            vec![0, 1, 2],
            vec![0, 1, 2],
        ];
        let refs: Vec<&[usize]> = reqs.iter().map(std::vec::Vec::as_slice).collect();
        let net = RetrievalNetwork::new(3);
        assert!(net.feasible(&refs, 1).is_none());
        assert!(net.feasible(&refs, 2).is_some());
        assert!(net.feasible(&refs, 3).is_some());
    }

    #[test]
    fn single_replica_serial_retrieval() {
        // Without replication all blocks on one device retrieve serially.
        let reqs: Vec<Vec<usize>> = (0..4).map(|_| vec![2usize]).collect();
        let refs: Vec<&[usize]> = reqs.iter().map(std::vec::Vec::as_slice).collect();
        let s = nets().optimal_schedule(&refs);
        assert_eq!(s.accesses, 4);
        assert!(s.assignment.iter().all(|&d| d == 2));
    }
}
