//! Sequence helpers: the `SliceRandom` subset the workspace uses.

use crate::{next_below, RngCore};

/// Randomized slice operations.
pub trait SliceRandom {
    /// Element type.
    type Item;

    /// Fisher–Yates shuffle in place.
    fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);

    /// Uniformly random element, or `None` if empty.
    fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
}

impl<T> SliceRandom for [T] {
    type Item = T;

    fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
        for i in (1..self.len()).rev() {
            let j = next_below(rng, (i + 1) as u64) as usize;
            self.swap(i, j);
        }
    }

    fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
        if self.is_empty() {
            None
        } else {
            Some(&self[next_below(rng, self.len() as u64) as usize])
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rngs::StdRng;
    use crate::SeedableRng;

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut v: Vec<usize> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, (0..50).collect::<Vec<_>>()); // astronomically unlikely
    }

    #[test]
    fn shuffle_mixes_positions() {
        // Every position should see many distinct values across shuffles.
        let mut rng = StdRng::seed_from_u64(9);
        let mut seen_at_zero = std::collections::HashSet::new();
        for _ in 0..100 {
            let mut v: Vec<usize> = (0..10).collect();
            v.shuffle(&mut rng);
            seen_at_zero.insert(v[0]);
        }
        assert!(seen_at_zero.len() >= 8, "{seen_at_zero:?}");
    }

    #[test]
    fn choose_handles_empty_and_full() {
        let mut rng = StdRng::seed_from_u64(1);
        let empty: [u8; 0] = [];
        assert!(empty.choose(&mut rng).is_none());
        let v = [7u8];
        assert_eq!(v.choose(&mut rng), Some(&7));
    }
}
