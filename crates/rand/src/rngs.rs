//! Generator implementations.

use crate::{RngCore, SeedableRng};

/// The workspace's standard generator: xoshiro256++ (Blackman & Vigna),
/// seeded by SplitMix64 key expansion. Fast, 256-bit state, passes BigCrush;
/// *not* the same stream as upstream `rand`'s ChaCha12-based `StdRng`.
#[derive(Debug, Clone)]
pub struct StdRng {
    s: [u64; 4],
}

/// Alias: upstream's `SmallRng` is also available under this name.
pub type SmallRng = StdRng;

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E3779B97F4A7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
    z ^ (z >> 31)
}

impl SeedableRng for StdRng {
    fn seed_from_u64(mut state: u64) -> Self {
        let s = [
            splitmix64(&mut state),
            splitmix64(&mut state),
            splitmix64(&mut state),
            splitmix64(&mut state),
        ];
        StdRng { s }
    }
}

impl RngCore for StdRng {
    fn next_u64(&mut self) -> u64 {
        let [s0, s1, s2, s3] = self.s;
        let result = s0.wrapping_add(s3).rotate_left(23).wrapping_add(s0);
        let t = s1 << 17;
        let mut s = [s0, s1, s2, s3];
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        self.s = s;
        result
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn xoshiro_reference_vector() {
        // First outputs for the all-distinct seed {1,2,3,4} — the reference
        // values of the xoshiro256++ C implementation.
        let mut rng = StdRng { s: [1, 2, 3, 4] };
        let first: Vec<u64> = (0..4).map(|_| rng.next_u64()).collect();
        assert_eq!(
            first,
            vec![41943041, 58720359, 3588806011781223, 3591011842654386]
        );
    }

    #[test]
    fn output_looks_equidistributed() {
        let mut rng = StdRng::seed_from_u64(0);
        let mut ones = 0u32;
        for _ in 0..1_000 {
            ones += rng.next_u64().count_ones();
        }
        // 64 000 bits, expect ~32 000 ones.
        assert!((31_000..33_000).contains(&ones), "{ones}");
    }
}
