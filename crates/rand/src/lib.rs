//! Offline stand-in for the `rand` crate (0.8 API subset).
//!
//! The build environment has no access to crates.io, so the workspace ships
//! this path dependency under the same name. It implements exactly the
//! surface the repo uses — [`rngs::StdRng`], [`Rng::gen_range`],
//! [`Rng::gen_bool`], [`SeedableRng::seed_from_u64`] and
//! [`seq::SliceRandom::shuffle`] — on top of a SplitMix64-seeded
//! xoshiro256++ generator. Streams differ from upstream `rand` (which uses
//! ChaCha12 for `StdRng`); every consumer in this repo treats seeds as
//! opaque reproducibility handles, not as cross-crate contracts.

pub mod rngs;
pub mod seq;

/// Low-level generator interface: a source of uniform 64-bit words.
pub trait RngCore {
    /// Next uniform 64-bit word.
    fn next_u64(&mut self) -> u64;

    /// Next uniform 32-bit word (upper half of [`RngCore::next_u64`]).
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Seedable generators. Upstream exposes `from_seed`/`from_rng` too; this
/// workspace only ever seeds from a `u64`.
pub trait SeedableRng: Sized {
    /// Build a generator from a 64-bit seed (SplitMix64 key expansion).
    fn seed_from_u64(state: u64) -> Self;
}

/// High-level sampling methods, blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Uniform sample from a range (`low..high` or `low..=high`).
    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T {
        range.sample_single(self)
    }

    /// Bernoulli sample: `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool p = {p} outside [0,1]");
        next_f64(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Uniform `f64` in `[0, 1)` with 53 bits of precision.
pub(crate) fn next_f64<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
    (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// Uniform `u64` in `[0, span)` via 128-bit widening multiply (bias < 2⁻⁶⁴,
/// irrelevant for simulation workloads).
pub(crate) fn next_below<R: RngCore + ?Sized>(rng: &mut R, span: u64) -> u64 {
    debug_assert!(span > 0);
    ((rng.next_u64() as u128 * span as u128) >> 64) as u64
}

/// Ranges a uniform sample can be drawn from.
pub trait SampleRange<T> {
    /// Draw one uniform sample.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty gen_range");
                let span = (self.end as u64).wrapping_sub(self.start as u64);
                self.start.wrapping_add(next_below(rng, span) as $t)
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty gen_range");
                let span = (hi as u64).wrapping_sub(lo as u64).wrapping_add(1);
                if span == 0 {
                    // Full-width range: every word is a valid sample.
                    return rng.next_u64() as $t;
                }
                lo.wrapping_add(next_below(rng, span) as $t)
            }
        }
    )*};
}

impl_int_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleRange<f64> for core::ops::Range<f64> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "empty gen_range");
        self.start + next_f64(rng) * (self.end - self.start)
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::*;

    #[test]
    fn seeding_is_deterministic() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(StdRng::seed_from_u64(42).next_u64(), c.next_u64());
    }

    #[test]
    fn gen_range_stays_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let x: usize = rng.gen_range(3..17);
            assert!((3..17).contains(&x));
            let y: u64 = rng.gen_range(0..=5);
            assert!(y <= 5);
            let z: i32 = rng.gen_range(-10..10);
            assert!((-10..10).contains(&z));
        }
    }

    #[test]
    fn gen_range_covers_all_values() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut seen = [false; 8];
        for _ in 0..1_000 {
            seen[rng.gen_range(0usize..8)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = StdRng::seed_from_u64(11);
        let hits = (0..100_000).filter(|_| rng.gen_bool(0.3)).count();
        assert!((28_000..32_000).contains(&hits), "{hits}");
        assert!(!(0..1000).any(|_| rng.gen_bool(0.0)));
        assert!((0..1000).all(|_| rng.gen_bool(1.0)));
    }

    #[test]
    fn f64_samples_are_unit_interval() {
        let mut rng = StdRng::seed_from_u64(5);
        for _ in 0..10_000 {
            let x = next_f64(&mut rng);
            assert!((0.0..1.0).contains(&x));
        }
    }
}
