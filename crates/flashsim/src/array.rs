//! The flash array: `N` devices behind a controller, plus trace replay.

use crate::device::{CalibratedSsd, Device};
use crate::request::{Completion, IoRequest};
use crate::stats::ResponseStats;
use crate::time::SimTime;

/// Array configuration.
#[derive(Debug, Clone, Copy)]
pub struct ArrayConfig {
    /// Number of flash modules (devices).
    pub num_devices: usize,
}

/// An array of `N` flash modules. The controller forwards each request to
/// its target device; replica selection happens *above* this layer (in the
/// declustering/QoS crates), matching the paper's architecture where the
/// retrieval algorithm decides the device and DiskSim executes the access.
#[derive(Debug, Clone)]
pub struct FlashArray<D: Device> {
    devices: Vec<D>,
    completions: u64,
}

impl FlashArray<CalibratedSsd> {
    /// An array of `n` paper-calibrated SSD modules (0.132507 ms / 8 KiB
    /// read) — the configuration every paper experiment uses.
    pub fn calibrated(n: usize) -> Self {
        FlashArray::new((0..n).map(|_| CalibratedSsd::new()).collect())
    }
}

impl<D: Device> FlashArray<D> {
    /// Build an array from pre-configured devices.
    pub fn new(devices: Vec<D>) -> Self {
        assert!(!devices.is_empty());
        FlashArray {
            devices,
            completions: 0,
        }
    }

    /// Number of devices.
    pub fn num_devices(&self) -> usize {
        self.devices.len()
    }

    /// Access a device model (for inspection).
    pub fn device(&self, idx: usize) -> &D {
        &self.devices[idx]
    }

    /// Submit a request to its target device at time `now`.
    pub fn submit(&mut self, req: &IoRequest, now: SimTime) -> Completion {
        assert!(req.device < self.devices.len(), "device index out of range");
        self.completions += 1;
        self.devices[req.device].submit(req, now)
    }

    /// Earliest time device `idx` can start a new request submitted at `now`
    /// — drives the online algorithm's earliest-finish-time replica choice.
    pub fn next_free(&self, idx: usize, now: SimTime) -> SimTime {
        self.devices[idx].next_free(now)
    }

    /// Index of the device among `candidates` with the earliest next-free
    /// time; idle devices win, ties break to the first (primary) candidate,
    /// matching the online retrieval preference of §IV-B.
    pub fn earliest_free_of(&self, candidates: &[usize], now: SimTime) -> usize {
        *candidates
            .iter()
            .min_by_key(|&&d| self.next_free(d, now))
            .expect("candidate list must be non-empty")
    }

    /// Total requests submitted so far.
    pub fn completions(&self) -> u64 {
        self.completions
    }

    /// Reset all devices to idle at time zero.
    pub fn reset(&mut self) {
        for d in &mut self.devices {
            d.reset();
        }
        self.completions = 0;
    }

    /// Replay a trace (requests sorted by arrival time, each already routed
    /// to a concrete device) and collect every completion.
    pub fn replay(&mut self, trace: impl IntoIterator<Item = IoRequest>) -> SimulationResult {
        let mut result = SimulationResult::default();
        let mut last_arrival = 0;
        for req in trace {
            debug_assert!(
                req.arrival >= last_arrival,
                "trace must be sorted by arrival"
            );
            last_arrival = req.arrival;
            let c = self.submit(&req, req.arrival);
            result.record(c);
        }
        result
    }
}

/// Aggregated outcome of a trace replay.
#[derive(Debug, Clone, Default)]
pub struct SimulationResult {
    /// Response-time statistics over all completed requests.
    pub stats: ResponseStats,
    /// All completions, in submission order.
    pub completions: Vec<Completion>,
}

impl SimulationResult {
    /// Record one completion.
    pub fn record(&mut self, c: Completion) {
        self.stats.record(c.response_time());
        self.completions.push(c);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::BLOCK_READ_NS;

    #[test]
    fn parallel_devices_do_not_interfere() {
        let mut arr = FlashArray::calibrated(3);
        let reqs: Vec<IoRequest> = (0..3)
            .map(|d| IoRequest::read_block(d as u64, 0, d, 0))
            .collect();
        for r in &reqs {
            let c = arr.submit(r, 0);
            assert_eq!(c.response_time(), BLOCK_READ_NS);
        }
    }

    #[test]
    fn same_device_serializes() {
        let mut arr = FlashArray::calibrated(3);
        let c1 = arr.submit(&IoRequest::read_block(1, 0, 1, 0), 0);
        let c2 = arr.submit(&IoRequest::read_block(2, 0, 1, 1), 0);
        assert_eq!(c1.response_time(), BLOCK_READ_NS);
        assert_eq!(c2.response_time(), 2 * BLOCK_READ_NS);
    }

    #[test]
    fn earliest_free_prefers_idle_then_primary() {
        let mut arr = FlashArray::calibrated(3);
        arr.submit(&IoRequest::read_block(1, 0, 0, 0), 0);
        // Device 0 busy; 1 and 2 idle → first idle candidate wins.
        assert_eq!(arr.earliest_free_of(&[0, 1, 2], 0), 1);
        // All idle → primary (first listed) wins.
        assert_eq!(arr.earliest_free_of(&[2, 1], BLOCK_READ_NS * 2), 2);
    }

    #[test]
    fn replay_counts_every_request() {
        let mut arr = FlashArray::calibrated(2);
        let trace: Vec<IoRequest> = (0..10)
            .map(|i| IoRequest::read_block(i, i * 1000, (i % 2) as usize, i))
            .collect();
        let result = arr.replay(trace);
        assert_eq!(result.stats.count(), 10);
        assert_eq!(result.completions.len(), 10);
        assert_eq!(arr.completions(), 10);
    }

    #[test]
    #[should_panic]
    fn out_of_range_device_panics() {
        let mut arr = FlashArray::calibrated(2);
        arr.submit(&IoRequest::read_block(1, 0, 5, 0), 0);
    }

    #[test]
    fn reset_restores_all_devices() {
        let mut arr = FlashArray::calibrated(2);
        arr.submit(&IoRequest::read_block(1, 0, 0, 0), 0);
        arr.reset();
        assert_eq!(arr.next_free(0, 0), 0);
        assert_eq!(arr.completions(), 0);
    }
}
