//! Device models: how long does a request take on one flash module?

use crate::request::{Completion, IoOp, IoRequest};
use crate::time::{Duration, SimTime, BLOCK_READ_NS};

/// A storage device that services submitted requests and reports their
/// completion times. Devices own their queueing discipline; the default
/// calibrated model is FCFS, matching DiskSim's per-device queue.
pub trait Device {
    /// Submit a request at simulated time `now` (must be `>= req.arrival`
    /// and non-decreasing across calls). Returns the completion record.
    fn submit(&mut self, req: &IoRequest, now: SimTime) -> Completion;

    /// The earliest time at which a request submitted at `now` would *start*
    /// service (i.e. when the device becomes free). Used by the online
    /// retrieval algorithm's earliest-finish-time replica selection.
    fn next_free(&self, now: SimTime) -> SimTime;

    /// Reset all internal state to time zero.
    fn reset(&mut self);
}

/// The calibrated flash module of the paper's evaluation: a fixed service
/// time per 8 KiB block (0.132507 ms for reads, per the MSR DiskSim SSD
/// extension parameters) behind an FCFS queue.
///
/// # Fail-slow degradation
///
/// A real module can stay *live* but serve far slower than calibrated (GC
/// stall, thermal throttle, wear-leveling pause). That mode is modeled by a
/// service-time multiplier ([`CalibratedSsd::set_degradation`]): a factor
/// of 10 makes every request take 10× the calibrated latency until the
/// factor is reset to 1. Queueing discipline is unchanged — the device is
/// slow, not failed.
#[derive(Debug, Clone)]
pub struct CalibratedSsd {
    read_ns_per_block: Duration,
    write_ns_per_block: Duration,
    busy_until: SimTime,
    /// Fail-slow service-time multiplier; 1 = calibrated speed.
    degrade: u32,
}

impl CalibratedSsd {
    /// The model used by every paper experiment: 0.132507 ms per 8 KiB read.
    /// Writes are given the same cost (the paper's traces are read-only);
    /// use [`CalibratedSsd::with_latencies`] to differentiate.
    pub fn new() -> Self {
        CalibratedSsd {
            read_ns_per_block: BLOCK_READ_NS,
            write_ns_per_block: BLOCK_READ_NS,
            busy_until: 0,
            degrade: 1,
        }
    }

    /// Custom per-block read/write latencies.
    pub fn with_latencies(read_ns: Duration, write_ns: Duration) -> Self {
        CalibratedSsd {
            read_ns_per_block: read_ns,
            write_ns_per_block: write_ns,
            busy_until: 0,
            degrade: 1,
        }
    }

    /// Set the fail-slow latency multiplier (clamped to at least 1;
    /// 1 restores calibrated speed). Applies to requests submitted from
    /// now on; an already-queued backlog keeps its old finish times.
    pub fn set_degradation(&mut self, factor: u32) {
        self.degrade = factor.max(1);
    }

    /// The current fail-slow latency multiplier (1 = healthy).
    pub fn degradation(&self) -> u32 {
        self.degrade
    }

    /// Raise the busy frontier to at least `t` (no-op when already past).
    /// Lets an owner account for service reserved on this device by an
    /// external scheduler — e.g. a hedged read issued by another worker.
    pub fn advance_busy(&mut self, t: SimTime) {
        self.busy_until = self.busy_until.max(t);
    }

    /// Cancel an in-flight request, releasing its reserved service time —
    /// only possible while it is still the last submission (nothing queued
    /// behind it). Returns `true` if the reservation was reclaimed.
    pub fn cancel(&mut self, completion: &Completion) -> bool {
        if self.busy_until == completion.finish {
            self.busy_until = completion.service_start;
            true
        } else {
            false
        }
    }

    /// Pure service time of a request on this device, including any
    /// fail-slow degradation in force.
    pub fn service_time(&self, req: &IoRequest) -> Duration {
        let per_block = match req.op {
            IoOp::Read => self.read_ns_per_block,
            IoOp::Write => self.write_ns_per_block,
        };
        per_block * req.num_blocks() as Duration * self.degrade as Duration
    }
}

impl Default for CalibratedSsd {
    fn default() -> Self {
        Self::new()
    }
}

impl Device for CalibratedSsd {
    fn submit(&mut self, req: &IoRequest, now: SimTime) -> Completion {
        debug_assert!(now >= req.arrival);
        let service_start = self.busy_until.max(now);
        let finish = service_start + self.service_time(req);
        self.busy_until = finish;
        Completion {
            request: *req,
            service_start,
            finish,
        }
    }

    fn next_free(&self, now: SimTime) -> SimTime {
        self.busy_until.max(now)
    }

    fn reset(&mut self) {
        self.busy_until = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn idle_device_serves_immediately() {
        let mut d = CalibratedSsd::new();
        let r = IoRequest::read_block(1, 1000, 0, 0);
        let c = d.submit(&r, 1000);
        assert_eq!(c.service_start, 1000);
        assert_eq!(c.response_time(), BLOCK_READ_NS);
    }

    #[test]
    fn fcfs_queueing_accumulates() {
        let mut d = CalibratedSsd::new();
        let r1 = IoRequest::read_block(1, 0, 0, 0);
        let r2 = IoRequest::read_block(2, 0, 0, 1);
        let c1 = d.submit(&r1, 0);
        let c2 = d.submit(&r2, 0);
        assert_eq!(c1.response_time(), BLOCK_READ_NS);
        assert_eq!(c2.queue_delay(), BLOCK_READ_NS);
        assert_eq!(c2.response_time(), 2 * BLOCK_READ_NS);
    }

    #[test]
    fn idle_gap_does_not_carry_over() {
        let mut d = CalibratedSsd::new();
        let r1 = IoRequest::read_block(1, 0, 0, 0);
        d.submit(&r1, 0);
        // Arrives long after the device went idle.
        let late = 10 * BLOCK_READ_NS;
        let r2 = IoRequest::read_block(2, late, 0, 1);
        let c2 = d.submit(&r2, late);
        assert_eq!(c2.queue_delay(), 0);
    }

    #[test]
    fn next_free_tracks_backlog() {
        let mut d = CalibratedSsd::new();
        assert_eq!(d.next_free(5), 5);
        let r = IoRequest::read_block(1, 0, 0, 0);
        d.submit(&r, 0);
        assert_eq!(d.next_free(0), BLOCK_READ_NS);
    }

    #[test]
    fn multi_block_scales_service() {
        let mut d = CalibratedSsd::new();
        let mut r = IoRequest::read_block(1, 0, 0, 0);
        r.size_bytes = 4 * crate::time::BLOCK_SIZE_BYTES;
        let c = d.submit(&r, 0);
        assert_eq!(c.service_time(), 4 * BLOCK_READ_NS);
    }

    #[test]
    fn reset_clears_backlog() {
        let mut d = CalibratedSsd::new();
        d.submit(&IoRequest::read_block(1, 0, 0, 0), 0);
        d.reset();
        assert_eq!(d.next_free(0), 0);
    }

    #[test]
    fn degradation_multiplies_service_time() {
        let mut d = CalibratedSsd::new();
        d.set_degradation(10);
        assert_eq!(d.degradation(), 10);
        let c = d.submit(&IoRequest::read_block(1, 0, 0, 0), 0);
        assert_eq!(c.service_time(), 10 * BLOCK_READ_NS);
        // Restoring to calibrated speed affects subsequent requests only.
        d.set_degradation(1);
        let c2 = d.submit(&IoRequest::read_block(2, 0, 0, 1), 0);
        assert_eq!(c2.service_time(), BLOCK_READ_NS);
        assert_eq!(c2.finish, 11 * BLOCK_READ_NS);
    }

    #[test]
    fn degradation_factor_zero_clamps_to_calibrated() {
        let mut d = CalibratedSsd::new();
        d.set_degradation(0);
        assert_eq!(d.degradation(), 1);
    }

    #[test]
    fn cancel_reclaims_only_the_last_submission() {
        let mut d = CalibratedSsd::new();
        let c1 = d.submit(&IoRequest::read_block(1, 0, 0, 0), 0);
        let c2 = d.submit(&IoRequest::read_block(2, 0, 0, 1), 0);
        // c1 is no longer last: its slot cannot be reclaimed.
        assert!(!d.cancel(&c1));
        assert_eq!(d.next_free(0), c2.finish);
        // c2 is last: cancelling frees the device back to c2's start.
        assert!(d.cancel(&c2));
        assert_eq!(d.next_free(0), c2.service_start);
    }

    #[test]
    fn advance_busy_reserves_external_service() {
        let mut d = CalibratedSsd::new();
        d.advance_busy(500);
        let c = d.submit(&IoRequest::read_block(1, 0, 0, 0), 0);
        assert_eq!(c.service_start, 500);
        // Never moves the frontier backwards.
        d.advance_busy(0);
        assert_eq!(d.next_free(0), c.finish);
    }
}
