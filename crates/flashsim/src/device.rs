//! Device models: how long does a request take on one flash module?

use crate::ftl::{FtlGeometry, GeometryError, PageMappedFtl, WriteOutcome};
use crate::request::{Completion, IoOp, IoRequest};
use crate::time::{Duration, SimTime, BLOCK_READ_NS};

/// A storage device that services submitted requests and reports their
/// completion times. Devices own their queueing discipline; the default
/// calibrated model is FCFS, matching DiskSim's per-device queue.
pub trait Device {
    /// Submit a request at simulated time `now` (must be `>= req.arrival`
    /// and non-decreasing across calls). Returns the completion record.
    fn submit(&mut self, req: &IoRequest, now: SimTime) -> Completion;

    /// The earliest time at which a request submitted at `now` would *start*
    /// service (i.e. when the device becomes free). Used by the online
    /// retrieval algorithm's earliest-finish-time replica selection.
    fn next_free(&self, now: SimTime) -> SimTime;

    /// Reset all internal state to time zero.
    fn reset(&mut self);
}

/// The calibrated flash module of the paper's evaluation: a fixed service
/// time per 8 KiB block (0.132507 ms for reads, per the MSR DiskSim SSD
/// extension parameters) behind an FCFS queue.
///
/// # Fail-slow degradation
///
/// A real module can stay *live* but serve far slower than calibrated (GC
/// stall, thermal throttle, wear-leveling pause). That mode is modeled by a
/// service-time multiplier ([`CalibratedSsd::set_degradation`]): a factor
/// of 10 makes every request take 10× the calibrated latency until the
/// factor is reset to 1. Queueing discipline is unchanged — the device is
/// slow, not failed.
#[derive(Debug, Clone)]
pub struct CalibratedSsd {
    read_ns_per_block: Duration,
    write_ns_per_block: Duration,
    busy_until: SimTime,
    /// Fail-slow service-time multiplier; 1 = calibrated speed.
    degrade: u32,
    /// Block erase latency charged per GC erase (only used with `ftl`).
    erase_ns: Duration,
    /// Optional write/GC model: when present, programs run through the
    /// page-mapped FTL and GC work (relocation reads + programs + erases)
    /// stalls the device in-line with the host write.
    ftl: Option<PageMappedFtl>,
    gc: GcStats,
    /// GC work triggered by the most recent write submission.
    last_gc: WriteOutcome,
}

/// Cumulative garbage-collection counters of one device.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct GcStats {
    /// Host page programs.
    pub host_pages: u64,
    /// GC relocation page programs (`gc_writes`).
    pub gc_pages: u64,
    /// Pages read back during relocation.
    pub relocated: u64,
    /// Erase operations.
    pub erases: u64,
    /// Writes refused by the FTL (working set above usable capacity);
    /// charged at plain program cost without GC.
    pub full_errors: u64,
}

impl GcStats {
    /// Write amplification so far: `(host + GC pages) / host pages`
    /// (1.0 before any host write).
    pub fn write_amplification(&self) -> f64 {
        if self.host_pages == 0 {
            1.0
        } else {
            (self.host_pages + self.gc_pages) as f64 / self.host_pages as f64
        }
    }
}

impl CalibratedSsd {
    /// The model used by every paper experiment: 0.132507 ms per 8 KiB read.
    /// Writes are given the same cost (the paper's traces are read-only);
    /// use [`CalibratedSsd::with_latencies`] to differentiate.
    pub fn new() -> Self {
        Self::with_latencies(BLOCK_READ_NS, BLOCK_READ_NS)
    }

    /// Custom per-block read/write latencies.
    pub fn with_latencies(read_ns: Duration, write_ns: Duration) -> Self {
        CalibratedSsd {
            read_ns_per_block: read_ns,
            write_ns_per_block: write_ns,
            busy_until: 0,
            degrade: 1,
            erase_ns: 0,
            ftl: None,
            gc: GcStats::default(),
            last_gc: WriteOutcome::default(),
        }
    }

    /// Attach a write/GC model: programs run through a page-mapped FTL
    /// (one logical page per 8 KiB block) and GC work stalls the device.
    /// Relocation reads cost the read latency, relocation programs the
    /// write latency, and each erase costs `erase_ns`.
    pub fn with_gc(
        mut self,
        geometry: FtlGeometry,
        erase_ns: Duration,
    ) -> Result<Self, GeometryError> {
        self.ftl = Some(PageMappedFtl::try_new(geometry)?);
        self.erase_ns = erase_ns;
        Ok(self)
    }

    /// Set the fail-slow latency multiplier (clamped to at least 1;
    /// 1 restores calibrated speed). Applies to requests submitted from
    /// now on; an already-queued backlog keeps its old finish times.
    pub fn set_degradation(&mut self, factor: u32) {
        self.degrade = factor.max(1);
    }

    /// The current fail-slow latency multiplier (1 = healthy).
    pub fn degradation(&self) -> u32 {
        self.degrade
    }

    /// Raise the busy frontier to at least `t` (no-op when already past).
    /// Lets an owner account for service reserved on this device by an
    /// external scheduler — e.g. a hedged read issued by another worker.
    pub fn advance_busy(&mut self, t: SimTime) {
        self.busy_until = self.busy_until.max(t);
    }

    /// Cancel an in-flight request, releasing its reserved service time —
    /// only possible while it is still the last submission (nothing queued
    /// behind it). Returns `true` if the reservation was reclaimed.
    pub fn cancel(&mut self, completion: &Completion) -> bool {
        if self.busy_until == completion.finish {
            self.busy_until = completion.service_start;
            true
        } else {
            false
        }
    }

    /// Pure service time of a request on this device, including any
    /// fail-slow degradation in force — but **excluding** GC stalls, which
    /// depend on FTL state and are only known when the write is submitted.
    pub fn service_time(&self, req: &IoRequest) -> Duration {
        let per_block = match req.op {
            IoOp::Read => self.read_ns_per_block,
            IoOp::Write => self.write_ns_per_block,
        };
        per_block * req.num_blocks() as Duration * self.degrade as Duration
    }

    /// Run a write through the FTL and return the stall its GC work adds.
    ///
    /// The fail-slow `degrade` multiplier deliberately does **not** apply
    /// to this term: the multiplier models *external* slowness (thermal
    /// throttle, a live `slow:` injection) scaling the calibrated program
    /// cost, while the GC stall is itself a slowness source measured in
    /// real latency units. Multiplying both would double-count the stall
    /// whenever a `slow:` schedule composes with a GC storm.
    fn gc_stall(&mut self, req: &IoRequest) -> Duration {
        let Some(ftl) = self.ftl.as_mut() else {
            return 0;
        };
        let blocks = req.num_blocks() as u64;
        let mut gc = WriteOutcome::default();
        let mut full = 0u64;
        for i in 0..blocks {
            match ftl.write(req.lbn * blocks + i) {
                Ok((_, out)) => {
                    gc.pages_programmed += out.pages_programmed;
                    gc.pages_relocated += out.pages_relocated;
                    gc.erases += out.erases;
                }
                // Over-capacity working set: the program is charged but
                // no GC ran; counted, never panicked on.
                Err(_) => full += 1,
            }
        }
        let host = blocks - full;
        let gc_pages = gc.pages_programmed.saturating_sub(host);
        self.gc.host_pages += host;
        self.gc.gc_pages += gc_pages;
        self.gc.relocated += gc.pages_relocated;
        self.gc.erases += gc.erases;
        self.gc.full_errors += full;
        self.last_gc = WriteOutcome {
            pages_programmed: gc.pages_programmed,
            pages_relocated: gc.pages_relocated,
            erases: gc.erases,
        };
        gc.pages_relocated * self.read_ns_per_block
            + gc_pages * self.write_ns_per_block
            + gc.erases * self.erase_ns
    }

    /// Cumulative GC counters (all zero without an attached FTL).
    pub fn gc_stats(&self) -> GcStats {
        self.gc
    }

    /// GC work triggered by the most recent write submission (zeroed
    /// outcome if the last submission was a read or no FTL is attached).
    pub fn last_gc_outcome(&self) -> WriteOutcome {
        self.last_gc
    }
}

impl Default for CalibratedSsd {
    fn default() -> Self {
        Self::new()
    }
}

impl Device for CalibratedSsd {
    fn submit(&mut self, req: &IoRequest, now: SimTime) -> Completion {
        debug_assert!(now >= req.arrival);
        self.last_gc = WriteOutcome::default();
        let gc_ns = match req.op {
            IoOp::Read => 0,
            IoOp::Write => self.gc_stall(req),
        };
        let service_start = self.busy_until.max(now);
        // One busy-frontier reservation covers calibrated service and GC
        // stall together — callers that mirror the frontier (advance_busy)
        // see a single extended occupancy, not a second charge.
        let finish = service_start + self.service_time(req) + gc_ns;
        self.busy_until = finish;
        Completion {
            request: *req,
            service_start,
            finish,
        }
    }

    fn next_free(&self, now: SimTime) -> SimTime {
        self.busy_until.max(now)
    }

    fn reset(&mut self) {
        self.busy_until = 0;
        self.gc = GcStats::default();
        self.last_gc = WriteOutcome::default();
        if let Some(ftl) = self.ftl.as_mut() {
            *ftl = PageMappedFtl::new(*ftl.geometry());
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn idle_device_serves_immediately() {
        let mut d = CalibratedSsd::new();
        let r = IoRequest::read_block(1, 1000, 0, 0);
        let c = d.submit(&r, 1000);
        assert_eq!(c.service_start, 1000);
        assert_eq!(c.response_time(), BLOCK_READ_NS);
    }

    #[test]
    fn fcfs_queueing_accumulates() {
        let mut d = CalibratedSsd::new();
        let r1 = IoRequest::read_block(1, 0, 0, 0);
        let r2 = IoRequest::read_block(2, 0, 0, 1);
        let c1 = d.submit(&r1, 0);
        let c2 = d.submit(&r2, 0);
        assert_eq!(c1.response_time(), BLOCK_READ_NS);
        assert_eq!(c2.queue_delay(), BLOCK_READ_NS);
        assert_eq!(c2.response_time(), 2 * BLOCK_READ_NS);
    }

    #[test]
    fn idle_gap_does_not_carry_over() {
        let mut d = CalibratedSsd::new();
        let r1 = IoRequest::read_block(1, 0, 0, 0);
        d.submit(&r1, 0);
        // Arrives long after the device went idle.
        let late = 10 * BLOCK_READ_NS;
        let r2 = IoRequest::read_block(2, late, 0, 1);
        let c2 = d.submit(&r2, late);
        assert_eq!(c2.queue_delay(), 0);
    }

    #[test]
    fn next_free_tracks_backlog() {
        let mut d = CalibratedSsd::new();
        assert_eq!(d.next_free(5), 5);
        let r = IoRequest::read_block(1, 0, 0, 0);
        d.submit(&r, 0);
        assert_eq!(d.next_free(0), BLOCK_READ_NS);
    }

    #[test]
    fn multi_block_scales_service() {
        let mut d = CalibratedSsd::new();
        let mut r = IoRequest::read_block(1, 0, 0, 0);
        r.size_bytes = 4 * crate::time::BLOCK_SIZE_BYTES;
        let c = d.submit(&r, 0);
        assert_eq!(c.service_time(), 4 * BLOCK_READ_NS);
    }

    #[test]
    fn reset_clears_backlog() {
        let mut d = CalibratedSsd::new();
        d.submit(&IoRequest::read_block(1, 0, 0, 0), 0);
        d.reset();
        assert_eq!(d.next_free(0), 0);
    }

    #[test]
    fn degradation_multiplies_service_time() {
        let mut d = CalibratedSsd::new();
        d.set_degradation(10);
        assert_eq!(d.degradation(), 10);
        let c = d.submit(&IoRequest::read_block(1, 0, 0, 0), 0);
        assert_eq!(c.service_time(), 10 * BLOCK_READ_NS);
        // Restoring to calibrated speed affects subsequent requests only.
        d.set_degradation(1);
        let c2 = d.submit(&IoRequest::read_block(2, 0, 0, 1), 0);
        assert_eq!(c2.service_time(), BLOCK_READ_NS);
        assert_eq!(c2.finish, 11 * BLOCK_READ_NS);
    }

    #[test]
    fn degradation_factor_zero_clamps_to_calibrated() {
        let mut d = CalibratedSsd::new();
        d.set_degradation(0);
        assert_eq!(d.degradation(), 1);
    }

    #[test]
    fn cancel_reclaims_only_the_last_submission() {
        let mut d = CalibratedSsd::new();
        let c1 = d.submit(&IoRequest::read_block(1, 0, 0, 0), 0);
        let c2 = d.submit(&IoRequest::read_block(2, 0, 0, 1), 0);
        // c1 is no longer last: its slot cannot be reclaimed.
        assert!(!d.cancel(&c1));
        assert_eq!(d.next_free(0), c2.finish);
        // c2 is last: cancelling frees the device back to c2's start.
        assert!(d.cancel(&c2));
        assert_eq!(d.next_free(0), c2.service_start);
    }

    fn gc_device() -> CalibratedSsd {
        // Tiny geometry with low over-provisioning: overwrites trigger GC
        // after a handful of programs.
        CalibratedSsd::with_latencies(100, 300)
            .with_gc(
                crate::ftl::FtlGeometry {
                    dies: 1,
                    blocks_per_die: 8,
                    pages_per_block: 4,
                    overprovision: 0.25,
                },
                5_000,
            )
            .unwrap()
    }

    #[test]
    fn writes_without_ftl_cost_plain_program_time() {
        let mut d = CalibratedSsd::with_latencies(100, 300);
        let c = d.submit(&IoRequest::write_block(1, 0, 0, 7), 0);
        assert_eq!(c.service_time(), 300);
        assert_eq!(d.gc_stats(), GcStats::default());
        assert_eq!(d.last_gc_outcome(), crate::ftl::WriteOutcome::default());
    }

    #[test]
    fn gc_writes_stall_the_device_inline() {
        let mut d = gc_device();
        // Overwrite a small working set until GC must run.
        let mut saw_stall = false;
        let mut now = 0;
        let mut seed = 1u64;
        for i in 0..400u64 {
            // Pseudo-random overwrites over 18 of 32 physical pages: GC
            // victims usually hold valid pages to relocate.
            seed = seed
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let c = d.submit(&IoRequest::write_block(i, now, 0, (seed >> 33) % 18), now);
            let base = d.service_time(&c.request);
            if c.service_time() > base {
                saw_stall = true;
                let out = d.last_gc_outcome();
                // The stall decomposes exactly into relocation reads,
                // relocation programs and erases.
                let gc_pages = out.pages_programmed - c.request.num_blocks() as u64;
                assert_eq!(
                    c.service_time() - base,
                    out.pages_relocated * 100 + gc_pages * 300 + out.erases * 5_000
                );
            }
            now = c.finish;
        }
        assert!(saw_stall, "GC never stalled a write");
        let gc = d.gc_stats();
        assert!(gc.erases > 0 && gc.gc_pages > 0);
        assert!(gc.write_amplification() > 1.0);
    }

    #[test]
    fn reads_never_touch_the_ftl() {
        let mut d = gc_device();
        let c = d.submit(&IoRequest::read_block(1, 0, 0, 3), 0);
        assert_eq!(c.service_time(), 100);
        assert_eq!(d.gc_stats(), GcStats::default());
    }

    #[test]
    fn degradation_does_not_multiply_gc_stalls() {
        // Regression (de-risk): a live `slow:` schedule composed with a GC
        // storm must charge `degrade × program + gc`, not
        // `degrade × (program + gc)` — the GC stall is itself the slowness
        // and must not be double-counted.
        let mut healthy = gc_device();
        let mut degraded = gc_device();
        degraded.set_degradation(10);
        let mut now = 0;
        for i in 0..200u64 {
            let req = IoRequest::write_block(i, now, 0, i % 8);
            let ch = healthy.submit(&req, now);
            let cd = degraded.submit(&req, now);
            // Identical FTL state ⇒ identical GC stall on both devices.
            assert_eq!(healthy.last_gc_outcome(), degraded.last_gc_outcome());
            let base = 300 * req.num_blocks() as u64;
            let gc_ns = ch.service_time() - base;
            assert_eq!(
                cd.service_time(),
                10 * base + gc_ns,
                "GC stall must not be scaled by the degradation factor"
            );
            now = healthy.next_free(now);
            degraded.advance_busy(now); // keep frontiers comparable
        }
    }

    #[test]
    fn reset_clears_gc_state() {
        let mut d = gc_device();
        for i in 0..50u64 {
            d.submit(&IoRequest::write_block(i, 0, 0, i % 8), 0);
        }
        assert!(d.gc_stats().host_pages > 0);
        d.reset();
        assert_eq!(d.gc_stats(), GcStats::default());
        assert_eq!(d.next_free(0), 0);
    }

    #[test]
    fn advance_busy_reserves_external_service() {
        let mut d = CalibratedSsd::new();
        d.advance_busy(500);
        let c = d.submit(&IoRequest::read_block(1, 0, 0, 0), 0);
        assert_eq!(c.service_start, 500);
        // Never moves the frontier backwards.
        d.advance_busy(0);
        assert_eq!(d.next_free(0), c.finish);
    }
}
