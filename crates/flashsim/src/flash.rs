//! Page-level flash module model.
//!
//! Models one flash module of Fig. 1: several flash dies behind a flash
//! module controller (FMC) sharing one serial channel. Latency defaults
//! follow Agrawal et al. (USENIX ATC'08), the parameter source of the MSR
//! DiskSim SSD extension: page read 25 µs, page program 200 µs, block erase
//! 1.5 ms, serial transfer 25 ns/byte.
//!
//! Timing model per page operation:
//!
//! * **read** — the die is busy for the cell read, then the channel is busy
//!   for the data transfer; reads on different dies overlap, transfers
//!   serialize on the channel.
//! * **write** — the channel transfer happens first, then the die programs.
//! * **GC** — relocations and erases triggered by the FTL are charged to the
//!   die before the host write completes.

use crate::device::Device;
use crate::ftl::{FtlGeometry, PageMappedFtl};
use crate::request::{Completion, IoOp, IoRequest};
use crate::time::{Duration, SimTime};

/// Latency and geometry parameters of one flash module.
#[derive(Debug, Clone, Copy)]
pub struct FlashConfig {
    /// Page size in bytes (Agrawal et al. use 4 KiB).
    pub page_size_bytes: u32,
    /// Cell-array read latency per page.
    pub read_ns: Duration,
    /// Program latency per page.
    pub program_ns: Duration,
    /// Block erase latency.
    pub erase_ns: Duration,
    /// Serial channel transfer time per byte.
    pub transfer_ns_per_byte: Duration,
    /// FTL geometry.
    pub geometry: FtlGeometry,
}

impl Default for FlashConfig {
    fn default() -> Self {
        FlashConfig {
            page_size_bytes: 4096,
            read_ns: 25_000,
            program_ns: 200_000,
            erase_ns: 1_500_000,
            transfer_ns_per_byte: 25,
            geometry: FtlGeometry::default(),
        }
    }
}

impl FlashConfig {
    /// Channel time to move one page.
    pub fn page_transfer_ns(&self) -> Duration {
        self.transfer_ns_per_byte * self.page_size_bytes as Duration
    }

    /// Check the configuration (the FTL geometry bounds, including the
    /// documented 0.0–0.5 over-provisioning range).
    pub fn validate(&self) -> Result<(), crate::ftl::GeometryError> {
        self.geometry.validate()
    }
}

/// A page-level flash module: dies + shared channel + page-mapped FTL.
#[derive(Debug, Clone)]
pub struct FlashModule {
    config: FlashConfig,
    ftl: PageMappedFtl,
    /// Per-die next-free time.
    die_free: Vec<SimTime>,
    /// Channel next-free time.
    channel_free: SimTime,
}

impl FlashModule {
    /// Create a module with the given configuration.
    pub fn new(config: FlashConfig) -> Self {
        let dies = config.geometry.dies;
        FlashModule {
            config,
            ftl: PageMappedFtl::new(config.geometry),
            die_free: vec![0; dies],
            channel_free: 0,
        }
    }

    /// Configuration in use.
    pub fn config(&self) -> &FlashConfig {
        &self.config
    }

    /// The FTL, for inspection (write amplification, erase counts).
    pub fn ftl(&self) -> &PageMappedFtl {
        &self.ftl
    }

    fn logical_pages(&self, req: &IoRequest) -> impl Iterator<Item = u64> {
        let pages_per_lbn = (req.size_bytes.div_ceil(self.config.page_size_bytes)).max(1) as u64;
        let base = req.lbn * pages_per_lbn;
        base..base + pages_per_lbn
    }

    fn read_page(&mut self, logical_page: u64, earliest: SimTime) -> SimTime {
        let phys = self
            .ftl
            .read(logical_page)
            .expect("flash module full: configure a larger geometry");
        let start = self.die_free[phys.die].max(earliest);
        let cell_done = start + self.config.read_ns;
        // The die frees once the cell read finishes (cache register holds
        // the data for transfer).
        self.die_free[phys.die] = cell_done;
        let xfer_start = self.channel_free.max(cell_done);
        let done = xfer_start + self.config.page_transfer_ns();
        self.channel_free = done;
        done
    }

    fn write_page(&mut self, logical_page: u64, earliest: SimTime) -> SimTime {
        // Transfer data to the module first.
        let xfer_start = self.channel_free.max(earliest);
        let xfer_done = xfer_start + self.config.page_transfer_ns();
        self.channel_free = xfer_done;

        let (phys, outcome) = self
            .ftl
            .write(logical_page)
            .expect("flash module full: configure a larger geometry");
        let start = self.die_free[phys.die].max(xfer_done);
        // Charge GC work (relocation reads+programs and erases) plus the
        // host program to the die.
        let gc_ns = outcome.pages_relocated * self.config.read_ns
            + (outcome.pages_programmed - 1) * self.config.program_ns
            + outcome.erases * self.config.erase_ns;
        let done = start + gc_ns + self.config.program_ns;
        self.die_free[phys.die] = done;
        done
    }
}

impl Default for FlashModule {
    fn default() -> Self {
        Self::new(FlashConfig::default())
    }
}

impl Device for FlashModule {
    fn submit(&mut self, req: &IoRequest, now: SimTime) -> Completion {
        debug_assert!(now >= req.arrival);
        // Command issue is immediate; the die and channel timelines inside
        // the page operations provide all serialization.
        let service_start = now;
        let pages: Vec<u64> = self.logical_pages(req).collect();
        let mut finish = service_start;
        for lp in pages {
            let done = match req.op {
                IoOp::Read => self.read_page(lp, service_start),
                IoOp::Write => self.write_page(lp, service_start),
            };
            finish = finish.max(done);
        }
        Completion {
            request: *req,
            service_start,
            finish,
        }
    }

    fn next_free(&self, now: SimTime) -> SimTime {
        // The module can accept a new request once the channel is free; die
        // busy-ness only delays pages mapped to busy dies.
        self.channel_free.max(now)
    }

    fn reset(&mut self) {
        self.die_free.iter_mut().for_each(|t| *t = 0);
        self.channel_free = 0;
        self.ftl = PageMappedFtl::new(self.config.geometry);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::BLOCK_SIZE_BYTES;

    fn module() -> FlashModule {
        FlashModule::default()
    }

    #[test]
    fn single_page_read_latency() {
        let mut m = module();
        let mut r = IoRequest::read_block(1, 0, 0, 5);
        r.size_bytes = 4096;
        let c = m.submit(&r, 0);
        let expected = m.config.read_ns + m.config.page_transfer_ns();
        assert_eq!(c.service_time(), expected);
    }

    #[test]
    fn eight_kib_read_is_two_pages() {
        let mut m = module();
        let r = IoRequest::read_block(1, 0, 0, 5); // 8 KiB
        let c = m.submit(&r, 0);
        // Two pages on different dies: cell reads overlap, transfers
        // serialize → read + 2 × transfer.
        let expected = m.config.read_ns + 2 * m.config.page_transfer_ns();
        assert_eq!(c.service_time(), expected);
    }

    #[test]
    fn reads_on_distinct_dies_overlap() {
        let mut m = module();
        // Warm the FTL so pages land on round-robin dies 0 and 1.
        let mut r1 = IoRequest::read_block(1, 0, 0, 0);
        r1.size_bytes = 4096;
        let mut r2 = IoRequest::read_block(2, 0, 0, 1);
        r2.size_bytes = 4096;
        let c1 = m.submit(&r1, 0);
        let c2 = m.submit(&r2, 0);
        // Second read's cell read overlapped the first transfer: its finish
        // is bounded by channel serialization, not by 2× full latency.
        assert!(c2.finish < c1.finish + m.config.read_ns + m.config.page_transfer_ns());
        assert!(c2.finish >= c1.finish + m.config.page_transfer_ns());
    }

    #[test]
    fn write_includes_program_time() {
        let mut m = module();
        let mut r = IoRequest::read_block(1, 0, 0, 9);
        r.size_bytes = 4096;
        r.op = IoOp::Write;
        let c = m.submit(&r, 0);
        assert!(c.service_time() >= m.config.program_ns + m.config.page_transfer_ns());
    }

    #[test]
    fn reset_restores_idle_state() {
        let mut m = module();
        m.submit(&IoRequest::read_block(1, 0, 0, 0), 0);
        assert!(m.next_free(0) > 0);
        m.reset();
        assert_eq!(m.next_free(0), 0);
    }

    #[test]
    fn config_validation_rejects_out_of_range_overprovision() {
        let mut cfg = FlashConfig::default();
        assert!(cfg.validate().is_ok());
        cfg.geometry.overprovision = 0.75;
        assert!(matches!(
            cfg.validate(),
            Err(crate::ftl::GeometryError::OverprovisionOutOfRange(_))
        ));
    }

    #[test]
    fn request_size_defaults_align_with_calibration_block() {
        // The paper's 8 KiB block maps to exactly 2 default pages.
        assert_eq!(BLOCK_SIZE_BYTES / FlashConfig::default().page_size_bytes, 2);
    }
}
