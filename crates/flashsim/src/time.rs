//! Simulated time: `u64` nanoseconds since simulation start.
//!
//! A nanosecond grid represents every timing constant of the paper exactly:
//! the calibrated 8 KiB read of the MSR DiskSim SSD extension is
//! 0.132507 ms = 132 507 ns, and the paper's intervals (0.133 ms, 0.266 ms,
//! 0.399 ms) are 133 000 / 266 000 / 399 000 ns.

/// A point in simulated time, in nanoseconds since simulation start.
pub type SimTime = u64;

/// A span of simulated time, in nanoseconds.
pub type Duration = u64;

/// Service time of one 8 KiB flash read per the MSR DiskSim SSD extension
/// parameters: 0.132507 ms.
pub const BLOCK_READ_NS: Duration = 132_507;

/// The paper aligns all requests to 8 KiB blocks.
pub const BLOCK_SIZE_BYTES: u32 = 8 * 1024;

/// The paper's base QoS interval: 0.133 ms, "slightly larger than the
/// response time of one block request" (§V-D).
pub const BASE_INTERVAL_NS: Duration = 133_000;

/// Convert milliseconds to [`SimTime`] nanoseconds (round to nearest).
pub fn ms_to_ns(ms: f64) -> Duration {
    (ms * 1e6).round() as Duration
}

/// Convert [`SimTime`] nanoseconds to milliseconds.
pub fn ns_to_ms(ns: Duration) -> f64 {
    ns as f64 / 1e6
}

/// Convert seconds to nanoseconds.
pub fn secs_to_ns(s: f64) -> Duration {
    (s * 1e9).round() as Duration
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn calibrated_read_is_exact() {
        assert_eq!(ms_to_ns(0.132507), BLOCK_READ_NS);
    }

    #[test]
    fn paper_intervals_are_exact() {
        assert_eq!(ms_to_ns(0.133), BASE_INTERVAL_NS);
        assert_eq!(ms_to_ns(0.266), 2 * BASE_INTERVAL_NS);
        assert_eq!(ms_to_ns(0.399), 3 * BASE_INTERVAL_NS);
    }

    #[test]
    fn conversions_roundtrip() {
        for ns in [0u64, 1, 132_507, 1_000_000_000] {
            assert_eq!(ms_to_ns(ns_to_ms(ns)), ns);
        }
        assert_eq!(secs_to_ns(1.5), 1_500_000_000);
    }
}
