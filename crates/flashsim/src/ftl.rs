//! A page-mapped flash translation layer with greedy garbage collection.
//!
//! Supports the page-level [`crate::flash::FlashModule`] device model. The
//! paper's experiments are read-only, so the FTL's main job there is the
//! logical→physical page map; the write/GC path exists so the richer model
//! can run mixed workloads in sensitivity studies.

/// Physical location of a flash page.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PhysPage {
    /// Die index within the module.
    pub die: usize,
    /// Erase-block index within the die.
    pub block: usize,
    /// Page index within the erase block.
    pub page: usize,
}

/// Geometry of one flash module.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FtlGeometry {
    /// Number of dies (independent command units).
    pub dies: usize,
    /// Erase blocks per die.
    pub blocks_per_die: usize,
    /// Pages per erase block.
    pub pages_per_block: usize,
    /// Fraction of blocks kept free as over-provisioning (0.0–0.5). GC runs
    /// when a die's free-block count drops below this share.
    pub overprovision: f64,
}

impl Default for FtlGeometry {
    fn default() -> Self {
        // Small but realistically shaped defaults (Agrawal et al. use 64
        // pages/block; die/block counts here are scaled for simulation).
        FtlGeometry {
            dies: 4,
            blocks_per_die: 256,
            pages_per_block: 64,
            overprovision: 0.1,
        }
    }
}

/// A structurally invalid [`FtlGeometry`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum GeometryError {
    /// `overprovision` outside the documented `0.0–0.5` range (or NaN).
    /// Past 0.5 the GC floor would reserve more blocks than GC can ever
    /// reclaim into; negative values would disable the floor entirely.
    OverprovisionOutOfRange(f64),
    /// A die/block/page dimension of zero.
    EmptyDimension,
}

impl std::fmt::Display for GeometryError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            GeometryError::OverprovisionOutOfRange(v) => {
                write!(
                    f,
                    "over-provisioning {v} outside the supported 0.0–0.5 range"
                )
            }
            GeometryError::EmptyDimension => {
                write!(
                    f,
                    "dies, blocks_per_die and pages_per_block must all be non-zero"
                )
            }
        }
    }
}

impl std::error::Error for GeometryError {}

impl FtlGeometry {
    /// Check the documented bounds: all dimensions non-zero and
    /// `overprovision` within `0.0–0.5`.
    pub fn validate(&self) -> Result<(), GeometryError> {
        if self.dies == 0 || self.blocks_per_die == 0 || self.pages_per_block == 0 {
            return Err(GeometryError::EmptyDimension);
        }
        if !(0.0..=0.5).contains(&self.overprovision) {
            return Err(GeometryError::OverprovisionOutOfRange(self.overprovision));
        }
        Ok(())
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum PageState {
    Free,
    Valid(u64),
    Invalid,
}

#[derive(Debug, Clone)]
struct EraseBlock {
    pages: Vec<PageState>,
    write_ptr: usize,
    valid: usize,
}

impl EraseBlock {
    fn new(pages_per_block: usize) -> Self {
        EraseBlock {
            pages: vec![PageState::Free; pages_per_block],
            write_ptr: 0,
            valid: 0,
        }
    }

    fn is_full(&self) -> bool {
        self.write_ptr >= self.pages.len()
    }
}

#[derive(Debug, Clone)]
struct Die {
    blocks: Vec<EraseBlock>,
    active: usize,
    free_blocks: Vec<usize>,
    erases: u64,
}

/// Result of a logical write: where it landed and what GC work it triggered.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct WriteOutcome {
    /// Pages programmed (1 for the host write + any GC relocations).
    pub pages_programmed: u64,
    /// Pages read back during GC relocation.
    pub pages_relocated: u64,
    /// Erase operations performed.
    pub erases: u64,
}

/// The device has no reclaimable space left: the live working set exceeds
/// the usable capacity (capacity minus the over-provisioning floor). In a
/// real SSD this surfaces as ENOSPC/readonly mode; configure a larger
/// geometry or more over-provisioning.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DeviceFull;

impl std::fmt::Display for DeviceFull {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "flash device full: live data exceeds usable capacity")
    }
}

impl std::error::Error for DeviceFull {}

/// Page-mapped FTL over a multi-die module.
#[derive(Debug, Clone)]
pub struct PageMappedFtl {
    geometry: FtlGeometry,
    dies: Vec<Die>,
    /// Logical page → physical page.
    map: std::collections::HashMap<u64, PhysPage>,
    next_die: usize,
    host_writes: u64,
    gc_writes: u64,
}

impl PageMappedFtl {
    /// Create an FTL with the given geometry.
    ///
    /// # Panics
    ///
    /// Panics if the geometry is invalid ([`FtlGeometry::validate`]); use
    /// [`PageMappedFtl::try_new`] to handle the error.
    pub fn new(geometry: FtlGeometry) -> Self {
        Self::try_new(geometry).expect("invalid FTL geometry")
    }

    /// Fallible constructor: rejects geometries that fail
    /// [`FtlGeometry::validate`] instead of panicking.
    pub fn try_new(geometry: FtlGeometry) -> Result<Self, GeometryError> {
        geometry.validate()?;
        let dies = (0..geometry.dies)
            .map(|_| {
                let blocks = (0..geometry.blocks_per_die)
                    .map(|_| EraseBlock::new(geometry.pages_per_block))
                    .collect();
                Die {
                    blocks,
                    active: 0,
                    free_blocks: (1..geometry.blocks_per_die).rev().collect(),
                    erases: 0,
                }
            })
            .collect();
        Ok(PageMappedFtl {
            geometry,
            dies,
            map: std::collections::HashMap::new(),
            next_die: 0,
            host_writes: 0,
            gc_writes: 0,
        })
    }

    /// Geometry in use.
    pub fn geometry(&self) -> &FtlGeometry {
        &self.geometry
    }

    /// Look up (or lazily create, for never-written data) the physical page
    /// of a logical page. Reads of cold data behave as if the page was
    /// pre-written, matching trace replay semantics.
    pub fn read(&mut self, logical_page: u64) -> Result<PhysPage, DeviceFull> {
        if let Some(&p) = self.map.get(&logical_page) {
            return Ok(p);
        }
        // Lazily materialize: place the page as a write without timing.
        let (p, _) = self.write(logical_page)?;
        Ok(p)
    }

    /// Physical location only if the page has been materialized.
    pub fn lookup(&self, logical_page: u64) -> Option<PhysPage> {
        self.map.get(&logical_page).copied()
    }

    /// Write a logical page: allocate a new physical page, invalidate the
    /// old mapping, and run GC if the target die ran low on free blocks.
    pub fn write(&mut self, logical_page: u64) -> Result<(PhysPage, WriteOutcome), DeviceFull> {
        let mut outcome = WriteOutcome {
            pages_programmed: 1,
            ..Default::default()
        };
        // Stripe new writes across dies round-robin; existing pages stay on
        // their die to keep the GC bookkeeping per-die.
        let die_idx = self.next_die;
        self.next_die = (self.next_die + 1) % self.geometry.dies;

        // Allocate first; only then supersede the old copy — a failed write
        // must leave the previous version intact (crash consistency).
        let phys = self.append(die_idx, logical_page).ok_or(DeviceFull)?;
        if let Some(old) = self.map.insert(logical_page, phys) {
            self.invalidate(old);
        }
        self.host_writes += 1;

        // GC if free blocks dropped below the over-provisioning floor. The
        // floor of 2 guarantees relocation during GC always has a spare
        // block to append into.
        let floor =
            ((self.geometry.blocks_per_die as f64 * self.geometry.overprovision) as usize).max(2);
        while self.dies[die_idx].free_blocks.len() < floor {
            let before = self.dies[die_idx].free_blocks.len();
            let gc = self.collect(die_idx);
            outcome.pages_relocated += gc.pages_relocated;
            outcome.pages_programmed += gc.pages_programmed;
            outcome.erases += gc.erases;
            // Stop when GC makes no net progress: either nothing is
            // collectible, or every victim is fully valid (the working set
            // exceeds usable capacity) — erasing then only churns. The
            // device keeps operating below its over-provisioning floor.
            if gc.erases == 0 || self.dies[die_idx].free_blocks.len() <= before {
                break;
            }
        }
        Ok((phys, outcome))
    }

    fn append(&mut self, die_idx: usize, logical_page: u64) -> Option<PhysPage> {
        let die = &mut self.dies[die_idx];
        if die.blocks[die.active].is_full() {
            let next = die.free_blocks.pop()?;
            die.active = next;
        }
        let block = die.active;
        let eb = &mut die.blocks[block];
        let page = eb.write_ptr;
        eb.pages[page] = PageState::Valid(logical_page);
        eb.write_ptr += 1;
        eb.valid += 1;
        Some(PhysPage {
            die: die_idx,
            block,
            page,
        })
    }

    fn invalidate(&mut self, p: PhysPage) {
        let eb = &mut self.dies[p.die].blocks[p.block];
        debug_assert!(matches!(eb.pages[p.page], PageState::Valid(_)));
        eb.pages[p.page] = PageState::Invalid;
        eb.valid -= 1;
    }

    /// Greedy GC: erase the full block with the fewest valid pages,
    /// relocating those pages first.
    fn collect(&mut self, die_idx: usize) -> WriteOutcome {
        let mut outcome = WriteOutcome::default();
        let active = self.dies[die_idx].active;
        // Victim: a full, non-active block with minimal valid count.
        let victim = {
            let die = &self.dies[die_idx];
            die.blocks
                .iter()
                .enumerate()
                .filter(|(i, b)| *i != active && b.is_full())
                .min_by_key(|(_, b)| b.valid)
                .map(|(i, _)| i)
        };
        let Some(victim) = victim else {
            return outcome;
        };

        // Relocate valid pages.
        let to_move: Vec<(usize, u64)> = self.dies[die_idx].blocks[victim]
            .pages
            .iter()
            .enumerate()
            .filter_map(|(pi, s)| match s {
                PageState::Valid(lp) => Some((pi, *lp)),
                _ => None,
            })
            .collect();
        for (pi, lp) in &to_move {
            let Some(new) = self.append(die_idx, *lp) else {
                // No room to relocate: abort the collection, leaving the
                // remaining valid pages (and the victim) untouched. The
                // already-moved pages stay at their new locations.
                return outcome;
            };
            // The old slot is now superseded.
            self.dies[die_idx].blocks[victim].pages[*pi] = PageState::Invalid;
            self.dies[die_idx].blocks[victim].valid -= 1;
            self.map.insert(*lp, new);
            self.gc_writes += 1;
            outcome.pages_relocated += 1;
            outcome.pages_programmed += 1;
        }

        // Erase the victim.
        let die = &mut self.dies[die_idx];
        die.blocks[victim] = EraseBlock::new(self.geometry.pages_per_block);
        die.free_blocks.push(victim);
        die.erases += 1;
        outcome.erases += 1;
        outcome
    }

    /// Write amplification so far: (host + GC writes) / host writes.
    pub fn write_amplification(&self) -> f64 {
        if self.host_writes == 0 {
            1.0
        } else {
            (self.host_writes + self.gc_writes) as f64 / self.host_writes as f64
        }
    }

    /// Total erase operations across dies.
    pub fn total_erases(&self) -> u64 {
        self.dies.iter().map(|d| d.erases).sum()
    }

    /// Host-issued page programs so far.
    pub fn host_writes(&self) -> u64 {
        self.host_writes
    }

    /// GC relocation page programs so far.
    pub fn gc_writes(&self) -> u64 {
        self.gc_writes
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_geometry() -> FtlGeometry {
        FtlGeometry {
            dies: 2,
            blocks_per_die: 8,
            pages_per_block: 4,
            overprovision: 0.25,
        }
    }

    #[test]
    fn overprovision_bounds_are_enforced() {
        for bad in [-0.1, 0.50001, 1.0, f64::NAN] {
            let g = FtlGeometry {
                overprovision: bad,
                ..small_geometry()
            };
            match PageMappedFtl::try_new(g) {
                Err(GeometryError::OverprovisionOutOfRange(v)) => {
                    assert!(v.is_nan() == bad.is_nan() && (v.is_nan() || v == bad));
                }
                other => panic!("overprovision {bad} accepted: {other:?}"),
            }
        }
        // Both documented endpoints are valid.
        for ok in [0.0, 0.5] {
            let g = FtlGeometry {
                overprovision: ok,
                ..small_geometry()
            };
            assert!(
                PageMappedFtl::try_new(g).is_ok(),
                "overprovision {ok} rejected"
            );
        }
    }

    #[test]
    fn empty_dimensions_are_rejected() {
        let g = FtlGeometry {
            dies: 0,
            ..small_geometry()
        };
        assert_eq!(
            PageMappedFtl::try_new(g).unwrap_err(),
            GeometryError::EmptyDimension
        );
    }

    #[test]
    #[should_panic(expected = "invalid FTL geometry")]
    fn infallible_constructor_panics_on_invalid_geometry() {
        let _ = PageMappedFtl::new(FtlGeometry {
            overprovision: 0.9,
            ..small_geometry()
        });
    }

    #[test]
    fn read_materializes_cold_pages() {
        let mut ftl = PageMappedFtl::new(small_geometry());
        assert!(ftl.lookup(42).is_none());
        let p = ftl.read(42).unwrap();
        assert_eq!(ftl.lookup(42), Some(p));
        // Stable across repeated reads.
        assert_eq!(ftl.read(42).unwrap(), p);
    }

    #[test]
    fn overwrite_moves_page_and_invalidates_old() {
        let mut ftl = PageMappedFtl::new(small_geometry());
        let (p1, _) = ftl.write(7).unwrap();
        let (p2, _) = ftl.write(7).unwrap();
        assert_ne!(p1, p2);
        assert_eq!(ftl.lookup(7), Some(p2));
    }

    #[test]
    fn sustained_overwrites_trigger_gc_not_exhaustion() {
        let mut ftl = PageMappedFtl::new(small_geometry());
        // Working set much smaller than capacity, overwritten many times:
        // GC must reclaim space indefinitely.
        for _ in 0..200u64 {
            for lp in 0..8u64 {
                ftl.write(lp).unwrap();
            }
        }
        assert!(ftl.total_erases() > 0, "GC never ran");
        assert!(ftl.write_amplification() >= 1.0);
        // All pages still readable at their latest location.
        for lp in 0..8u64 {
            assert!(ftl.lookup(lp).is_some());
        }
    }

    #[test]
    fn over_capacity_working_set_terminates() {
        // Regression: a working set larger than the usable capacity (after
        // over-provisioning) once spun GC forever — every victim was fully
        // valid, so erasing reclaimed nothing. The FTL must detect the
        // no-progress state and keep serving writes below its floor.
        let mut ftl = PageMappedFtl::new(FtlGeometry {
            dies: 1,
            blocks_per_die: 8,
            pages_per_block: 4,
            overprovision: 0.25,
        });
        // 30 live pages in 32 slots: beyond what GC can ever reclaim. Some
        // writes report DeviceFull, but the FTL must terminate and stay
        // consistent.
        let mut full_errors = 0;
        for i in 0..300u64 {
            if ftl.write(i % 30).is_err() {
                full_errors += 1;
            }
        }
        assert!(
            full_errors > 0,
            "over-capacity set must eventually report full"
        );
        // Every successfully written page is still readable.
        for lp in 0..30u64 {
            if let Some(p) = ftl.lookup(lp) {
                let _ = p;
            }
        }
    }

    #[test]
    fn mapping_stays_consistent_under_gc() {
        let mut ftl = PageMappedFtl::new(small_geometry());
        for i in 0..300u64 {
            ftl.write(i % 16).unwrap();
        }
        // Every live logical page maps to a Valid physical page holding it.
        for lp in 0..16u64 {
            let p = ftl.lookup(lp).unwrap();
            let state = ftl.dies[p.die].blocks[p.block].pages[p.page];
            assert_eq!(state, PageState::Valid(lp));
        }
    }

    #[test]
    fn write_amplification_grows_with_pressure() {
        let mut tight = PageMappedFtl::new(FtlGeometry {
            dies: 1,
            blocks_per_die: 8,
            pages_per_block: 4,
            overprovision: 0.3,
        });
        // Pseudo-random overwrites over 18 of 32 physical pages (56%
        // utilization): GC victims usually contain valid pages to relocate.
        let mut seed = 1u64;
        for _ in 0..500 {
            seed = seed
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            tight.write((seed >> 33) % 18).unwrap();
        }
        assert!(tight.write_amplification() > 1.0);
    }
}
