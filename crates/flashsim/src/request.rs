//! I/O requests and completions.

use crate::time::{Duration, SimTime, BLOCK_SIZE_BYTES};

/// Unique identifier of a request within one simulation.
pub type RequestId = u64;

/// Read or write.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum IoOp {
    Read,
    Write,
}

/// A block I/O request as seen by the array's I/O driver.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct IoRequest {
    /// Simulation-unique id.
    pub id: RequestId,
    /// Time the I/O driver issues the request.
    pub arrival: SimTime,
    /// Target device (flash module) index.
    pub device: usize,
    /// Logical block number on that device.
    pub lbn: u64,
    /// Request size in bytes (the paper aligns everything to 8 KiB).
    pub size_bytes: u32,
    /// Operation type.
    pub op: IoOp,
}

impl IoRequest {
    /// Convenience constructor for the common 8 KiB read.
    pub fn read_block(id: RequestId, arrival: SimTime, device: usize, lbn: u64) -> Self {
        IoRequest {
            id,
            arrival,
            device,
            lbn,
            size_bytes: BLOCK_SIZE_BYTES,
            op: IoOp::Read,
        }
    }

    /// Convenience constructor for the common 8 KiB write (program).
    pub fn write_block(id: RequestId, arrival: SimTime, device: usize, lbn: u64) -> Self {
        IoRequest {
            op: IoOp::Write,
            ..Self::read_block(id, arrival, device, lbn)
        }
    }

    /// Number of 8 KiB blocks this request spans.
    pub fn num_blocks(&self) -> u32 {
        self.size_bytes.div_ceil(BLOCK_SIZE_BYTES).max(1)
    }
}

/// A completed request with its timing.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Completion {
    /// The originating request.
    pub request: IoRequest,
    /// Time the device began servicing the request.
    pub service_start: SimTime,
    /// Time the response reached the I/O driver.
    pub finish: SimTime,
}

impl Completion {
    /// I/O driver response time: "the time between sending the I/O request
    /// and receiving the corresponding response" (§V-C1).
    pub fn response_time(&self) -> Duration {
        self.finish - self.request.arrival
    }

    /// Time spent queueing before service began.
    pub fn queue_delay(&self) -> Duration {
        self.service_start - self.request.arrival
    }

    /// Pure service time.
    pub fn service_time(&self) -> Duration {
        self.finish - self.service_start
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::BLOCK_READ_NS;

    #[test]
    fn read_block_defaults() {
        let r = IoRequest::read_block(1, 10, 3, 42);
        assert_eq!(r.size_bytes, BLOCK_SIZE_BYTES);
        assert_eq!(r.op, IoOp::Read);
        assert_eq!(r.num_blocks(), 1);
    }

    #[test]
    fn write_block_defaults() {
        let r = IoRequest::write_block(1, 10, 3, 42);
        assert_eq!(r.size_bytes, BLOCK_SIZE_BYTES);
        assert_eq!(r.op, IoOp::Write);
        assert_eq!(r.num_blocks(), 1);
    }

    #[test]
    fn multi_block_counts() {
        let mut r = IoRequest::read_block(1, 0, 0, 0);
        r.size_bytes = BLOCK_SIZE_BYTES * 3 - 1;
        assert_eq!(r.num_blocks(), 3);
        r.size_bytes = 1;
        assert_eq!(r.num_blocks(), 1);
    }

    #[test]
    fn completion_timing_decomposition() {
        let r = IoRequest::read_block(1, 100, 0, 0);
        let c = Completion {
            request: r,
            service_start: 250,
            finish: 250 + BLOCK_READ_NS,
        };
        assert_eq!(c.queue_delay(), 150);
        assert_eq!(c.service_time(), BLOCK_READ_NS);
        assert_eq!(c.response_time(), 150 + BLOCK_READ_NS);
    }
}
