//! Streaming response-time statistics.
//!
//! [`ResponseStats`] produces exactly the columns of the paper's Table III
//! (average, standard deviation, maximum) plus percentiles; [`IntervalStats`]
//! aggregates per trace interval for the Fig. 8/9 time-series plots.

use crate::time::{ns_to_ms, Duration};

/// Streaming statistics over response times (Welford's online algorithm for
/// numerically stable mean/variance), with optional sample retention for
/// percentile queries.
#[derive(Debug, Clone)]
pub struct ResponseStats {
    count: u64,
    mean: f64,
    m2: f64,
    max: Duration,
    min: Duration,
    samples: Option<Vec<Duration>>,
}

impl Default for ResponseStats {
    fn default() -> Self {
        Self::new()
    }
}

impl ResponseStats {
    /// Statistics without sample retention (O(1) memory).
    pub fn new() -> Self {
        ResponseStats {
            count: 0,
            mean: 0.0,
            m2: 0.0,
            max: 0,
            min: Duration::MAX,
            samples: None,
        }
    }

    /// Statistics that additionally retain every sample so percentiles can
    /// be queried.
    pub fn with_samples() -> Self {
        ResponseStats {
            samples: Some(Vec::new()),
            ..Self::new()
        }
    }

    /// Record one response time (nanoseconds).
    pub fn record(&mut self, ns: Duration) {
        self.count += 1;
        let x = ns as f64;
        let delta = x - self.mean;
        self.mean += delta / self.count as f64;
        self.m2 += delta * (x - self.mean);
        self.max = self.max.max(ns);
        self.min = self.min.min(ns);
        if let Some(s) = &mut self.samples {
            s.push(ns);
        }
    }

    /// Merge another statistics object into this one (parallel reduction).
    pub fn merge(&mut self, other: &ResponseStats) {
        if other.count == 0 {
            return;
        }
        if self.count == 0 {
            *self = other.clone();
            return;
        }
        let n1 = self.count as f64;
        let n2 = other.count as f64;
        let delta = other.mean - self.mean;
        let total = n1 + n2;
        self.mean += delta * n2 / total;
        self.m2 += other.m2 + delta * delta * n1 * n2 / total;
        self.count += other.count;
        self.max = self.max.max(other.max);
        self.min = self.min.min(other.min);
        if let (Some(a), Some(b)) = (&mut self.samples, &other.samples) {
            a.extend_from_slice(b);
        }
    }

    /// Number of recorded samples.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Mean in nanoseconds.
    pub fn mean_ns(&self) -> f64 {
        self.mean
    }

    /// Population standard deviation in nanoseconds.
    pub fn std_ns(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            (self.m2 / self.count as f64).sqrt()
        }
    }

    /// Maximum in nanoseconds (0 when empty).
    pub fn max_ns(&self) -> Duration {
        if self.count == 0 {
            0
        } else {
            self.max
        }
    }

    /// Minimum in nanoseconds (0 when empty).
    pub fn min_ns(&self) -> Duration {
        if self.count == 0 {
            0
        } else {
            self.min
        }
    }

    /// Mean in milliseconds — the unit of Table III.
    pub fn mean_ms(&self) -> f64 {
        self.mean / 1e6
    }

    /// Standard deviation in milliseconds.
    pub fn std_ms(&self) -> f64 {
        self.std_ns() / 1e6
    }

    /// Maximum in milliseconds.
    pub fn max_ms(&self) -> f64 {
        ns_to_ms(self.max_ns())
    }

    /// `p`-th percentile (0.0–1.0) in nanoseconds. Requires sample
    /// retention; returns `None` otherwise.
    pub fn percentile_ns(&self, p: f64) -> Option<Duration> {
        let s = self.samples.as_ref()?;
        if s.is_empty() {
            return None;
        }
        let mut sorted = s.clone();
        sorted.sort_unstable();
        let idx = ((p.clamp(0.0, 1.0)) * (sorted.len() - 1) as f64).round() as usize;
        Some(sorted[idx])
    }
}

/// Per-interval aggregation used by the real-workload experiments: each
/// trace interval gets its own [`ResponseStats`] plus delay accounting.
#[derive(Debug, Clone, Default)]
pub struct IntervalStats {
    /// Response stats per interval index.
    pub response: Vec<ResponseStats>,
    /// Total requests per interval.
    pub requests: Vec<u64>,
    /// Requests delayed by admission control per interval.
    pub delayed: Vec<u64>,
    /// Sum of delay amounts (ns) per interval.
    pub delay_sum_ns: Vec<u128>,
}

impl IntervalStats {
    /// New aggregation over `intervals` intervals.
    pub fn new(intervals: usize) -> Self {
        IntervalStats {
            response: (0..intervals).map(|_| ResponseStats::new()).collect(),
            requests: vec![0; intervals],
            delayed: vec![0; intervals],
            delay_sum_ns: vec![0; intervals],
        }
    }

    /// Record a completed request in `interval` with the given response time
    /// and the delay (0 if the request was not delayed).
    pub fn record(&mut self, interval: usize, response_ns: Duration, delay_ns: Duration) {
        self.grow_to(interval + 1);
        self.response[interval].record(response_ns);
        self.requests[interval] += 1;
        if delay_ns > 0 {
            self.delayed[interval] += 1;
            self.delay_sum_ns[interval] += delay_ns as u128;
        }
    }

    fn grow_to(&mut self, n: usize) {
        while self.response.len() < n {
            self.response.push(ResponseStats::new());
            self.requests.push(0);
            self.delayed.push(0);
            self.delay_sum_ns.push(0);
        }
    }

    /// Number of intervals.
    pub fn num_intervals(&self) -> usize {
        self.response.len()
    }

    /// Percentage of delayed requests in an interval (0–100).
    pub fn delayed_pct(&self, interval: usize) -> f64 {
        if self.requests[interval] == 0 {
            0.0
        } else {
            100.0 * self.delayed[interval] as f64 / self.requests[interval] as f64
        }
    }

    /// Average delay amount (ms) over the *delayed* requests of an interval
    /// (the paper's Fig. 8(c) metric).
    pub fn avg_delay_ms(&self, interval: usize) -> f64 {
        if self.delayed[interval] == 0 {
            0.0
        } else {
            self.delay_sum_ns[interval] as f64 / self.delayed[interval] as f64 / 1e6
        }
    }

    /// Overall percentage of delayed requests.
    pub fn total_delayed_pct(&self) -> f64 {
        let total: u64 = self.requests.iter().sum();
        let delayed: u64 = self.delayed.iter().sum();
        if total == 0 {
            0.0
        } else {
            100.0 * delayed as f64 / total as f64
        }
    }

    /// Overall average delay (ms) over delayed requests.
    pub fn total_avg_delay_ms(&self) -> f64 {
        let delayed: u64 = self.delayed.iter().sum();
        if delayed == 0 {
            return 0.0;
        }
        let sum: u128 = self.delay_sum_ns.iter().sum();
        sum as f64 / delayed as f64 / 1e6
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_stats_are_zero() {
        let s = ResponseStats::new();
        assert_eq!(s.count(), 0);
        assert_eq!(s.mean_ns(), 0.0);
        assert_eq!(s.std_ns(), 0.0);
        assert_eq!(s.max_ns(), 0);
    }

    #[test]
    fn known_values() {
        let mut s = ResponseStats::new();
        for x in [2u64, 4, 4, 4, 5, 5, 7, 9] {
            s.record(x);
        }
        assert!((s.mean_ns() - 5.0).abs() < 1e-9);
        assert!((s.std_ns() - 2.0).abs() < 1e-9);
        assert_eq!(s.max_ns(), 9);
        assert_eq!(s.min_ns(), 2);
    }

    #[test]
    fn merge_equals_sequential() {
        let xs: Vec<u64> = (0..1000).map(|i| (i * 7919) % 100_000).collect();
        let mut whole = ResponseStats::new();
        for &x in &xs {
            whole.record(x);
        }
        let mut a = ResponseStats::new();
        let mut b = ResponseStats::new();
        for &x in &xs[..300] {
            a.record(x);
        }
        for &x in &xs[300..] {
            b.record(x);
        }
        a.merge(&b);
        assert_eq!(a.count(), whole.count());
        assert!((a.mean_ns() - whole.mean_ns()).abs() < 1e-6);
        assert!((a.std_ns() - whole.std_ns()).abs() < 1e-6);
        assert_eq!(a.max_ns(), whole.max_ns());
    }

    #[test]
    fn percentiles_require_samples() {
        let mut s = ResponseStats::new();
        s.record(5);
        assert!(s.percentile_ns(0.5).is_none());

        let mut s = ResponseStats::with_samples();
        for x in 1..=100u64 {
            s.record(x);
        }
        assert_eq!(s.percentile_ns(0.0), Some(1));
        assert_eq!(s.percentile_ns(1.0), Some(100));
        let median = s.percentile_ns(0.5).unwrap();
        assert!((49..=52).contains(&median));
    }

    #[test]
    fn interval_stats_delay_accounting() {
        let mut is = IntervalStats::new(2);
        is.record(0, 100, 0);
        is.record(0, 200, 50);
        is.record(1, 300, 0);
        assert_eq!(is.delayed_pct(0), 50.0);
        assert_eq!(is.delayed_pct(1), 0.0);
        assert!((is.avg_delay_ms(0) - 50.0 / 1e6).abs() < 1e-12);
        assert!((is.total_delayed_pct() - 100.0 / 3.0).abs() < 1e-9);
    }

    #[test]
    fn interval_stats_grows_on_demand() {
        let mut is = IntervalStats::new(1);
        is.record(5, 10, 0);
        assert_eq!(is.num_intervals(), 6);
        assert_eq!(is.requests[5], 1);
    }
}
