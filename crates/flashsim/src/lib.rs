//! Event-driven flash array simulator — the repo's substitute for
//! DiskSim 4.0 + the Microsoft Research SSD extension used by the paper.
//!
//! The paper's experiments depend on exactly one calibrated fact: *"a single
//! read request (one block = 8 KB) takes 0.132507 milliseconds"* on a flash
//! module, and requests queue FCFS per device. [`CalibratedSsd`] reproduces
//! that model bit-for-bit ([`time::BLOCK_READ_NS`]). For sensitivity studies
//! the crate also ships [`flash::FlashModule`], a page-level model with
//! dies, planes, a shared channel and a page-mapped FTL with greedy garbage
//! collection (latency defaults from Agrawal et al., USENIX ATC'08 — the
//! same parameter source the MSR extension uses).
//!
//! # Architecture
//!
//! * [`time`] — nanosecond-resolution simulated clock.
//! * [`request`] — I/O requests and completions (I/O *driver* response time,
//!   the metric of Table III).
//! * [`device`] — the [`device::Device`] trait + [`CalibratedSsd`].
//! * [`flash`] — the page-level flash module model.
//! * [`ftl`] — page-mapped flash translation layer with GC.
//! * [`hdd`] — a mechanical disk model (seek + rotation), demonstrating
//!   §II-A's point that HDD arrays cannot hold deterministic guarantees.
//! * [`array`] — an array of `N` devices behind a controller.
//! * [`engine`] — a small generic discrete-event queue.
//! * [`stats`] — streaming response-time statistics (avg/std/max, exactly
//!   the columns of Table III) and per-interval aggregation.
//!
//! # Example
//!
//! ```
//! use fqos_flashsim::{FlashArray, IoRequest, BLOCK_READ_NS};
//!
//! let mut array = FlashArray::calibrated(9);
//! // Two reads on different devices at t = 0: both finish in one read time.
//! let c0 = array.submit(&IoRequest::read_block(0, 0, 0, 42), 0);
//! let c1 = array.submit(&IoRequest::read_block(1, 0, 3, 43), 0);
//! assert_eq!(c0.response_time(), BLOCK_READ_NS);
//! assert_eq!(c1.response_time(), BLOCK_READ_NS);
//! // A second read on the same device queues behind the first.
//! let c2 = array.submit(&IoRequest::read_block(2, 0, 0, 44), 0);
//! assert_eq!(c2.response_time(), 2 * BLOCK_READ_NS);
//! ```

pub mod array;
pub mod device;
pub mod engine;
pub mod flash;
pub mod ftl;
pub mod hdd;
pub mod request;
pub mod stats;
pub mod time;

pub use array::{ArrayConfig, FlashArray, SimulationResult};
pub use device::{CalibratedSsd, Device, GcStats};
pub use flash::{FlashConfig, FlashModule};
pub use ftl::{FtlGeometry, GeometryError, PageMappedFtl, WriteOutcome};
pub use hdd::{HardDisk, HddConfig};
pub use request::{Completion, IoOp, IoRequest, RequestId};
pub use stats::{IntervalStats, ResponseStats};
pub use time::{Duration, SimTime, BLOCK_READ_NS, BLOCK_SIZE_BYTES};
