//! A mechanical hard-disk device model.
//!
//! §II-A of the paper argues that HDD arrays can only offer *best-effort*
//! service because of "variable delays caused by mechanical process of
//! accessing disk data such as rotational delay, seek time, head/cylinder
//! switch time". This model exists to demonstrate that claim inside the
//! same simulator: identical schedules that are deterministic on flash
//! become position-dependent on an HDD.
//!
//! The timing model is the classical one used by DiskSim-style simulators:
//!
//! * **seek** — `a + b·√d` for a d-cylinder move (zero for same cylinder);
//! * **rotation** — the head waits for the target sector under a constant
//!   angular velocity spindle (position advances continuously with time);
//! * **transfer** — one block time at the track's streaming rate.
//!
//! Defaults approximate a 15 kRPM enterprise disk (the "performance of HDD
//! was limited by 15K RPM disks over years" remark).

use crate::device::Device;
use crate::request::{Completion, IoRequest};
use crate::time::{Duration, SimTime};

/// Geometry and timing parameters of the disk model.
#[derive(Debug, Clone, Copy)]
pub struct HddConfig {
    /// Number of cylinders.
    pub cylinders: u64,
    /// 8 KiB blocks per track.
    pub blocks_per_track: u64,
    /// Spindle speed in RPM.
    pub rpm: u64,
    /// Fixed seek overhead (head settle), ns.
    pub seek_base_ns: Duration,
    /// Seek distance coefficient: `seek = base + coef·√cylinders`, ns.
    pub seek_coef_ns: f64,
}

impl Default for HddConfig {
    fn default() -> Self {
        // 15 kRPM: 4 ms/revolution; typical short-seek ≈ 0.5–4 ms.
        HddConfig {
            cylinders: 50_000,
            blocks_per_track: 64,
            rpm: 15_000,
            seek_base_ns: 400_000,
            seek_coef_ns: 15_000.0,
        }
    }
}

impl HddConfig {
    /// One full revolution, ns.
    pub fn revolution_ns(&self) -> Duration {
        60_000_000_000 / self.rpm
    }

    /// Time to read one block off the platter.
    pub fn block_transfer_ns(&self) -> Duration {
        self.revolution_ns() / self.blocks_per_track
    }
}

/// A single mechanical disk with FCFS queueing.
#[derive(Debug, Clone)]
pub struct HardDisk {
    config: HddConfig,
    busy_until: SimTime,
    head_cylinder: u64,
}

impl HardDisk {
    /// New disk with head parked at cylinder 0.
    pub fn new(config: HddConfig) -> Self {
        HardDisk {
            config,
            busy_until: 0,
            head_cylinder: 0,
        }
    }

    /// The configuration.
    pub fn config(&self) -> &HddConfig {
        &self.config
    }

    fn locate(&self, lbn: u64) -> (u64, u64) {
        // Simple linear mapping: LBN → (cylinder, sector-in-track).
        let track = lbn / self.config.blocks_per_track;
        let sector = lbn % self.config.blocks_per_track;
        (track % self.config.cylinders, sector)
    }

    fn seek_time(&self, from: u64, to: u64) -> Duration {
        if from == to {
            return 0;
        }
        let d = from.abs_diff(to) as f64;
        self.config.seek_base_ns + (self.config.seek_coef_ns * d.sqrt()) as Duration
    }

    /// Rotational wait: the platter angle is `time mod revolution`, and the
    /// target sector's angle is `sector / blocks_per_track` of a turn.
    fn rotational_wait(&self, at: SimTime, sector: u64) -> Duration {
        let rev = self.config.revolution_ns();
        let now_angle = at % rev;
        let target_angle = sector * rev / self.config.blocks_per_track;
        if target_angle >= now_angle {
            target_angle - now_angle
        } else {
            rev - (now_angle - target_angle)
        }
    }
}

impl Default for HardDisk {
    fn default() -> Self {
        Self::new(HddConfig::default())
    }
}

impl Device for HardDisk {
    fn submit(&mut self, req: &IoRequest, now: SimTime) -> Completion {
        debug_assert!(now >= req.arrival);
        let service_start = self.busy_until.max(now);
        let (cyl, sector) = self.locate(req.lbn);
        let seek = self.seek_time(self.head_cylinder, cyl);
        let after_seek = service_start + seek;
        let rot = self.rotational_wait(after_seek, sector);
        let transfer = self.config.block_transfer_ns() * req.num_blocks() as Duration;
        let finish = after_seek + rot + transfer;
        self.head_cylinder = cyl;
        self.busy_until = finish;
        Completion {
            request: *req,
            service_start,
            finish,
        }
    }

    fn next_free(&self, now: SimTime) -> SimTime {
        self.busy_until.max(now)
    }

    fn reset(&mut self) {
        self.busy_until = 0;
        self.head_cylinder = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::request::IoRequest;

    #[test]
    fn revolution_math() {
        let c = HddConfig::default();
        assert_eq!(c.revolution_ns(), 4_000_000); // 15 kRPM = 4 ms
        assert_eq!(c.block_transfer_ns(), 62_500);
    }

    #[test]
    fn sequential_reads_are_fast() {
        // Same track, consecutive sectors: no seek, minimal rotation.
        let mut d = HardDisk::default();
        let c1 = d.submit(&IoRequest::read_block(1, 0, 0, 0), 0);
        let c2 = d.submit(&IoRequest::read_block(2, 0, 0, 1), 0);
        // The second block is adjacent: it streams right after the first.
        assert_eq!(c2.finish - c1.finish, d.config.block_transfer_ns());
    }

    #[test]
    fn random_reads_pay_seek_and_rotation() {
        let mut d = HardDisk::default();
        let far = 40_000 * d.config.blocks_per_track; // distant cylinder
        let c = d.submit(&IoRequest::read_block(1, 0, 0, far), 0);
        assert!(
            c.service_time() > 1_000_000,
            "far read took {} ns",
            c.service_time()
        );
    }

    #[test]
    fn service_time_is_position_dependent() {
        // The same request sequence with different layouts yields different
        // times — the unpredictability that rules out HDD guarantees.
        let run = |lbns: &[u64]| {
            let mut d = HardDisk::default();
            let mut total = 0;
            for (i, &lbn) in lbns.iter().enumerate() {
                total += d
                    .submit(&IoRequest::read_block(i as u64, 0, 0, lbn), 0)
                    .service_time();
            }
            total
        };
        let sequential = run(&[0, 1, 2, 3]);
        let random = run(&[0, 2_000_000, 64, 1_500_000]);
        assert!(
            random > 3 * sequential,
            "random {random} vs sequential {sequential}"
        );
    }

    #[test]
    fn variance_vs_flash_is_dramatic() {
        use crate::device::CalibratedSsd;
        use crate::stats::ResponseStats;
        // Identical random workload through both devices.
        let mut lbns = Vec::new();
        let mut state = 3u64;
        for _ in 0..200 {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            lbns.push((state >> 33) % 3_000_000);
        }
        let mut hdd_stats = ResponseStats::new();
        let mut ssd_stats = ResponseStats::new();
        let mut hdd = HardDisk::default();
        let mut ssd = CalibratedSsd::new();
        let mut t = 0;
        for (i, &lbn) in lbns.iter().enumerate() {
            t += 20_000_000; // spaced out: no queueing, pure service
            let r = IoRequest::read_block(i as u64, t, 0, lbn);
            hdd_stats.record(hdd.submit(&r, t).response_time());
            ssd_stats.record(ssd.submit(&r, t).response_time());
        }
        // Flash: zero variance. HDD: milliseconds of spread.
        assert_eq!(ssd_stats.std_ns(), 0.0);
        assert!(hdd_stats.std_ns() > 500_000.0);
        assert!(hdd_stats.max_ns() > 2 * hdd_stats.min_ns());
    }
}
