//! A small generic discrete-event queue.
//!
//! Events fire in time order; ties are broken FIFO (by insertion sequence),
//! which keeps trace-driven simulations deterministic.

use crate::time::SimTime;
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// A time-ordered event queue with deterministic FIFO tie-breaking.
#[derive(Debug, Clone)]
pub struct EventQueue<T> {
    heap: BinaryHeap<Reverse<(SimTime, u64)>>,
    payloads: Vec<Option<T>>,
    free: Vec<usize>,
    seq: u64,
}

impl<T> Default for EventQueue<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T> EventQueue<T> {
    /// Create an empty queue.
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            payloads: Vec::new(),
            free: Vec::new(),
            seq: 0,
        }
    }

    /// Schedule `payload` to fire at `time`.
    pub fn push(&mut self, time: SimTime, payload: T) {
        let slot = match self.free.pop() {
            Some(s) => {
                self.payloads[s] = Some(payload);
                s
            }
            None => {
                self.payloads.push(Some(payload));
                self.payloads.len() - 1
            }
        };
        // Sequence in the low bits keeps (time, insertion order) ordering
        // while letting the heap key stay a simple tuple.
        let key = (time, (self.seq << 32) | slot as u64);
        self.seq += 1;
        self.heap.push(Reverse(key));
    }

    /// Remove and return the earliest event.
    pub fn pop(&mut self) -> Option<(SimTime, T)> {
        let Reverse((time, packed)) = self.heap.pop()?;
        let slot = (packed & 0xFFFF_FFFF) as usize;
        let payload = self.payloads[slot].take().expect("event slot must be live");
        self.free.push(slot);
        Some((time, payload))
    }

    /// Time of the next event without removing it.
    pub fn peek_time(&self) -> Option<SimTime> {
        self.heap.peek().map(|Reverse((t, _))| *t)
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// True if no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.push(30, "c");
        q.push(10, "a");
        q.push(20, "b");
        assert_eq!(q.pop(), Some((10, "a")));
        assert_eq!(q.pop(), Some((20, "b")));
        assert_eq!(q.pop(), Some((30, "c")));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn ties_break_fifo() {
        let mut q = EventQueue::new();
        for i in 0..100 {
            q.push(5, i);
        }
        for i in 0..100 {
            assert_eq!(q.pop(), Some((5, i)));
        }
    }

    #[test]
    fn slots_are_recycled() {
        let mut q = EventQueue::new();
        for round in 0..10 {
            for i in 0..8 {
                q.push(round * 10 + i, i);
            }
            for _ in 0..8 {
                q.pop();
            }
        }
        // Payload storage stays bounded by the max concurrent events.
        assert!(q.payloads.len() <= 8);
    }

    #[test]
    fn peek_does_not_remove() {
        let mut q = EventQueue::new();
        q.push(7, ());
        assert_eq!(q.peek_time(), Some(7));
        assert_eq!(q.len(), 1);
        assert!(!q.is_empty());
    }
}
