//! Property-based tests for the mechanical disk model.

use fqos_flashsim::device::Device;
use fqos_flashsim::hdd::{HardDisk, HddConfig};
use fqos_flashsim::IoRequest;
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Causality and FCFS: completions never precede arrivals and never
    /// overlap on the single head.
    #[test]
    fn hdd_causality_and_fcfs(
        gaps in prop::collection::vec(0u64..20_000_000, 1..40),
        lbns in prop::collection::vec(0u64..3_000_000, 1..40),
    ) {
        let mut d = HardDisk::default();
        let mut t = 0u64;
        let mut prev_finish = 0u64;
        let n = gaps.len().min(lbns.len());
        for i in 0..n {
            t += gaps[i];
            let c = d.submit(&IoRequest::read_block(i as u64, t, 0, lbns[i]), t);
            prop_assert!(c.service_start >= t);
            prop_assert!(c.finish > c.service_start);
            prop_assert!(c.service_start >= prev_finish);
            prev_finish = c.finish;
        }
    }

    /// Service time is bounded: at most max-seek + one revolution + the
    /// transfer, and at least the transfer.
    #[test]
    fn hdd_service_time_bounds(lbn in 0u64..10_000_000) {
        let cfg = HddConfig::default();
        let mut d = HardDisk::new(cfg);
        let c = d.submit(&IoRequest::read_block(1, 0, 0, lbn), 0);
        let max_seek = cfg.seek_base_ns + (cfg.seek_coef_ns * (cfg.cylinders as f64).sqrt()) as u64;
        let upper = max_seek + cfg.revolution_ns() + cfg.block_transfer_ns();
        prop_assert!(c.service_time() >= cfg.block_transfer_ns());
        prop_assert!(c.service_time() <= upper, "service {} > bound {upper}", c.service_time());
    }

    /// Determinism: the same request sequence yields identical timings.
    #[test]
    fn hdd_is_deterministic(lbns in prop::collection::vec(0u64..1_000_000, 1..30)) {
        let run = |lbns: &[u64]| -> Vec<u64> {
            let mut d = HardDisk::default();
            lbns.iter()
                .enumerate()
                .map(|(i, &lbn)| d.submit(&IoRequest::read_block(i as u64, 0, 0, lbn), 0).finish)
                .collect()
        };
        prop_assert_eq!(run(&lbns), run(&lbns));
    }

    /// Reset really restores the initial state.
    #[test]
    fn hdd_reset_restores_state(lbns in prop::collection::vec(0u64..1_000_000, 1..20)) {
        let mut d = HardDisk::default();
        let fresh: Vec<u64> = {
            let mut d2 = HardDisk::default();
            lbns.iter()
                .enumerate()
                .map(|(i, &l)| d2.submit(&IoRequest::read_block(i as u64, 0, 0, l), 0).finish)
                .collect()
        };
        for (i, &l) in lbns.iter().enumerate() {
            d.submit(&IoRequest::read_block(i as u64, 0, 0, l), 0);
        }
        d.reset();
        let after: Vec<u64> = lbns
            .iter()
            .enumerate()
            .map(|(i, &l)| d.submit(&IoRequest::read_block(i as u64, 0, 0, l), 0).finish)
            .collect();
        prop_assert_eq!(fresh, after);
    }
}
