//! Property-based tests of the simulator's timing invariants.

use fqos_flashsim::{
    device::Device, flash::FlashModule, stats::ResponseStats, CalibratedSsd, FlashArray, IoRequest,
    BLOCK_READ_NS,
};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Response time is always at least the pure service time and completions
    /// on one device never overlap.
    #[test]
    fn calibrated_device_timing_invariants(
        gaps in prop::collection::vec(0u64..300_000, 1..60),
    ) {
        let mut dev = CalibratedSsd::new();
        let mut t = 0u64;
        let mut prev_finish = 0u64;
        for (i, gap) in gaps.iter().enumerate() {
            t += gap;
            let r = IoRequest::read_block(i as u64, t, 0, i as u64);
            let c = dev.submit(&r, t);
            prop_assert!(c.response_time() >= BLOCK_READ_NS);
            prop_assert!(c.service_start >= t);
            prop_assert!(c.service_start >= prev_finish); // FCFS, no overlap
            prop_assert_eq!(c.finish, c.service_start + BLOCK_READ_NS);
            prev_finish = c.finish;
        }
    }

    /// Work-conservation: total busy time equals requests × service time, so
    /// the last finish is bounded by arrival span + backlog.
    #[test]
    fn calibrated_device_is_work_conserving(
        gaps in prop::collection::vec(0u64..200_000, 1..50),
    ) {
        let mut dev = CalibratedSsd::new();
        let mut t = 0u64;
        let n = gaps.len() as u64;
        let mut last_finish = 0;
        for (i, gap) in gaps.iter().enumerate() {
            t += gap;
            let c = dev.submit(&IoRequest::read_block(i as u64, t, 0, 0), t);
            last_finish = c.finish;
        }
        // Never finishes later than "all arrivals at t=0 then serial".
        prop_assert!(last_finish <= t + n * BLOCK_READ_NS);
        // Never finishes earlier than one service after the last arrival.
        prop_assert!(last_finish >= t + BLOCK_READ_NS);
    }

    /// Replaying a trace records exactly one completion per request, and
    /// per-device completions are disjoint in time.
    #[test]
    fn array_replay_conservation(
        reqs in prop::collection::vec((0u64..1_000_000, 0usize..5, 0u64..64), 1..80),
    ) {
        let mut sorted = reqs.clone();
        sorted.sort_by_key(|r| r.0);
        let trace: Vec<IoRequest> = sorted
            .iter()
            .enumerate()
            .map(|(i, &(t, d, lbn))| IoRequest::read_block(i as u64, t, d, lbn))
            .collect();
        let mut arr = FlashArray::calibrated(5);
        let result = arr.replay(trace.clone());
        prop_assert_eq!(result.completions.len(), trace.len());

        // Per-device service intervals must not overlap.
        for d in 0..5 {
            let mut intervals: Vec<(u64, u64)> = result
                .completions
                .iter()
                .filter(|c| c.request.device == d)
                .map(|c| (c.service_start, c.finish))
                .collect();
            intervals.sort_unstable();
            for w in intervals.windows(2) {
                prop_assert!(w[0].1 <= w[1].0, "overlap on device {d}: {w:?}");
            }
        }
    }

    /// The page-level flash model also never violates causality, and is
    /// monotone: a request submitted later never finishes earlier on the
    /// same module.
    #[test]
    fn flash_module_causality(
        gaps in prop::collection::vec(0u64..400_000, 1..40),
        lbns in prop::collection::vec(0u64..32, 1..40),
    ) {
        let mut m = FlashModule::default();
        let mut t = 0u64;
        let mut prev_finish = 0u64;
        let n = gaps.len().min(lbns.len());
        for i in 0..n {
            t += gaps[i];
            let c = m.submit(&IoRequest::read_block(i as u64, t, 0, lbns[i]), t);
            prop_assert!(c.finish > t);
            prop_assert!(c.finish >= prev_finish, "later submit finished earlier");
            prev_finish = c.finish;
        }
    }

    /// Merged statistics equal whole-stream statistics for arbitrary splits.
    #[test]
    fn stats_merge_associativity(
        xs in prop::collection::vec(0u64..10_000_000, 1..200),
        split in 0usize..200,
    ) {
        let split = split % xs.len();
        let mut whole = ResponseStats::new();
        for &x in &xs { whole.record(x); }
        let mut a = ResponseStats::new();
        let mut b = ResponseStats::new();
        for &x in &xs[..split] { a.record(x); }
        for &x in &xs[split..] { b.record(x); }
        a.merge(&b);
        prop_assert_eq!(a.count(), whole.count());
        prop_assert!((a.mean_ns() - whole.mean_ns()).abs() < 1e-6 * whole.mean_ns().max(1.0));
        prop_assert!((a.std_ns() - whole.std_ns()).abs() < 1e-6 * whole.std_ns().max(1.0));
        prop_assert_eq!(a.max_ns(), whole.max_ns());
    }
}
