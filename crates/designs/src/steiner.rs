//! Constructions of Steiner triple systems `STS(v)` — `(v, 3, 1)` designs.
//!
//! An `STS(v)` exists iff `v ≡ 1 or 3 (mod 6)`. We implement the two
//! classical direct constructions used by the declustering literature:
//!
//! * **Bose** (1939) for `v = 6t + 3`;
//! * **Netto / difference-family** for prime `v = 6t + 1`.
//!
//! Together these cover every device count the paper's catalog needs
//! (`v ∈ {7, 9, 13, 15, 19, 21, 27, 31, 33, 37, 39, 43, ...}`).

use crate::design::Design;
use crate::error::DesignError;

/// Construct an `STS(v)` for any admissible `v` for which a construction is
/// implemented.
pub fn steiner_triple_system(v: usize) -> Result<Design, DesignError> {
    if v < 3 {
        return Err(DesignError::Inadmissible {
            v,
            k: 3,
            lambda: 1,
            reason: "v must be >= 3",
        });
    }
    match v % 6 {
        3 => Ok(bose(v)),
        1 => {
            if is_prime(v) {
                Ok(netto(v))
            } else {
                // Composite v ≡ 1 (mod 6): an STS exists but needs recursive
                // constructions we do not implement (v = 25 is the smallest).
                Err(DesignError::NoKnownConstruction { v, k: 3, lambda: 1 })
            }
        }
        _ => Err(DesignError::Inadmissible {
            v,
            k: 3,
            lambda: 1,
            reason: "STS(v) exists only for v ≡ 1 or 3 (mod 6)",
        }),
    }
}

/// Bose construction of `STS(6t + 3)`.
///
/// Points are `Z_{2t+1} × {0, 1, 2}`, encoded as `point = 3·i + level`.
/// Blocks:
///
/// * `{(i,0), (i,1), (i,2)}` for every `i`;
/// * `{(i,ℓ), (j,ℓ), ((i+j)/2, ℓ+1 mod 3)}` for every `i < j` and level `ℓ`,
///   where division by 2 is in `Z_{2t+1}` (odd modulus, so 2 is invertible).
pub fn bose(v: usize) -> Design {
    assert_eq!(v % 6, 3, "Bose construction requires v ≡ 3 (mod 6)");
    let n = v / 3; // 2t + 1, odd
    let inv2 = n.div_ceil(2); // inverse of 2 mod n
    let enc = |i: usize, level: usize| 3 * i + level;

    let mut blocks = Vec::with_capacity(v * (v - 1) / 6);
    for i in 0..n {
        blocks.push(vec![enc(i, 0), enc(i, 1), enc(i, 2)]);
    }
    for i in 0..n {
        for j in (i + 1)..n {
            let mid = ((i + j) * inv2) % n;
            for level in 0..3 {
                blocks.push(vec![
                    enc(i, level),
                    enc(j, level),
                    enc(mid, (level + 1) % 3),
                ]);
            }
        }
    }
    Design::new_unchecked(v, 3, 1, blocks)
}

/// Netto construction of `STS(v)` for prime `v = 6t + 1`.
///
/// Let `g` be a primitive root of `Z_v` and `t = (v−1)/6`. The base blocks
/// `{g^i, g^{i+2t}, g^{i+4t}}` for `i = 0..t` form a difference family; each
/// is developed (translated) through `Z_v` to produce all `t·v` blocks.
pub fn netto(v: usize) -> Design {
    assert_eq!(v % 6, 1, "Netto construction requires v ≡ 1 (mod 6)");
    assert!(is_prime(v), "Netto construction requires prime v");
    let t = (v - 1) / 6;
    let g = primitive_root(v);

    let mut base_blocks = Vec::with_capacity(t);
    for i in 0..t {
        base_blocks.push(vec![
            pow_mod(g, i, v),
            pow_mod(g, i + 2 * t, v),
            pow_mod(g, i + 4 * t, v),
        ]);
    }
    crate::difference::develop(v, 3, 1, &base_blocks)
}

/// Deterministic Miller–Rabin primality test, exact for all `u64`.
pub fn is_prime(n: usize) -> bool {
    let n = n as u64;
    if n < 2 {
        return false;
    }
    for p in [2u64, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37] {
        if n.is_multiple_of(p) {
            return n == p;
        }
    }
    let mut d = n - 1;
    let mut s = 0;
    while d.is_multiple_of(2) {
        d /= 2;
        s += 1;
    }
    // Witnesses proven sufficient for all n < 3.3 * 10^24.
    'witness: for a in [2u64, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37] {
        let mut x = pow_mod_u64(a % n, d, n);
        if x == 1 || x == n - 1 {
            continue;
        }
        for _ in 0..s - 1 {
            x = mul_mod(x, x, n);
            if x == n - 1 {
                continue 'witness;
            }
        }
        return false;
    }
    true
}

/// Find the smallest primitive root of a prime `p`.
pub fn primitive_root(p: usize) -> usize {
    let phi = p - 1;
    let factors = prime_factors(phi);
    'candidate: for g in 2..p {
        for &f in &factors {
            if pow_mod(g, phi / f, p) == 1 {
                continue 'candidate;
            }
        }
        return g;
    }
    unreachable!("every prime has a primitive root");
}

fn prime_factors(mut n: usize) -> Vec<usize> {
    let mut factors = Vec::new();
    let mut d = 2;
    while d * d <= n {
        if n.is_multiple_of(d) {
            factors.push(d);
            while n.is_multiple_of(d) {
                n /= d;
            }
        }
        d += 1;
    }
    if n > 1 {
        factors.push(n);
    }
    factors
}

fn pow_mod(base: usize, exp: usize, modulus: usize) -> usize {
    pow_mod_u64(base as u64 % modulus as u64, exp as u64, modulus as u64) as usize
}

fn pow_mod_u64(mut base: u64, mut exp: u64, modulus: u64) -> u64 {
    let mut acc = 1u64;
    base %= modulus;
    while exp > 0 {
        if exp & 1 == 1 {
            acc = mul_mod(acc, base, modulus);
        }
        base = mul_mod(base, base, modulus);
        exp >>= 1;
    }
    acc
}

#[inline]
fn mul_mod(a: u64, b: u64, m: u64) -> u64 {
    ((a as u128 * b as u128) % m as u128) as u64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bose_9_is_valid() {
        let d = bose(9);
        d.verify().unwrap();
        assert_eq!(d.num_blocks(), 12);
    }

    #[test]
    fn bose_15_21_27_are_valid() {
        for v in [15, 21, 27, 33, 39] {
            let d = bose(v);
            d.verify().unwrap_or_else(|e| panic!("STS({v}): {e}"));
            assert_eq!(d.num_blocks(), v * (v - 1) / 6);
        }
    }

    #[test]
    fn netto_7_is_fano() {
        let d = netto(7);
        d.verify().unwrap();
        assert_eq!(d.num_blocks(), 7);
    }

    #[test]
    fn netto_13_19_31_are_valid() {
        for v in [13, 19, 31, 37, 43] {
            let d = netto(v);
            d.verify().unwrap_or_else(|e| panic!("STS({v}): {e}"));
            assert_eq!(d.num_blocks(), v * (v - 1) / 6);
        }
    }

    #[test]
    fn sts_dispatcher_covers_both_residues() {
        assert_eq!(steiner_triple_system(9).unwrap().num_blocks(), 12);
        assert_eq!(steiner_triple_system(13).unwrap().num_blocks(), 26);
        assert!(steiner_triple_system(11).is_err()); // 11 ≡ 5 (mod 6)
        assert!(steiner_triple_system(25).is_err()); // composite ≡ 1 (mod 6)
    }

    #[test]
    fn primality_basics() {
        assert!(is_prime(2));
        assert!(is_prime(13));
        assert!(is_prime(1_000_003));
        assert!(!is_prime(1));
        assert!(!is_prime(25));
        assert!(!is_prime(561)); // Carmichael number
    }

    #[test]
    fn primitive_roots() {
        assert_eq!(primitive_root(7), 3);
        assert_eq!(primitive_root(13), 2);
        // Check order of the returned root is p-1 for a few primes.
        for p in [7usize, 13, 19, 31] {
            let g = primitive_root(p);
            let mut seen = vec![false; p];
            let mut x = 1;
            for _ in 0..p - 1 {
                x = x * g % p;
                seen[x] = true;
            }
            assert_eq!(seen.iter().filter(|&&s| s).count(), p - 1);
        }
    }
}
