//! The retrieval-guarantee algebra of design-theoretic declustering.
//!
//! An `(N, c, 1)` design guarantees that **any** `S(M) = (c−1)·M² + c·M`
//! buckets can be retrieved with at most `M` parallel accesses, regardless of
//! which buckets are requested (Tosun, ITCC 2005; §II-B2 of the paper).

use crate::design::Design;

/// Worst-case retrieval guarantee of an `(N, c, 1)` replicated declustering.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetrievalGuarantee {
    /// Number of devices `N`.
    pub devices: usize,
    /// Replication factor `c` (the design's block size `k`).
    pub copies: usize,
}

impl RetrievalGuarantee {
    /// Guarantee parameters of a concrete design.
    pub fn of(design: &Design) -> Self {
        RetrievalGuarantee {
            devices: design.v(),
            copies: design.k(),
        }
    }

    /// Build from raw parameters.
    pub fn new(devices: usize, copies: usize) -> Self {
        RetrievalGuarantee { devices, copies }
    }

    /// `S(M) = (c−1)·M² + c·M`: the maximum number of buckets guaranteed to
    /// be retrievable in `M` accesses.
    ///
    /// For the `(9,3,1)` design: `S(1) = 5`, `S(2) = 14`, `S(3) = 27`.
    pub fn buckets_in(&self, accesses: usize) -> usize {
        let c = self.copies;
        (c - 1) * accesses * accesses + c * accesses
    }

    /// The inverse of [`Self::buckets_in`]: the smallest `M` such that
    /// `S(M) >= buckets` — the worst-case number of accesses needed for any
    /// request of `buckets` buckets. Returns 0 for an empty request.
    pub fn accesses_for(&self, buckets: usize) -> usize {
        if buckets == 0 {
            return 0;
        }
        let c = self.copies;
        if c == 1 {
            // No replication: worst case everything is on one device.
            return buckets;
        }
        // Solve (c-1)M² + cM >= b for the smallest integer M ≥ 1.
        let a = (c - 1) as f64;
        let bq = c as f64;
        let disc = bq * bq + 4.0 * a * buckets as f64;
        let mut m = ((-bq + disc.sqrt()) / (2.0 * a)).ceil() as usize;
        m = m.max(1);
        // Guard against floating point edge cases: adjust to the true bound.
        while m > 1 && self.buckets_in(m - 1) >= buckets {
            m -= 1;
        }
        while self.buckets_in(m) < buckets {
            m += 1;
        }
        m
    }

    /// The optimal (lower-bound) number of accesses: `⌈b / N⌉`. No schedule
    /// can do better since each access touches each device at most once.
    pub fn optimal_accesses(&self, buckets: usize) -> usize {
        buckets.div_ceil(self.devices)
    }

    /// Number of distinct buckets supported when every design block is used
    /// in all `c` rotations: `N(N−1)/(c−1)` (= 36 for the `(9,3,1)` design).
    pub fn supported_buckets(&self) -> usize {
        self.devices * (self.devices - 1) / (self.copies - 1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn g931() -> RetrievalGuarantee {
        RetrievalGuarantee::new(9, 3)
    }

    #[test]
    fn paper_values_9_3_1() {
        let g = g931();
        assert_eq!(g.buckets_in(1), 5);
        assert_eq!(g.buckets_in(2), 14);
        assert_eq!(g.buckets_in(3), 27);
        assert_eq!(g.supported_buckets(), 36);
    }

    #[test]
    fn paper_values_two_copies() {
        // §II-B3: for c = 2, 3 buckets in 1 access, 8 in 2, 15 in 3.
        let g = RetrievalGuarantee::new(9, 2);
        assert_eq!(g.buckets_in(1), 3);
        assert_eq!(g.buckets_in(2), 8);
        assert_eq!(g.buckets_in(3), 15);
    }

    #[test]
    fn accesses_for_inverts_buckets_in() {
        for copies in 2..=5 {
            let g = RetrievalGuarantee::new(9, copies);
            for m in 1..=10 {
                let s = g.buckets_in(m);
                assert_eq!(g.accesses_for(s), m, "c={copies} M={m}");
                assert_eq!(g.accesses_for(s + 1), m + 1, "c={copies} M={m} (s+1)");
                if m > 1 {
                    assert_eq!(g.accesses_for(s - 1), m, "c={copies} M={m} (s-1)");
                }
            }
        }
    }

    #[test]
    fn accesses_for_edge_cases() {
        let g = g931();
        assert_eq!(g.accesses_for(0), 0);
        assert_eq!(g.accesses_for(1), 1);
        assert_eq!(g.accesses_for(5), 1);
        assert_eq!(g.accesses_for(6), 2);
        // Single copy degenerates to serial retrieval.
        let g1 = RetrievalGuarantee::new(9, 1);
        assert_eq!(g1.accesses_for(7), 7);
    }

    #[test]
    fn optimal_accesses_matches_ceiling() {
        let g = g931();
        assert_eq!(g.optimal_accesses(9), 1);
        assert_eq!(g.optimal_accesses(10), 2);
        assert_eq!(g.optimal_accesses(0), 0);
    }
}
