//! Design catalog: pick a constructible design from device count, copy
//! count, or a QoS target.
//!
//! §II-B3 of the paper: "depending on the response time requirement of the
//! application, a suitable design providing the requested guarantees can be
//! chosen easily by changing the copy and the device count". The catalog
//! automates that choice for the `c = 3` (Steiner triple system) family and
//! provides the dedicated paper designs for `N = 9` and `N = 13`.

use crate::design::Design;
use crate::difference;
use crate::error::DesignError;
use crate::guarantee::RetrievalGuarantee;
use crate::known;
use crate::steiner;

/// Catalog of constructible `(N, c, 1)` designs.
#[derive(Debug, Clone, Copy, Default)]
pub struct DesignCatalog;

impl DesignCatalog {
    /// Find a `(devices, copies, 1)` design.
    ///
    /// `copies = 3` uses the Steiner-triple-system constructions (with the
    /// paper's own `(9,3,1)` table, Fig. 2, returned verbatim for `N = 9`);
    /// other copy counts — and `c = 3` orders the direct constructions miss,
    /// like `v = 25` — fall back to a backtracking search for a cyclic
    /// difference family (practical for `N ≲ 50`).
    pub fn find(&self, devices: usize, copies: usize) -> Result<Design, DesignError> {
        if copies < 2 {
            return Err(DesignError::Inadmissible {
                v: devices,
                k: copies,
                lambda: 1,
                reason: "replication needs at least 2 copies",
            });
        }
        if copies == 3 {
            match devices {
                9 => return Ok(known::design_9_3_1()),
                13 => return Ok(known::design_13_3_1()),
                v => {
                    if let Ok(d) = steiner::steiner_triple_system(v) {
                        return Ok(d);
                    }
                }
            }
        }
        if devices <= 64 {
            if let Some(family) = difference::find_difference_family(devices, copies) {
                return difference::develop_verified(devices, copies, 1, &family);
            }
        }
        Err(DesignError::NoKnownConstruction {
            v: devices,
            k: copies,
            lambda: 1,
        })
    }

    /// Smallest constructible device count `N >= min_devices` admitting an
    /// `(N, 3, 1)` design.
    pub fn next_constructible_devices(&self, min_devices: usize) -> usize {
        let mut v = min_devices.max(7);
        loop {
            if self.find(v, 3).is_ok() {
                return v;
            }
            v += 1;
        }
    }

    /// Choose a design that guarantees `requests_per_interval` buckets are
    /// retrievable in at most `max_accesses` accesses with 3 copies.
    ///
    /// `S(M) = 2M² + 3M` is independent of `N`, so the number of accesses is
    /// fixed by the copy count alone; the device count must only be large
    /// enough that the optimal bound `⌈b/N⌉ <= M` does not contradict the
    /// target and that enough distinct buckets exist.
    pub fn for_guarantee(
        &self,
        requests_per_interval: usize,
        max_accesses: usize,
    ) -> Result<Design, DesignError> {
        let g = RetrievalGuarantee::new(usize::MAX, 3);
        if g.buckets_in(max_accesses) < requests_per_interval {
            return Err(DesignError::Inadmissible {
                v: 0,
                k: 3,
                lambda: 1,
                reason: "S(M) = 2M² + 3M cannot cover the requested load with c = 3",
            });
        }
        // Need ⌈b/N⌉ <= M, i.e. N >= ⌈b/M⌉.
        let min_devices = requests_per_interval.div_ceil(max_accesses.max(1));
        let v = self.next_constructible_devices(min_devices);
        self.find(v, 3)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn finds_paper_designs() {
        let c = DesignCatalog;
        assert_eq!(c.find(9, 3).unwrap().num_blocks(), 12);
        assert_eq!(c.find(13, 3).unwrap().num_blocks(), 26);
        assert_eq!(c.find(7, 3).unwrap().num_blocks(), 7);
        assert_eq!(c.find(15, 3).unwrap().num_blocks(), 35);
    }

    #[test]
    fn rejects_unknown_parameters() {
        let c = DesignCatalog;
        assert!(c.find(9, 4).is_err()); // 12 ∤ 8
        assert!(c.find(11, 3).is_err()); // 11 ≡ 5 (mod 6)
        assert!(c.find(9, 1).is_err()); // no replication
    }

    #[test]
    fn all_catalog_designs_verify() {
        let c = DesignCatalog;
        for v in 7..40 {
            if let Ok(d) = c.find(v, 3) {
                d.verify()
                    .unwrap_or_else(|e| panic!("catalog ({v},3,1): {e}"));
            }
        }
    }

    #[test]
    fn four_copy_designs_from_family_search() {
        let c = DesignCatalog;
        let d = c.find(13, 4).unwrap();
        d.verify().unwrap();
        assert_eq!(d.num_blocks(), 13); // the projective plane PG(2,3)
        let d = c.find(37, 4).unwrap();
        d.verify().unwrap();
        assert_eq!(d.num_blocks(), 3 * 37);
        // (25,4,1) exists but has no *cyclic* family; the catalog only
        // searches cyclic ones, so it reports no construction.
        assert!(c.find(25, 4).is_err());
    }

    #[test]
    fn composite_order_25_found_by_family_search() {
        // 25 ≡ 1 (mod 6) but composite, so Netto fails; the difference-
        // family search supplies the cyclic STS(25).
        let c = DesignCatalog;
        let d = c.find(25, 3).unwrap();
        d.verify().unwrap();
        assert_eq!(d.num_blocks(), 100);
    }

    #[test]
    fn next_constructible_skips_gaps() {
        let c = DesignCatalog;
        assert_eq!(c.next_constructible_devices(7), 7);
        assert_eq!(c.next_constructible_devices(8), 9);
        assert_eq!(c.next_constructible_devices(10), 13);
        assert_eq!(c.next_constructible_devices(22), 25);
    }

    #[test]
    fn for_guarantee_respects_optimal_bound() {
        let c = DesignCatalog;
        // 5 requests in 1 access needs N >= 5; the smallest constructible is 7.
        let d = c.for_guarantee(5, 1).unwrap();
        assert_eq!(d.v(), 7);
        // 14 requests in 2 accesses needs N >= 7.
        let d = c.for_guarantee(14, 2).unwrap();
        assert!(d.v() >= 7);
        // S(1) = 5: six requests in one access is impossible for c = 3.
        assert!(c.for_guarantee(6, 1).is_err());
    }
}
