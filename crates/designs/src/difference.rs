//! Difference families and their development into block designs.
//!
//! A set of base blocks `B_1, …, B_t ⊂ Z_v` is a *(v, k, λ) difference
//! family* if every nonzero residue of `Z_v` occurs exactly `λ` times among
//! the pairwise differences `x − y (mod v)` of elements within the base
//! blocks. Translating ("developing") each base block through `Z_v` then
//! yields a `(v, k, λ)` design — the construction behind the paper's
//! `(13,3,1)` design.

use crate::design::{Block, Design};
use crate::error::DesignError;

/// Check whether `base_blocks` form a `(v, k, λ)` difference family.
pub fn is_difference_family(
    v: usize,
    k: usize,
    lambda: usize,
    base_blocks: &[Block],
) -> Result<(), DesignError> {
    let mut diff_count = vec![0usize; v];
    for (bi, block) in base_blocks.iter().enumerate() {
        if block.len() != k {
            return Err(DesignError::WrongBlockSize {
                block: bi,
                len: block.len(),
                k,
            });
        }
        for &p in block {
            if p >= v {
                return Err(DesignError::PointOutOfRange {
                    block: bi,
                    point: p,
                    v,
                });
            }
        }
        for i in 0..block.len() {
            for j in 0..block.len() {
                if i != j {
                    let d = (block[i] + v - block[j]) % v;
                    diff_count[d] += 1;
                }
            }
        }
    }
    for (d, &observed) in diff_count.iter().enumerate().skip(1) {
        if observed != lambda {
            return Err(DesignError::PairCoverage {
                a: 0,
                b: d,
                observed,
                lambda,
            });
        }
    }
    Ok(())
}

/// Develop base blocks through `Z_v`: every block is translated by every
/// residue, producing `t·v` blocks. If the base blocks form a difference
/// family the result is a `(v, k, λ)` design.
pub fn develop(v: usize, k: usize, lambda: usize, base_blocks: &[Block]) -> Design {
    let mut blocks = Vec::with_capacity(base_blocks.len() * v);
    for base in base_blocks {
        for shift in 0..v {
            blocks.push(base.iter().map(|&p| (p + shift) % v).collect());
        }
    }
    Design::new_unchecked(v, k, lambda, blocks)
}

/// Develop and verify in one step.
pub fn develop_verified(
    v: usize,
    k: usize,
    lambda: usize,
    base_blocks: &[Block],
) -> Result<Design, DesignError> {
    is_difference_family(v, k, lambda, base_blocks)?;
    let d = develop(v, k, lambda, base_blocks);
    d.verify()?;
    Ok(d)
}

/// Search for a `(v, k, 1)` cyclic difference family by backtracking.
///
/// Admissibility requires `k(k−1) | v−1`; the family has
/// `t = (v−1)/(k(k−1))` base blocks, each normalized to contain 0. Returns
/// `None` when no *cyclic* family exists (some admissible parameter sets
/// only have non-cyclic designs). Practical for the catalog's range
/// (`v ≲ 50`, `k ≤ 5`).
pub fn find_difference_family(v: usize, k: usize) -> Option<Vec<Block>> {
    if k < 2 || v <= k || !(v - 1).is_multiple_of(k * (k - 1)) {
        return None;
    }
    let t = (v - 1) / (k * (k - 1));
    let mut used = vec![false; v]; // used[d] for nonzero differences
    let mut family: Vec<Block> = Vec::with_capacity(t);
    if search_family(v, k, t, &mut family, &mut used) {
        Some(family)
    } else {
        None
    }
}

fn search_family(v: usize, k: usize, t: usize, family: &mut Vec<Block>, used: &mut [bool]) -> bool {
    if family.len() == t {
        return true;
    }
    // Canonicalization: the smallest still-uncovered difference `d0` must be
    // produced by some block; translate that block so the producing pair is
    // (0, d0). The remaining k−2 elements can lie anywhere in Z_v.
    let Some(d0) = (1..=v / 2).find(|&d| !used[d]) else {
        return false;
    };
    let mut block = vec![0, d0];
    used[d0] = true;
    used[v - d0] = true;
    let found = complete_block(v, k, t, 1, &mut block, family, used);
    used[d0] = false;
    used[v - d0] = false;
    found
}

/// Extend `block` (containing `{0, d0, …}` with all internal differences
/// marked) by elements `>= from`, and recurse into the family search once
/// the block reaches size `k`.
fn complete_block(
    v: usize,
    k: usize,
    t: usize,
    from: usize,
    block: &mut Block,
    family: &mut Vec<Block>,
    used: &mut [bool],
) -> bool {
    if block.len() == k {
        let mut sorted = block.clone();
        sorted.sort_unstable();
        family.push(sorted);
        if search_family(v, k, t, family, used) {
            return true;
        }
        family.pop();
        return false;
    }
    for next in from..v {
        if block.contains(&next) {
            continue;
        }
        // Differences of `next` against every member must be unused and
        // mutually distinct (as ± classes).
        let mut classes: Vec<usize> = Vec::with_capacity(block.len());
        let mut ok = true;
        for &b in block.iter() {
            let d = next.abs_diff(b);
            let class = d.min(v - d);
            if used[class] || classes.contains(&class) {
                ok = false;
                break;
            }
            classes.push(class);
        }
        if !ok {
            continue;
        }
        for &c in &classes {
            used[c] = true;
            used[v - c] = true;
        }
        block.push(next);
        if complete_block(v, k, t, next + 1, block, family, used) {
            return true;
        }
        block.pop();
        for &c in &classes {
            used[c] = false;
            used[v - c] = false;
        }
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fano_difference_family() {
        // {0,1,3} is the classical (7,3,1) planar difference set.
        let base = vec![vec![0, 1, 3]];
        is_difference_family(7, 3, 1, &base).unwrap();
        let d = develop_verified(7, 3, 1, &base).unwrap();
        assert_eq!(d.num_blocks(), 7);
    }

    #[test]
    fn design_13_3_1_difference_family() {
        // The classical pair of base blocks for v = 13.
        let base = vec![vec![0, 1, 4], vec![0, 2, 7]];
        is_difference_family(13, 3, 1, &base).unwrap();
        let d = develop_verified(13, 3, 1, &base).unwrap();
        assert_eq!(d.num_blocks(), 26);
    }

    #[test]
    fn rejects_non_family() {
        // {0,1,2} has differences {1,1,2} (doubled) — not a (7,3,1) family.
        let base = vec![vec![0, 1, 2]];
        assert!(is_difference_family(7, 3, 1, &base).is_err());
    }

    #[test]
    fn rejects_bad_block() {
        assert!(is_difference_family(7, 3, 1, &[vec![0, 1]]).is_err());
        assert!(is_difference_family(7, 3, 1, &[vec![0, 1, 9]]).is_err());
    }

    #[test]
    fn search_finds_k3_families() {
        // All admissible v ≡ 1, 7 (mod 6·?): k = 3 needs 6 | v−1.
        for v in [7usize, 13, 19, 25, 31, 37] {
            let family = find_difference_family(v, 3)
                .unwrap_or_else(|| panic!("no (v={v}, k=3) family found"));
            assert_eq!(family.len(), (v - 1) / 6);
            let d = develop_verified(v, 3, 1, &family).unwrap_or_else(|e| panic!("({v},3,1): {e}"));
            assert_eq!(d.num_blocks(), v * (v - 1) / 6);
        }
    }

    #[test]
    fn search_finds_k4_families() {
        // k = 4 needs 12 | v−1: v = 13 (PG(2,3)) and 37 have cyclic
        // families.
        for v in [13usize, 37] {
            let family = find_difference_family(v, 4)
                .unwrap_or_else(|| panic!("no (v={v}, k=4) family found"));
            assert_eq!(family.len(), (v - 1) / 12);
            develop_verified(v, 4, 1, &family).unwrap_or_else(|e| panic!("({v},4,1): {e}"));
        }
    }

    #[test]
    fn no_cyclic_25_4_1_family() {
        // A (25,4,1) design exists (it is even resolvable), but not as a
        // cyclic difference family over Z_25 — the classical construction
        // lives over the elementary abelian group GF(5)². The exhaustive
        // search correctly proves the cyclic case impossible.
        assert!(find_difference_family(25, 4).is_none());
    }

    #[test]
    fn search_finds_k5_family_for_21() {
        // (21,5,1): the projective plane of order 4, cyclic.
        let family = find_difference_family(21, 5).expect("(21,5,1) family");
        assert_eq!(family.len(), 1);
        develop_verified(21, 5, 1, &family).unwrap();
    }

    #[test]
    fn search_rejects_inadmissible_parameters() {
        assert!(find_difference_family(8, 3).is_none()); // 6 ∤ 7
        assert!(find_difference_family(14, 4).is_none()); // 12 ∤ 13
        assert!(find_difference_family(4, 5).is_none()); // v <= k
    }
}
