//! The specific designs used by the paper's experiments.

use crate::design::Design;
use crate::difference;
use crate::steiner;

/// The `(9,3,1)` design of the paper's Fig. 2, block for block.
///
/// 9 devices, 3 copies, every device pair shares exactly one block. Used for
/// the synthetic experiments (Table III) and the Exchange workload.
pub fn design_9_3_1() -> Design {
    Design::new_unchecked(
        9,
        3,
        1,
        vec![
            vec![0, 1, 2],
            vec![0, 3, 6],
            vec![0, 4, 8],
            vec![0, 5, 7],
            vec![1, 3, 8],
            vec![1, 4, 7],
            vec![1, 5, 6],
            vec![2, 3, 7],
            vec![2, 4, 6],
            vec![2, 5, 8],
            vec![3, 4, 5],
            vec![6, 7, 8],
        ],
    )
}

/// The `(13,3,1)` design used for the TPC-E workload (13 active volumes),
/// developed from the classical difference family `{0,1,4}, {0,2,7} mod 13`.
pub fn design_13_3_1() -> Design {
    difference::develop(13, 3, 1, &[vec![0, 1, 4], vec![0, 2, 7]])
}

/// The Fano plane `(7,3,1)` — the smallest Steiner triple system; handy for
/// small tests and examples.
pub fn design_7_3_1() -> Design {
    steiner::netto(7)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_design_9_3_1_is_valid() {
        let d = design_9_3_1();
        d.verify().unwrap();
        assert_eq!(d.v(), 9);
        assert_eq!(d.k(), 3);
        assert_eq!(d.num_blocks(), 12);
        assert_eq!(d.replication_number(), 4);
    }

    #[test]
    fn paper_design_9_3_1_matches_fig2_block_zero() {
        // Fig. 2's first column is (0,1,2): devices 0, 1 and 2 store the
        // three copies of the first design block.
        assert_eq!(design_9_3_1().blocks()[0], vec![0, 1, 2]);
    }

    #[test]
    fn design_13_3_1_is_valid() {
        let d = design_13_3_1();
        d.verify().unwrap();
        assert_eq!(d.v(), 13);
        assert_eq!(d.num_blocks(), 26);
    }

    #[test]
    fn fano_is_valid() {
        design_7_3_1().verify().unwrap();
    }
}
