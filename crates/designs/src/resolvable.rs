//! Resolutions of block designs into parallel classes.
//!
//! A *parallel class* is a set of `v/k` pairwise-disjoint blocks covering
//! every point exactly once; a design is *resolvable* (a Kirkman system for
//! `k = 3`) when its blocks partition into `r = (v−1)/(k−1)` parallel
//! classes. Parallel classes matter operationally: one class is a retrieval
//! round that touches **every device exactly once** — the unit of
//! full-bandwidth bulk work (scrubbing, migration, rebuild) that coexists
//! with the QoS guarantee because it consumes exactly one access per device
//! per round.

use crate::design::Design;

/// A resolution: parallel classes of block indices.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Resolution {
    /// `classes[c]` lists the block indices of parallel class `c`.
    pub classes: Vec<Vec<usize>>,
}

impl Resolution {
    /// Number of parallel classes (`r` for a full resolution).
    pub fn num_classes(&self) -> usize {
        self.classes.len()
    }
}

/// Search for a resolution of `design` by exact-cover backtracking with the
/// default node budget. Returns `None` if the design is not resolvable
/// (e.g. the Fano plane) or the budget is exhausted before a resolution is
/// found. Practical for `v ≲ 30`.
pub fn find_resolution(design: &Design) -> Option<Resolution> {
    find_resolution_with_budget(design, 20_000_000)
}

/// [`find_resolution`] with an explicit backtracking-node budget. Proving
/// *non*-resolvability is exponential, so a budget keeps the search
/// predictable; `None` therefore means "not resolvable or not found within
/// budget".
pub fn find_resolution_with_budget(design: &Design, budget: u64) -> Option<Resolution> {
    let v = design.v();
    let k = design.k();
    if !v.is_multiple_of(k) {
        return None; // parallel classes need k | v
    }
    let blocks = design.blocks();
    let num_classes = design.replication_number();
    let per_class = v / k;

    // Precompute block point-masks (v <= 64 supported).
    if v > 64 {
        return None;
    }
    let masks: Vec<u64> = blocks
        .iter()
        .map(|b| b.iter().fold(0u64, |m, &p| m | (1 << p)))
        .collect();
    let full: u64 = if v == 64 { u64::MAX } else { (1 << v) - 1 };

    let mut used = vec![false; blocks.len()];
    let mut classes: Vec<Vec<usize>> = Vec::with_capacity(num_classes);
    let mut nodes = budget;
    if build_classes(
        &masks,
        full,
        &mut used,
        &mut classes,
        num_classes,
        per_class,
        &mut nodes,
    ) {
        Some(Resolution { classes })
    } else {
        None
    }
}

#[allow(clippy::too_many_arguments)]
fn build_classes(
    masks: &[u64],
    full: u64,
    used: &mut [bool],
    classes: &mut Vec<Vec<usize>>,
    num_classes: usize,
    per_class: usize,
    nodes: &mut u64,
) -> bool {
    if classes.len() == num_classes {
        return used.iter().all(|&u| u);
    }
    // Canonicalization: each new class must contain the lowest-indexed
    // unused block (it has to belong to some remaining class).
    let Some(seed) = used.iter().position(|&u| !u) else {
        return false;
    };
    let mut class = vec![seed];
    used[seed] = true;
    let ok = extend_class(
        masks,
        full,
        masks[seed],
        seed + 1,
        used,
        &mut class,
        classes,
        num_classes,
        per_class,
        nodes,
    );
    used[seed] = false;
    ok
}

#[allow(clippy::too_many_arguments)]
fn extend_class(
    masks: &[u64],
    full: u64,
    covered: u64,
    from: usize,
    used: &mut [bool],
    class: &mut Vec<usize>,
    classes: &mut Vec<Vec<usize>>,
    num_classes: usize,
    per_class: usize,
    nodes: &mut u64,
) -> bool {
    if *nodes == 0 {
        return false;
    }
    *nodes -= 1;
    if class.len() == per_class {
        if covered != full {
            return false;
        }
        classes.push(class.clone());
        let done = build_classes(masks, full, used, classes, num_classes, per_class, nodes);
        if done {
            return true;
        }
        classes.pop();
        return false;
    }
    for b in from..masks.len() {
        if used[b] || masks[b] & covered != 0 {
            continue;
        }
        used[b] = true;
        class.push(b);
        if extend_class(
            masks,
            full,
            covered | masks[b],
            b + 1,
            used,
            class,
            classes,
            num_classes,
            per_class,
            nodes,
        ) {
            return true;
        }
        class.pop();
        used[b] = false;
    }
    false
}

/// Verify that `resolution` really resolves `design`.
pub fn verify_resolution(design: &Design, resolution: &Resolution) -> Result<(), String> {
    let expected_classes = design.replication_number();
    if resolution.num_classes() != expected_classes {
        return Err(format!(
            "{} classes, expected {expected_classes}",
            resolution.num_classes()
        ));
    }
    let mut seen = vec![false; design.num_blocks()];
    for (ci, class) in resolution.classes.iter().enumerate() {
        let mut covered = vec![false; design.v()];
        for &bi in class {
            if seen[bi] {
                return Err(format!("block {bi} appears in two classes"));
            }
            seen[bi] = true;
            for &p in &design.blocks()[bi] {
                if covered[p] {
                    return Err(format!("class {ci} covers point {p} twice"));
                }
                covered[p] = true;
            }
        }
        if !covered.iter().all(|&c| c) {
            return Err(format!("class {ci} does not cover every point"));
        }
    }
    if !seen.iter().all(|&s| s) {
        return Err("not every block is classified".into());
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::known;
    use crate::steiner;

    #[test]
    fn sts9_is_kirkman() {
        // STS(9) is famously resolvable: 4 parallel classes of 3 blocks.
        let d = known::design_9_3_1();
        let r = find_resolution(&d).expect("STS(9) resolves");
        assert_eq!(r.num_classes(), 4);
        verify_resolution(&d, &r).unwrap();
    }

    #[test]
    fn bose_sts15_is_not_resolvable() {
        // Resolvable STS(15)s exist (Kirkman's schoolgirl problem), but the
        // specific system the Bose construction produces is NOT one of
        // them — the exhaustive exact-cover search proves it quickly. (Only
        // 4 of the 80 non-isomorphic STS(15)s are resolvable.)
        let d = steiner::bose(15);
        assert!(find_resolution(&d).is_none());
    }

    #[test]
    fn fano_is_not_resolvable() {
        // v = 7 is not divisible by k = 3: no parallel classes at all.
        let d = known::design_7_3_1();
        assert!(find_resolution(&d).is_none());
    }

    #[test]
    fn verification_rejects_corrupt_resolutions() {
        let d = known::design_9_3_1();
        let r = find_resolution(&d).unwrap();
        // Swap one block between classes: coverage must break.
        let mut bad = r.clone();
        let moved = bad.classes[0].pop().unwrap();
        bad.classes[1].push(moved);
        assert!(verify_resolution(&d, &bad).is_err());

        let mut short = r.clone();
        short.classes.pop();
        assert!(verify_resolution(&d, &short).is_err());
    }

    #[test]
    fn each_class_touches_every_device_once() {
        // The operational property: a parallel class = one access round
        // using all N devices simultaneously.
        let d = known::design_9_3_1();
        let r = find_resolution(&d).unwrap();
        for class in &r.classes {
            let mut devices: Vec<usize> = class
                .iter()
                .flat_map(|&b| d.blocks()[b].iter().copied())
                .collect();
            devices.sort_unstable();
            assert_eq!(devices, (0..9).collect::<Vec<_>>());
        }
    }
}
