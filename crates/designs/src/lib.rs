//! Combinatorial block designs for replicated declustering.
//!
//! This crate implements the design-theory substrate of the replication-based
//! QoS framework of Altiparmak & Tosun (CLUSTER 2012). Data buckets are
//! replicated over the devices named by the blocks of an `(v, k, 1)` design
//! (a *Steiner system* when `λ = 1`), which yields query-shape-independent
//! worst-case retrieval guarantees: any `S(M) = (k-1)·M² + k·M` buckets can
//! be retrieved in at most `M` parallel accesses.
//!
//! # Contents
//!
//! * [`Design`] — a verified `(v, k, λ)` block design.
//! * [`steiner`] — Bose (`v ≡ 3 mod 6`) and Netto (`v ≡ 1 mod 6`, prime)
//!   constructions of Steiner triple systems.
//! * [`difference`] — development of difference families into designs.
//! * [`known`] — the paper's `(9,3,1)` design (Fig. 2) and a `(13,3,1)`
//!   design used for the TPC-E experiments.
//! * [`rotation`] — rotated replica tuples: an `(N,3,1)` design supports
//!   `N(N−1)/2` buckets once each block is used in all `k` rotations.
//! * [`guarantee`] — the `S(M)` algebra and its inverse.
//! * [`catalog`] — pick a constructible design from `(N, c)` or from a QoS
//!   requirement.
//!
//! # Example
//!
//! ```
//! use fqos_designs::{known, guarantee::RetrievalGuarantee};
//!
//! let design = known::design_9_3_1();
//! design.verify().unwrap();
//! let g = RetrievalGuarantee::of(&design);
//! assert_eq!(g.buckets_in(1), 5);   // 5 buckets in 1 access
//! assert_eq!(g.buckets_in(2), 14);  // 14 buckets in 2 accesses
//! assert_eq!(g.buckets_in(3), 27);  // 27 buckets in 3 accesses
//! ```

pub mod catalog;
pub mod design;
pub mod difference;
pub mod error;
pub mod guarantee;
pub mod known;
pub mod resolvable;
pub mod rotation;
pub mod steiner;

pub use catalog::DesignCatalog;
pub use design::{Block, Design, DeviceId};
pub use error::DesignError;
pub use guarantee::RetrievalGuarantee;
pub use rotation::{BucketId, RotatedDesign};
