//! The verified `(v, k, λ)` block design type.

use crate::error::DesignError;

/// Identifier of a storage device (a *point* of the design).
pub type DeviceId = usize;

/// A design block: an ordered list of `k` distinct points. The order matters
/// for declustering — position `i` of a (possibly rotated) block names the
/// device that stores the `i`-th copy of a bucket.
pub type Block = Vec<DeviceId>;

/// A `(v, k, λ)` block design.
///
/// * `v` points (devices), numbered `0..v`.
/// * Every block contains exactly `k` distinct points.
/// * Every unordered pair of points appears together in exactly `λ` blocks.
///
/// With `λ = 1` this is a Steiner system `S(2, k, v)`; the QoS framework
/// relies on `λ = 1` because it guarantees that two different blocks share at
/// most one device, which is what bounds worst-case retrieval cost.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Design {
    v: usize,
    k: usize,
    lambda: usize,
    blocks: Vec<Block>,
}

impl Design {
    /// Build a design from raw blocks without verifying the axioms.
    ///
    /// Use [`Design::verify`] (or [`Design::new_verified`]) before trusting
    /// the retrieval guarantees.
    pub fn new_unchecked(v: usize, k: usize, lambda: usize, blocks: Vec<Block>) -> Self {
        Design {
            v,
            k,
            lambda,
            blocks,
        }
    }

    /// Build a design and verify every axiom; returns the design only if it
    /// is a genuine `(v, k, λ)` design.
    pub fn new_verified(
        v: usize,
        k: usize,
        lambda: usize,
        blocks: Vec<Block>,
    ) -> Result<Self, DesignError> {
        let d = Design::new_unchecked(v, k, lambda, blocks);
        d.verify()?;
        Ok(d)
    }

    /// Number of points (devices).
    pub fn v(&self) -> usize {
        self.v
    }

    /// Block size — equals the replication factor `c` in the QoS framework.
    pub fn k(&self) -> usize {
        self.k
    }

    /// Pair-coverage index `λ`.
    pub fn lambda(&self) -> usize {
        self.lambda
    }

    /// The blocks of the design.
    pub fn blocks(&self) -> &[Block] {
        &self.blocks
    }

    /// Number of blocks, `b = λ·v(v−1) / (k(k−1))`.
    pub fn num_blocks(&self) -> usize {
        self.blocks.len()
    }

    /// Replication number `r = λ(v−1)/(k−1)`: how many blocks each point
    /// appears in.
    pub fn replication_number(&self) -> usize {
        self.lambda * (self.v - 1) / (self.k - 1)
    }

    /// The expected number of blocks from the design-theoretic identity.
    pub fn expected_num_blocks(&self) -> usize {
        self.lambda * self.v * (self.v - 1) / (self.k * (self.k - 1))
    }

    /// Verify all design axioms:
    ///
    /// 1. every block has exactly `k` distinct in-range points,
    /// 2. every pair of points is covered exactly `λ` times,
    /// 3. the block count matches `λ·v(v−1)/(k(k−1))`.
    pub fn verify(&self) -> Result<(), DesignError> {
        // Axiom 1: block well-formedness.
        for (bi, block) in self.blocks.iter().enumerate() {
            if block.len() != self.k {
                return Err(DesignError::WrongBlockSize {
                    block: bi,
                    len: block.len(),
                    k: self.k,
                });
            }
            let mut seen = vec![false; self.v];
            for &p in block {
                if p >= self.v {
                    return Err(DesignError::PointOutOfRange {
                        block: bi,
                        point: p,
                        v: self.v,
                    });
                }
                if seen[p] {
                    return Err(DesignError::RepeatedPoint {
                        block: bi,
                        point: p,
                    });
                }
                seen[p] = true;
            }
        }

        // Axiom 2: pair coverage. Triangular counter indexed by (a < b).
        let mut pair_count = vec![0usize; self.v * self.v];
        for block in &self.blocks {
            for i in 0..block.len() {
                for j in (i + 1)..block.len() {
                    let (a, b) = ordered(block[i], block[j]);
                    pair_count[a * self.v + b] += 1;
                }
            }
        }
        for a in 0..self.v {
            for b in (a + 1)..self.v {
                let observed = pair_count[a * self.v + b];
                if observed != self.lambda {
                    return Err(DesignError::PairCoverage {
                        a,
                        b,
                        observed,
                        lambda: self.lambda,
                    });
                }
            }
        }

        // Axiom 3: block count identity (implied by 1+2, but cheap to state).
        let expected = self.expected_num_blocks();
        if self.blocks.len() != expected {
            return Err(DesignError::BlockCount {
                observed: self.blocks.len(),
                expected,
            });
        }
        Ok(())
    }

    /// True if the two given blocks share at most `λ` points — the property
    /// that bounds retrieval conflicts.
    pub fn blocks_share_at_most_lambda(&self, i: usize, j: usize) -> bool {
        let shared = self.blocks[i]
            .iter()
            .filter(|p| self.blocks[j].contains(p))
            .count();
        shared <= self.lambda
    }
}

#[inline]
fn ordered(a: usize, b: usize) -> (usize, usize) {
    if a < b {
        (a, b)
    } else {
        (b, a)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fano() -> Design {
        // The Fano plane: the unique (7,3,1) design.
        Design::new_unchecked(
            7,
            3,
            1,
            vec![
                vec![0, 1, 3],
                vec![1, 2, 4],
                vec![2, 3, 5],
                vec![3, 4, 6],
                vec![4, 5, 0],
                vec![5, 6, 1],
                vec![6, 0, 2],
            ],
        )
    }

    #[test]
    fn fano_verifies() {
        fano().verify().unwrap();
    }

    #[test]
    fn fano_counts() {
        let d = fano();
        assert_eq!(d.num_blocks(), 7);
        assert_eq!(d.expected_num_blocks(), 7);
        assert_eq!(d.replication_number(), 3);
    }

    #[test]
    fn detects_wrong_block_size() {
        let d = Design::new_unchecked(7, 3, 1, vec![vec![0, 1]]);
        assert!(matches!(
            d.verify(),
            Err(DesignError::WrongBlockSize { .. })
        ));
    }

    #[test]
    fn detects_out_of_range() {
        let d = Design::new_unchecked(3, 3, 1, vec![vec![0, 1, 7]]);
        assert!(matches!(
            d.verify(),
            Err(DesignError::PointOutOfRange { .. })
        ));
    }

    #[test]
    fn detects_repeated_point() {
        let d = Design::new_unchecked(7, 3, 1, vec![vec![0, 1, 1]]);
        assert!(matches!(d.verify(), Err(DesignError::RepeatedPoint { .. })));
    }

    #[test]
    fn detects_bad_pair_coverage() {
        // Duplicate one Fano block: pairs inside it are covered twice.
        let mut blocks = fano().blocks().to_vec();
        blocks[1] = blocks[0].clone();
        let d = Design::new_unchecked(7, 3, 1, blocks);
        assert!(matches!(d.verify(), Err(DesignError::PairCoverage { .. })));
    }

    #[test]
    fn blocks_share_at_most_one_point_in_steiner_system() {
        let d = fano();
        for i in 0..d.num_blocks() {
            for j in (i + 1)..d.num_blocks() {
                assert!(d.blocks_share_at_most_lambda(i, j), "blocks {i} and {j}");
            }
        }
    }
}
