//! Error type for design construction and verification.

use std::fmt;

/// Errors raised while constructing or verifying a block design.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DesignError {
    /// A block references a point `>= v`.
    PointOutOfRange {
        block: usize,
        point: usize,
        v: usize,
    },
    /// A block has the wrong number of points.
    WrongBlockSize { block: usize, len: usize, k: usize },
    /// A block contains a repeated point.
    RepeatedPoint { block: usize, point: usize },
    /// A pair of points is covered a different number of times than `λ`.
    PairCoverage {
        a: usize,
        b: usize,
        observed: usize,
        lambda: usize,
    },
    /// The number of blocks does not match `λ·v(v−1) / (k(k−1))`.
    BlockCount { observed: usize, expected: usize },
    /// No construction is known for the requested parameters.
    NoKnownConstruction { v: usize, k: usize, lambda: usize },
    /// Parameters are structurally impossible (admissibility conditions fail).
    Inadmissible {
        v: usize,
        k: usize,
        lambda: usize,
        reason: &'static str,
    },
}

impl fmt::Display for DesignError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DesignError::PointOutOfRange { block, point, v } => {
                write!(f, "block {block} references point {point} >= v = {v}")
            }
            DesignError::WrongBlockSize { block, len, k } => {
                write!(f, "block {block} has {len} points, expected k = {k}")
            }
            DesignError::RepeatedPoint { block, point } => {
                write!(f, "block {block} repeats point {point}")
            }
            DesignError::PairCoverage {
                a,
                b,
                observed,
                lambda,
            } => write!(
                f,
                "pair ({a},{b}) covered {observed} times, expected λ = {lambda}"
            ),
            DesignError::BlockCount { observed, expected } => {
                write!(f, "design has {observed} blocks, expected {expected}")
            }
            DesignError::NoKnownConstruction { v, k, lambda } => {
                write!(f, "no known construction for a ({v},{k},{lambda}) design")
            }
            DesignError::Inadmissible {
                v,
                k,
                lambda,
                reason,
            } => {
                write!(f, "({v},{k},{lambda}) design is inadmissible: {reason}")
            }
        }
    }
}

impl std::error::Error for DesignError {}
