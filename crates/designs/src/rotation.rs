//! Rotated designs: mapping buckets to ordered replica tuples.
//!
//! A design block names the *set* of devices a bucket is replicated on; its
//! **rotations** reuse the same device set with a different primary copy
//! (§II-B4: rotating `(0,1,2)` gives `(1,2,0)` and `(2,0,1)`). Using every
//! block in all `k` rotations lets an `(N, c, 1)` design support
//! `N(N−1)/(c−1)` buckets — 36 for the `(9,3,1)` design.

use crate::design::{Design, DeviceId};
use crate::guarantee::RetrievalGuarantee;

/// Identifier of a bucket (a design-block slot that data blocks are matched
/// to; *not* a raw LBN — that mapping is done by the FIM matcher).
pub type BucketId = usize;

/// A design together with its rotation-expanded bucket table.
///
/// Bucket `i` corresponds to design block `i / k` rotated by `i % k`
/// positions; the tuple's first entry is the device storing the primary
/// copy, the second the secondary, and so on.
#[derive(Debug, Clone)]
pub struct RotatedDesign {
    design: Design,
    /// `buckets[i]` = ordered device tuple for bucket `i`.
    buckets: Vec<Vec<DeviceId>>,
}

impl RotatedDesign {
    /// Expand a design into its full rotation table.
    pub fn new(design: Design) -> Self {
        let k = design.k();
        let mut buckets = Vec::with_capacity(design.num_blocks() * k);
        for block in design.blocks() {
            for rot in 0..k {
                let mut tuple = Vec::with_capacity(k);
                for pos in 0..k {
                    tuple.push(block[(pos + rot) % k]);
                }
                buckets.push(tuple);
            }
        }
        RotatedDesign { design, buckets }
    }

    /// The underlying design.
    pub fn design(&self) -> &Design {
        &self.design
    }

    /// Number of devices `N`.
    pub fn devices(&self) -> usize {
        self.design.v()
    }

    /// Replication factor `c`.
    pub fn copies(&self) -> usize {
        self.design.k()
    }

    /// Total number of buckets (`num_blocks · k`).
    pub fn num_buckets(&self) -> usize {
        self.buckets.len()
    }

    /// Ordered replica tuple of a bucket. Panics if out of range.
    pub fn replicas(&self, bucket: BucketId) -> &[DeviceId] {
        &self.buckets[bucket]
    }

    /// The device storing the primary (first) copy of a bucket.
    pub fn primary(&self, bucket: BucketId) -> DeviceId {
        self.buckets[bucket][0]
    }

    /// All bucket tuples.
    pub fn bucket_table(&self) -> &[Vec<DeviceId>] {
        &self.buckets
    }

    /// The worst-case retrieval guarantee of this declustering.
    pub fn guarantee(&self) -> RetrievalGuarantee {
        RetrievalGuarantee::of(&self.design)
    }

    /// Map an arbitrary data-block number to a bucket by the paper's modulo
    /// fallback rule (`dataBlockNumber % numberOfDesignBlocks`).
    pub fn bucket_for_lbn(&self, lbn: u64) -> BucketId {
        (lbn % self.buckets.len() as u64) as usize
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::known;

    #[test]
    fn rotation_of_9_3_1_supports_36_buckets() {
        let rd = RotatedDesign::new(known::design_9_3_1());
        assert_eq!(rd.num_buckets(), 36);
        assert_eq!(rd.guarantee().supported_buckets(), 36);
    }

    #[test]
    fn rotations_preserve_device_sets() {
        let rd = RotatedDesign::new(known::design_9_3_1());
        let k = rd.copies();
        for (bi, block) in rd.design().blocks().iter().enumerate() {
            for rot in 0..k {
                let tuple = rd.replicas(bi * k + rot);
                let mut a: Vec<_> = tuple.to_vec();
                let mut b: Vec<_> = block.clone();
                a.sort_unstable();
                b.sort_unstable();
                assert_eq!(a, b);
            }
        }
    }

    #[test]
    fn paper_rotation_example() {
        // §II-B4: rotation of (0,1,2) produces (1,2,0) and (2,0,1).
        let rd = RotatedDesign::new(known::design_9_3_1());
        assert_eq!(rd.replicas(0), &[0, 1, 2]);
        assert_eq!(rd.replicas(1), &[1, 2, 0]);
        assert_eq!(rd.replicas(2), &[2, 0, 1]);
    }

    #[test]
    fn primaries_are_balanced() {
        // Every device is the primary of exactly r buckets (r = replication
        // number): rotations distribute primaries evenly.
        let rd = RotatedDesign::new(known::design_9_3_1());
        let mut counts = vec![0usize; rd.devices()];
        for b in 0..rd.num_buckets() {
            counts[rd.primary(b)] += 1;
        }
        let r = rd.design().replication_number();
        assert!(counts.iter().all(|&c| c == r), "{counts:?}");
    }

    #[test]
    fn lbn_modulo_mapping() {
        let rd = RotatedDesign::new(known::design_9_3_1());
        assert_eq!(rd.bucket_for_lbn(0), 0);
        assert_eq!(rd.bucket_for_lbn(36), 0);
        assert_eq!(rd.bucket_for_lbn(37), 1);
        assert_eq!(rd.bucket_for_lbn(u64::MAX), (u64::MAX % 36) as usize);
    }
}
