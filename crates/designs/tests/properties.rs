//! Property-based tests for the design substrate.

use fqos_designs::{
    design::Design, guarantee::RetrievalGuarantee, rotation::RotatedDesign,
    steiner::steiner_triple_system, DesignCatalog,
};
use proptest::prelude::*;

/// Constructible STS orders below 100 (v ≡ 3 mod 6, or prime v ≡ 1 mod 6).
fn constructible_orders() -> Vec<usize> {
    (7..100)
        .filter(|&v| steiner_triple_system(v).is_ok())
        .collect()
}

proptest! {
    #[test]
    fn constructed_sts_satisfies_all_axioms(idx in 0usize..14) {
        let orders = constructible_orders();
        let v = orders[idx % orders.len()];
        let d = steiner_triple_system(v).unwrap();
        prop_assert!(d.verify().is_ok());
        prop_assert_eq!(d.num_blocks(), v * (v - 1) / 6);
    }

    #[test]
    fn any_two_sts_blocks_share_at_most_one_point(idx in 0usize..14, seed in any::<u64>()) {
        let orders = constructible_orders();
        let v = orders[idx % orders.len()];
        let d = steiner_triple_system(v).unwrap();
        let n = d.num_blocks();
        let i = (seed as usize) % n;
        let j = (seed as usize / n) % n;
        if i != j {
            prop_assert!(d.blocks_share_at_most_lambda(i, j));
        }
    }

    #[test]
    fn guarantee_inverse_roundtrip(copies in 2usize..6, buckets in 1usize..2000) {
        let g = RetrievalGuarantee::new(16, copies);
        let m = g.accesses_for(buckets);
        // m is feasible…
        prop_assert!(g.buckets_in(m) >= buckets);
        // …and minimal.
        if m > 1 {
            prop_assert!(g.buckets_in(m - 1) < buckets);
        }
    }

    #[test]
    fn guarantee_never_beats_optimal_bound_for_supported_loads(buckets in 1usize..36) {
        // The worst-case guarantee can never promise fewer accesses than the
        // information-theoretic optimum ⌈b/N⌉.
        let g = RetrievalGuarantee::new(9, 3);
        prop_assert!(g.accesses_for(buckets) >= g.optimal_accesses(buckets));
    }

    #[test]
    fn rotated_design_tuples_are_true_replica_sets(idx in 0usize..14, bucket_seed in any::<usize>()) {
        let orders = constructible_orders();
        let v = orders[idx % orders.len()];
        let d = steiner_triple_system(v).unwrap();
        let k = d.k();
        let rd = RotatedDesign::new(d);
        let bucket = bucket_seed % rd.num_buckets();
        let tuple = rd.replicas(bucket);
        // The tuple must be a rotation of the originating block.
        let block = &rd.design().blocks()[bucket / k];
        let rot = bucket % k;
        for pos in 0..k {
            prop_assert_eq!(tuple[pos], block[(pos + rot) % k]);
        }
    }
}

#[test]
fn catalog_designs_rotation_counts() {
    let c = DesignCatalog;
    for v in [7usize, 9, 13, 15, 19, 21, 27] {
        let d = c.find(v, 3).unwrap();
        let rd = RotatedDesign::new(d);
        assert_eq!(rd.num_buckets(), v * (v - 1) / 2, "v = {v}");
    }
}

#[test]
fn verification_rejects_mutated_designs() {
    // Swap one point of one block of a valid STS: some pair must break.
    let d = steiner_triple_system(9).unwrap();
    let mut blocks = d.blocks().to_vec();
    let old = blocks[0][0];
    blocks[0][0] = (old + 1) % 9;
    if blocks[0].contains(&blocks[0][0]) && blocks[0][1..].contains(&blocks[0][0]) {
        // Mutation produced a repeated point — also a rejection.
    }
    let mutated = Design::new_unchecked(9, 3, 1, blocks);
    assert!(mutated.verify().is_err());
}
