//! Trace formats, synthetic generators and server workload models.
//!
//! The paper evaluates with (a) a synthetic generator that requests random
//! design blocks at interval boundaries (§V-B1) and (b) two SNIA server
//! traces — Microsoft Exchange and TPC-E. The SNIA traces are not
//! redistributable, so this crate ships **statistical workload models** that
//! reproduce the properties the experiments consume (per-interval rate
//! curves, device skew, burstiness, block co-occurrence persistence); see
//! DESIGN.md §2 for the substitution argument.
//!
//! # Contents
//!
//! * [`record`] — trace records and the [`Trace`] container.
//! * [`ascii`] — DiskSim-style ASCII trace parsing/emission.
//! * [`synthetic`] — the paper's synthetic generator.
//! * [`burst`] — flash-crowd burst generator with tunable write share.
//! * [`arrivals`] — bursty (Poisson-modulated) arrival processes.
//! * [`models`] — the Exchange and TPC-E workload models.
//! * [`stats`] — per-interval trace statistics (Fig. 6).
//!
//! # Example
//!
//! ```
//! use fqos_traces::SyntheticConfig;
//!
//! // The paper's Table III generator: 5 blocks per 0.133 ms interval.
//! let trace = SyntheticConfig::table3(5, 133_000).generate();
//! assert_eq!(trace.len(), 10_000);
//! assert!(trace.records.iter().all(|r| r.lbn < 36));
//! ```

pub mod arrivals;
pub mod ascii;
pub mod burst;
pub mod models;
pub mod record;
pub mod rw;
pub mod stats;
pub mod synthetic;

pub use burst::BurstConfig;
pub use record::{Trace, TraceRecord};
pub use stats::TraceIntervalStats;
pub use synthetic::SyntheticConfig;
