//! Bursty arrival processes.
//!
//! Server storage traces are famously bursty: mean rates are far below
//! device capacity but short on-periods drive deep queues (this is exactly
//! why the paper's "original" baselines miss deadlines even though their
//! *average* response time looks fine). We model arrivals as a Poisson
//! process whose rate is modulated per slot by a log-normal multiplier —
//! a standard doubly-stochastic (Cox) process that produces heavy-tailed
//! per-slot counts with a controllable burstiness parameter.

use fqos_flashsim::SimTime;
use rand::rngs::StdRng;
use rand::Rng;
use rand_distr::{Distribution, LogNormal, Poisson};

/// Configuration of a bursty arrival stream.
#[derive(Debug, Clone, Copy)]
pub struct BurstyConfig {
    /// Mean arrival rate over the whole window, in requests per second.
    pub mean_rate_per_s: f64,
    /// Rate-modulation slot length. Shorter slots = finer-grained bursts.
    pub slot_ns: SimTime,
    /// Burstiness: σ of the log-normal rate multiplier. 0 = plain Poisson;
    /// 1.0–1.5 matches the bursty enterprise traces the paper uses.
    pub sigma: f64,
}

impl Default for BurstyConfig {
    fn default() -> Self {
        BurstyConfig {
            mean_rate_per_s: 1000.0,
            slot_ns: 10_000_000,
            sigma: 1.0,
        }
    }
}

/// Generate arrival times in `[start_ns, start_ns + window_ns)`.
///
/// The log-normal multiplier has mean 1 (μ = −σ²/2), so the expected total
/// count is `mean_rate_per_s · window_s` regardless of burstiness.
pub fn bursty_arrivals(
    cfg: &BurstyConfig,
    start_ns: SimTime,
    window_ns: SimTime,
    rng: &mut StdRng,
) -> Vec<SimTime> {
    assert!(cfg.slot_ns > 0);
    let lognormal = LogNormal::new(-cfg.sigma * cfg.sigma / 2.0, cfg.sigma)
        .expect("valid log-normal parameters");
    let mut arrivals = Vec::new();
    let mut slot_start = 0u64;
    while slot_start < window_ns {
        let slot_len = cfg.slot_ns.min(window_ns - slot_start);
        let multiplier = if cfg.sigma > 0.0 {
            lognormal.sample(rng)
        } else {
            1.0
        };
        let expected = cfg.mean_rate_per_s * multiplier * (slot_len as f64 / 1e9);
        let count = if expected > 0.0 {
            Poisson::new(expected.max(1e-12))
                .map(|p| p.sample(rng) as u64)
                .unwrap_or(0)
        } else {
            0
        };
        for _ in 0..count {
            arrivals.push(start_ns + slot_start + rng.gen_range(0..slot_len));
        }
        slot_start += slot_len;
    }
    arrivals.sort_unstable();
    arrivals
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn mean_count_matches_rate() {
        let mut rng = StdRng::seed_from_u64(7);
        let cfg = BurstyConfig {
            mean_rate_per_s: 5000.0,
            slot_ns: 1_000_000,
            sigma: 0.8,
        };
        // 100 windows of 100 ms → expected 500 arrivals each.
        let mut total = 0usize;
        for _ in 0..100 {
            total += bursty_arrivals(&cfg, 0, 100_000_000, &mut rng).len();
        }
        let mean = total as f64 / 100.0;
        assert!((mean - 500.0).abs() < 50.0, "mean {mean}");
    }

    #[test]
    fn arrivals_are_sorted_and_in_window() {
        let mut rng = StdRng::seed_from_u64(1);
        let cfg = BurstyConfig::default();
        let a = bursty_arrivals(&cfg, 500, 50_000_000, &mut rng);
        assert!(a.windows(2).all(|w| w[0] <= w[1]));
        assert!(a.iter().all(|&t| (500..500 + 50_000_000).contains(&t)));
    }

    #[test]
    fn burstiness_increases_slot_variance() {
        let count_variance = |sigma: f64| {
            let mut rng = StdRng::seed_from_u64(42);
            let cfg = BurstyConfig {
                mean_rate_per_s: 10_000.0,
                slot_ns: 1_000_000,
                sigma,
            };
            let arrivals = bursty_arrivals(&cfg, 0, 1_000_000_000, &mut rng);
            // Count per 1 ms slot.
            let mut counts = vec![0f64; 1000];
            for t in arrivals {
                counts[(t / 1_000_000) as usize] += 1.0;
            }
            let mean = counts.iter().sum::<f64>() / counts.len() as f64;
            counts.iter().map(|c| (c - mean) * (c - mean)).sum::<f64>() / counts.len() as f64
        };
        assert!(count_variance(1.2) > 3.0 * count_variance(0.0));
    }

    #[test]
    fn zero_sigma_is_plain_poisson() {
        let mut rng = StdRng::seed_from_u64(3);
        let cfg = BurstyConfig {
            mean_rate_per_s: 1000.0,
            slot_ns: 10_000_000,
            sigma: 0.0,
        };
        let a = bursty_arrivals(&cfg, 0, 1_000_000_000, &mut rng);
        // Poisson(1000): essentially always within ±15%.
        assert!((850..=1150).contains(&a.len()), "{}", a.len());
    }
}
