//! Trace records and the trace container.

use fqos_flashsim::{IoOp, SimTime};

/// One block request of a workload trace.
///
/// `device` is the *original* placement stated by the trace (the paper's
/// "original stand" baseline retrieves from exactly this device); the QoS
/// framework ignores it and places blocks by design-theoretic allocation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceRecord {
    /// Arrival time, nanoseconds since trace start.
    pub arrival_ns: SimTime,
    /// Device (volume) the original trace directs this request to.
    pub device: usize,
    /// Logical block number (already aligned to 8 KiB blocks).
    pub lbn: u64,
    /// Request size in bytes.
    pub size_bytes: u32,
    /// Operation (the paper's experiments replay the read stream).
    pub op: IoOp,
}

/// A workload trace: records sorted by arrival time plus metadata.
#[derive(Debug, Clone)]
pub struct Trace {
    /// Human-readable name ("exchange", "tpce", "synthetic-5").
    pub name: String,
    /// Records sorted by `arrival_ns`.
    pub records: Vec<TraceRecord>,
    /// Number of devices (volumes) named by the original trace.
    pub num_devices: usize,
    /// Reporting interval length (15 min for Exchange, one part for TPC-E,
    /// scaled in the models).
    pub interval_ns: SimTime,
}

impl Trace {
    /// Create a trace, sorting records by arrival.
    pub fn new(
        name: impl Into<String>,
        mut records: Vec<TraceRecord>,
        num_devices: usize,
        interval_ns: SimTime,
    ) -> Self {
        assert!(interval_ns > 0);
        records.sort_by_key(|r| r.arrival_ns);
        Trace {
            name: name.into(),
            records,
            num_devices,
            interval_ns,
        }
    }

    /// Number of reporting intervals covered by the trace.
    pub fn num_intervals(&self) -> usize {
        match self.records.last() {
            None => 0,
            Some(last) => (last.arrival_ns / self.interval_ns) as usize + 1,
        }
    }

    /// Reporting interval a record falls into.
    pub fn interval_of(&self, r: &TraceRecord) -> usize {
        (r.arrival_ns / self.interval_ns) as usize
    }

    /// Iterate over per-interval slices of the (sorted) record array.
    /// Empty intervals yield empty slices.
    pub fn intervals(&self) -> impl Iterator<Item = &[TraceRecord]> {
        let n = self.num_intervals();
        let mut bounds = Vec::with_capacity(n + 1);
        bounds.push(0usize);
        for i in 1..=n {
            let t = i as u64 * self.interval_ns;
            let start = bounds[i - 1];
            let off = self.records[start..].partition_point(|r| r.arrival_ns < t);
            bounds.push(start + off);
        }
        (0..n).map(move |i| &self.records[bounds[i]..bounds[i + 1]])
    }

    /// Total number of records.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// True if the trace has no records.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// Duration from time zero to the last arrival.
    pub fn duration_ns(&self) -> SimTime {
        self.records.last().map_or(0, |r| r.arrival_ns)
    }

    /// Merge two traces into one time-ordered stream (e.g. multiple
    /// applications sharing an array). Device/interval metadata comes from
    /// `self`; the other trace must use compatible device numbering.
    pub fn merge(&self, other: &Trace) -> Trace {
        assert_eq!(self.interval_ns, other.interval_ns, "interval mismatch");
        let mut records = self.records.clone();
        records.extend(other.records.iter().copied());
        Trace::new(
            format!("{}+{}", self.name, other.name),
            records,
            self.num_devices.max(other.num_devices),
            self.interval_ns,
        )
    }

    /// Extract reporting intervals `[from, to)` as a new trace re-based to
    /// time zero.
    pub fn slice_intervals(&self, from: usize, to: usize) -> Trace {
        assert!(from <= to);
        let base = from as u64 * self.interval_ns;
        let records: Vec<TraceRecord> = self
            .records
            .iter()
            .filter(|r| {
                let i = (r.arrival_ns / self.interval_ns) as usize;
                (from..to).contains(&i)
            })
            .map(|r| TraceRecord {
                arrival_ns: r.arrival_ns - base,
                ..*r
            })
            .collect();
        Trace::new(
            format!("{}[{from}..{to}]", self.name),
            records,
            self.num_devices,
            self.interval_ns,
        )
    }

    /// Uniformly scale all arrival times (and the interval length) by
    /// `numer / denom` — e.g. compress a trace 10× to stress-test a
    /// configuration.
    pub fn scale_time(&self, numer: u64, denom: u64) -> Trace {
        assert!(numer > 0 && denom > 0);
        let records: Vec<TraceRecord> = self
            .records
            .iter()
            .map(|r| TraceRecord {
                arrival_ns: r.arrival_ns * numer / denom,
                ..*r
            })
            .collect();
        Trace::new(
            format!("{}x{numer}/{denom}", self.name),
            records,
            self.num_devices,
            (self.interval_ns * numer / denom).max(1),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(t: u64, lbn: u64) -> TraceRecord {
        TraceRecord {
            arrival_ns: t,
            device: 0,
            lbn,
            size_bytes: 8192,
            op: IoOp::Read,
        }
    }

    #[test]
    fn records_are_sorted_on_construction() {
        let t = Trace::new("t", vec![rec(30, 0), rec(10, 1), rec(20, 2)], 1, 100);
        let arrivals: Vec<u64> = t.records.iter().map(|r| r.arrival_ns).collect();
        assert_eq!(arrivals, vec![10, 20, 30]);
    }

    #[test]
    fn interval_partitioning() {
        let t = Trace::new(
            "t",
            vec![rec(0, 0), rec(99, 1), rec(100, 2), rec(350, 3)],
            1,
            100,
        );
        assert_eq!(t.num_intervals(), 4);
        let sizes: Vec<usize> = t.intervals().map(<[TraceRecord]>::len).collect();
        assert_eq!(sizes, vec![2, 1, 0, 1]);
    }

    #[test]
    fn empty_trace() {
        let t = Trace::new("t", vec![], 1, 100);
        assert_eq!(t.num_intervals(), 0);
        assert_eq!(t.intervals().count(), 0);
        assert!(t.is_empty());
    }

    #[test]
    fn interval_of_matches_partition() {
        let t = Trace::new("t", vec![rec(0, 0), rec(99, 1), rec(100, 2)], 1, 100);
        assert_eq!(t.interval_of(&t.records[0]), 0);
        assert_eq!(t.interval_of(&t.records[1]), 0);
        assert_eq!(t.interval_of(&t.records[2]), 1);
    }

    #[test]
    fn merge_interleaves_by_time() {
        let a = Trace::new("a", vec![rec(10, 1), rec(30, 2)], 2, 100);
        let b = Trace::new("b", vec![rec(20, 3)], 3, 100);
        let m = a.merge(&b);
        let lbns: Vec<u64> = m.records.iter().map(|r| r.lbn).collect();
        assert_eq!(lbns, vec![1, 3, 2]);
        assert_eq!(m.num_devices, 3);
    }

    #[test]
    fn slice_rebases_time() {
        let t = Trace::new("t", vec![rec(50, 0), rec(150, 1), rec(250, 2)], 1, 100);
        let s = t.slice_intervals(1, 3);
        assert_eq!(s.len(), 2);
        assert_eq!(s.records[0].arrival_ns, 50);
        assert_eq!(s.records[1].arrival_ns, 150);
    }

    #[test]
    fn scale_time_compresses_and_dilates() {
        let t = Trace::new("t", vec![rec(100, 0), rec(200, 1)], 1, 100);
        let fast = t.scale_time(1, 2);
        assert_eq!(fast.records[0].arrival_ns, 50);
        assert_eq!(fast.interval_ns, 50);
        let slow = t.scale_time(3, 1);
        assert_eq!(slow.records[1].arrival_ns, 600);
    }
}
