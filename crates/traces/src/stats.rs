//! Per-interval trace statistics — the Fig. 6 metrics.

use crate::record::Trace;

/// Statistics of one reporting interval (Fig. 6: total reads per interval,
/// maximum and average reads per second).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TraceIntervalStats {
    /// Interval index.
    pub interval: usize,
    /// Total read requests in the interval.
    pub total_requests: u64,
    /// Average request rate over the interval, requests/second.
    pub avg_per_sec: f64,
    /// Peak request rate over any one-second bucket (or any one bucket of
    /// `bucket_ns` when the interval is shorter than a second).
    pub max_per_sec: f64,
}

/// Compute Fig. 6-style statistics for every interval of a trace.
///
/// Rates are measured over fixed buckets of `bucket_ns` (use 1 s for
/// full-scale traces; the scaled models pass something smaller and the rate
/// is normalized to per-second).
pub fn interval_stats(trace: &Trace, bucket_ns: u64) -> Vec<TraceIntervalStats> {
    assert!(bucket_ns > 0);
    let interval_ns = trace.interval_ns;
    trace
        .intervals()
        .enumerate()
        .map(|(i, records)| {
            let total = records.len() as u64;
            let avg_per_sec = total as f64 / (interval_ns as f64 / 1e9);
            // Bucket the interval and find the peak.
            let buckets = interval_ns.div_ceil(bucket_ns) as usize;
            let mut counts = vec![0u64; buckets.max(1)];
            let base = i as u64 * interval_ns;
            let last = counts.len() - 1;
            for r in records {
                let b = ((r.arrival_ns - base) / bucket_ns) as usize;
                counts[b.min(last)] += 1;
            }
            let max = counts.iter().copied().max().unwrap_or(0);
            let max_per_sec = max as f64 / (bucket_ns as f64 / 1e9);
            TraceIntervalStats {
                interval: i,
                total_requests: total,
                avg_per_sec,
                max_per_sec,
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::TraceRecord;
    use fqos_flashsim::IoOp;

    fn rec(t: u64) -> TraceRecord {
        TraceRecord {
            arrival_ns: t,
            device: 0,
            lbn: 0,
            size_bytes: 8192,
            op: IoOp::Read,
        }
    }

    #[test]
    fn uniform_interval_rates() {
        // 10 requests spread over a 1-second interval.
        let records: Vec<_> = (0..10).map(|i| rec(i * 100_000_000)).collect();
        let t = Trace::new("t", records, 1, 1_000_000_000);
        let s = interval_stats(&t, 100_000_000);
        assert_eq!(s.len(), 1);
        assert_eq!(s[0].total_requests, 10);
        assert!((s[0].avg_per_sec - 10.0).abs() < 1e-9);
        // One request per 100 ms bucket → peak rate 10/s.
        assert!((s[0].max_per_sec - 10.0).abs() < 1e-9);
    }

    #[test]
    fn bursty_interval_peak_exceeds_average() {
        // All 10 requests in the first 100 ms bucket of a 1 s interval.
        let records: Vec<_> = (0..10).map(|i| rec(i * 1_000)).collect();
        let t = Trace::new("t", records, 1, 1_000_000_000);
        let s = interval_stats(&t, 100_000_000);
        assert!((s[0].avg_per_sec - 10.0).abs() < 1e-9);
        assert!((s[0].max_per_sec - 100.0).abs() < 1e-9);
    }

    #[test]
    fn multiple_intervals() {
        let mut records: Vec<_> = (0..5).map(rec).collect();
        records.push(rec(1_000_000_001));
        let t = Trace::new("t", records, 1, 1_000_000_000);
        let s = interval_stats(&t, 1_000_000_000);
        assert_eq!(s.len(), 2);
        assert_eq!(s[0].total_requests, 5);
        assert_eq!(s[1].total_requests, 1);
    }
}
