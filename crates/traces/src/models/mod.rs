//! Statistical server-workload models replacing the SNIA traces.
//!
//! The paper's real-workload experiments consume four properties of the
//! Exchange and TPC-E traces:
//!
//! 1. the per-interval request-rate curve (Fig. 6),
//! 2. sub-millisecond burstiness (what makes the "original" layout miss
//!    deadlines while its average looks fine),
//! 3. skewed placement across the original volumes (hotspot devices),
//! 4. block co-occurrence that persists across intervals (what FIM mines;
//!    ≈17 % inter-interval re-match for Exchange, ≈87 % for TPC-E).
//!
//! [`ServerModel`] generates traces with exactly these properties;
//! [`exchange`] and [`tpce`] are the tuned presets. Scale is configurable —
//! the defaults run in seconds on a laptop while preserving the shapes.

pub mod exchange;
pub mod tpce;

use crate::arrivals::{bursty_arrivals, BurstyConfig};
use crate::record::{Trace, TraceRecord};
use fqos_flashsim::{IoOp, SimTime, BLOCK_SIZE_BYTES};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use rand_distr::{Distribution, Zipf};

pub use exchange::exchange;
pub use tpce::tpce;

/// Parameters of a statistical server workload.
#[derive(Debug, Clone)]
pub struct ServerModel {
    /// Trace name.
    pub name: String,
    /// Number of volumes (devices) in the original layout.
    pub num_devices: usize,
    /// Reporting interval length (scaled).
    pub interval_ns: SimTime,
    /// Per-interval mean request rate, requests/second. The vector length
    /// sets the number of intervals.
    pub rate_per_s: Vec<f64>,
    /// Burstiness σ of the log-normal rate modulation.
    pub burst_sigma: f64,
    /// Rate-modulation slot length (sub-interval bursts).
    pub burst_slot_ns: SimTime,
    /// Logical block space size.
    pub lbn_space: u64,
    /// Zipf exponent of block popularity.
    pub zipf_s: f64,
    /// Fraction of requests issued as correlated pairs.
    pub pair_fraction: f64,
    /// Number of correlated block pairs alive at a time.
    pub pair_pool: usize,
    /// Fraction of the pair pool redrawn at each interval boundary
    /// (low = persistent working set = high FIM re-match).
    pub pair_churn: f64,
    /// Zipf exponent of the device (volume) load skew.
    pub device_skew: f64,
    /// Working-set drift: hot-block window shift per interval, in blocks.
    pub drift_per_interval: u64,
    /// RNG seed.
    pub seed: u64,
}

impl ServerModel {
    /// Generate the trace.
    pub fn generate(&self) -> Trace {
        assert!(!self.rate_per_s.is_empty());
        assert!(self.lbn_space > 1);
        let mut rng = StdRng::seed_from_u64(self.seed);
        let zipf = Zipf::new(self.lbn_space, self.zipf_s).expect("valid zipf");
        let device_weights = device_cumweights(self.num_devices, self.device_skew);

        // Correlated pair pool, refreshed with churn each interval.
        let mut pairs: Vec<(u64, u64)> = (0..self.pair_pool)
            .map(|_| self.draw_pair(&zipf, 0, &mut rng))
            .collect();

        let mut records = Vec::new();
        for (i, &rate) in self.rate_per_s.iter().enumerate() {
            let drift = self.drift_per_interval * i as u64;
            // Churn the pair pool.
            for p in pairs.iter_mut() {
                if rng.gen_bool(self.pair_churn) {
                    *p = self.draw_pair(&zipf, drift, &mut rng);
                }
            }
            let cfg = BurstyConfig {
                mean_rate_per_s: rate,
                slot_ns: self.burst_slot_ns,
                sigma: self.burst_sigma,
            };
            let start = i as u64 * self.interval_ns;
            let arrivals = bursty_arrivals(&cfg, start, self.interval_ns, &mut rng);

            // Assign blocks: pairs occupy two consecutive arrivals.
            let mut a = 0usize;
            while a < arrivals.len() {
                if a + 1 < arrivals.len() && rng.gen_bool(self.pair_fraction) {
                    let &(x, y) = &pairs[rng.gen_range(0..pairs.len())];
                    records.push(self.record(arrivals[a], x, &device_weights));
                    records.push(self.record(arrivals[a + 1], y, &device_weights));
                    a += 2;
                } else {
                    let lbn = self.draw_block(&zipf, drift, &mut rng);
                    records.push(self.record(arrivals[a], lbn, &device_weights));
                    a += 1;
                }
            }
        }
        Trace::new(
            self.name.clone(),
            records,
            self.num_devices,
            self.interval_ns,
        )
    }

    fn record(&self, arrival_ns: SimTime, lbn: u64, weights: &[f64]) -> TraceRecord {
        TraceRecord {
            arrival_ns,
            device: device_of(lbn, weights),
            lbn,
            size_bytes: BLOCK_SIZE_BYTES,
            op: IoOp::Read,
        }
    }

    fn draw_block(&self, zipf: &Zipf<f64>, drift: u64, rng: &mut StdRng) -> u64 {
        // Zipf rank → block id, with the hot window drifting per interval to
        // model working-set movement.
        let rank = zipf.sample(rng) as u64 - 1;
        (rank + drift) % self.lbn_space
    }

    fn draw_pair(&self, zipf: &Zipf<f64>, drift: u64, rng: &mut StdRng) -> (u64, u64) {
        let a = self.draw_block(zipf, drift, rng);
        let mut b = self.draw_block(zipf, drift, rng);
        if b == a {
            b = (a + 1) % self.lbn_space;
        }
        (a, b)
    }
}

/// Cumulative device-share weights: device `i`'s share ∝ `1/(i+1)^skew`.
fn device_cumweights(n: usize, skew: f64) -> Vec<f64> {
    let raw: Vec<f64> = (0..n).map(|i| 1.0 / ((i + 1) as f64).powf(skew)).collect();
    let total: f64 = raw.iter().sum();
    let mut acc = 0.0;
    raw.iter()
        .map(|w| {
            acc += w / total;
            acc
        })
        .collect()
}

/// Deterministic device of a block: hash the LBN into `[0,1)` and pick by
/// cumulative share, so the same block always lives on the same volume.
fn device_of(lbn: u64, cumweights: &[f64]) -> usize {
    let h = splitmix64(lbn);
    let u = (h >> 11) as f64 / (1u64 << 53) as f64;
    cumweights
        .partition_point(|&c| c < u)
        .min(cumweights.len() - 1)
}

fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E3779B97F4A7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D049BB133111EB);
    x ^ (x >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn device_assignment_is_deterministic_and_skewed() {
        let w = device_cumweights(9, 1.0);
        assert!((w[8] - 1.0).abs() < 1e-12);
        // Determinism.
        assert_eq!(device_of(12345, &w), device_of(12345, &w));
        // Skew: device 0 gets the largest share over many blocks.
        let mut counts = vec![0usize; 9];
        for lbn in 0..100_000u64 {
            counts[device_of(lbn, &w)] += 1;
        }
        assert!(counts[0] > counts[8] * 2, "{counts:?}");
    }

    #[test]
    fn model_generates_sorted_reads_within_devices() {
        let m = ServerModel {
            name: "mini".into(),
            num_devices: 4,
            interval_ns: 50_000_000,
            rate_per_s: vec![2000.0; 4],
            burst_sigma: 1.0,
            burst_slot_ns: 1_000_000,
            lbn_space: 1000,
            zipf_s: 0.9,
            pair_fraction: 0.5,
            pair_pool: 50,
            pair_churn: 0.2,
            device_skew: 0.8,
            drift_per_interval: 10,
            seed: 9,
        };
        let t = m.generate();
        assert!(!t.is_empty());
        assert_eq!(t.num_devices, 4);
        assert!(t
            .records
            .windows(2)
            .all(|w| w[0].arrival_ns <= w[1].arrival_ns));
        assert!(t.records.iter().all(|r| r.device < 4 && r.lbn < 1000));
        assert!(t.records.iter().all(|r| r.op == IoOp::Read));
        // Expected count ≈ rate × duration = 2000/s × 0.2 s = 400.
        assert!((200..800).contains(&t.len()), "{}", t.len());
    }

    #[test]
    fn pair_fraction_creates_adjacent_co_occurrence() {
        let base = ServerModel {
            name: "x".into(),
            num_devices: 4,
            interval_ns: 100_000_000,
            rate_per_s: vec![5000.0; 2],
            burst_sigma: 0.0,
            burst_slot_ns: 1_000_000,
            lbn_space: 10_000,
            zipf_s: 0.8,
            pair_fraction: 0.9,
            pair_pool: 20,
            pair_churn: 0.0,
            device_skew: 0.5,
            drift_per_interval: 0,
            seed: 4,
        };
        let t = base.generate();
        // With a tiny persistent pair pool, repeated adjacent (a,b) block
        // pairs must dominate: count adjacent pairs seen more than once.
        let mut counts = std::collections::HashMap::new();
        for w in t.records.windows(2) {
            *counts.entry((w[0].lbn, w[1].lbn)).or_insert(0u32) += 1;
        }
        let repeated: u32 = counts.values().filter(|&&c| c > 1).sum();
        assert!(
            repeated as usize > t.len() / 4,
            "repeated = {repeated}, len = {}",
            t.len()
        );
    }
}
