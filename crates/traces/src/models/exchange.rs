//! The Exchange workload model.
//!
//! Models the paper's Microsoft Exchange 2007 mail-server trace: a 24-hour
//! weekday of read requests on 9 active volumes, reported in 96 fifteen-
//! minute intervals, with a pronounced diurnal load curve (the trace starts
//! at 2:39 pm, so it *begins* near the peak, dips overnight and climbs
//! again), heavy sub-second burstiness, and a mail working set that shifts
//! substantially between intervals (the paper measures only ≈17 % of
//! FIM-mined blocks recurring in the next interval).

use super::ServerModel;
use fqos_flashsim::SimTime;

/// Scale knobs for the Exchange model.
#[derive(Debug, Clone, Copy)]
pub struct ExchangeConfig {
    /// Number of reporting intervals (the real trace has 96).
    pub intervals: usize,
    /// Scaled interval length (real: 15 min). Default 200 ms keeps the full
    /// 96-interval run around 20 s of simulated time.
    pub interval_ns: SimTime,
    /// Mean request rate at the diurnal peak, requests/second.
    pub peak_rate_per_s: f64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for ExchangeConfig {
    fn default() -> Self {
        ExchangeConfig {
            intervals: 96,
            interval_ns: 200_000_000,
            peak_rate_per_s: 6_000.0,
            seed: 0xE8C4A06E,
        }
    }
}

/// Build the Exchange workload model.
pub fn exchange(cfg: ExchangeConfig) -> ServerModel {
    // Diurnal curve: the trace starts mid-afternoon (near peak), troughs
    // overnight around interval ~40, and recovers. Base share 0.25 keeps
    // night-time traffic nonzero, as in Fig. 6(a).
    let n = cfg.intervals.max(1);
    let rate_per_s: Vec<f64> = (0..n)
        .map(|i| {
            let phase = 2.0 * std::f64::consts::PI * (i as f64 / 96.0 + 0.08);
            let diurnal = 0.25 + 0.75 * (0.5 + 0.5 * phase.cos());
            cfg.peak_rate_per_s * diurnal
        })
        .collect();
    ServerModel {
        name: "exchange".into(),
        num_devices: 9,
        interval_ns: cfg.interval_ns,
        rate_per_s,
        burst_sigma: 1.25,
        burst_slot_ns: 500_000, // 0.5 ms burst granularity
        lbn_space: 200_000,
        zipf_s: 0.9,
        pair_fraction: 0.45,
        pair_pool: 400,
        // High churn: the mail working set moves, so mined pairs rarely
        // recur — the paper's ≈17 % re-match.
        pair_churn: 0.33,
        device_skew: 0.9,
        drift_per_interval: 1_500,
        seed: cfg.seed,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn diurnal_curve_has_peak_and_trough() {
        let m = exchange(ExchangeConfig::default());
        assert_eq!(m.rate_per_s.len(), 96);
        let max = m.rate_per_s.iter().cloned().fold(f64::MIN, f64::max);
        let min = m.rate_per_s.iter().cloned().fold(f64::MAX, f64::min);
        assert!(max / min > 2.5, "peak/trough = {}", max / min);
        // Starts near the peak (trace begins 2:39 pm).
        assert!(m.rate_per_s[0] > 0.8 * max);
    }

    #[test]
    fn generates_nine_volume_trace() {
        // Shrunk interval count keeps the test fast.
        let cfg = ExchangeConfig {
            intervals: 8,
            ..Default::default()
        };
        let t = exchange(cfg).generate();
        assert_eq!(t.num_devices, 9);
        assert!(t.records.iter().all(|r| r.device < 9));
        assert_eq!(t.num_intervals(), 8);
    }
}
