//! The TPC-E workload model.
//!
//! Models the paper's TPC-E OLTP trace: 84 minutes of brokerage-firm
//! transaction processing on 13 active volumes, delivered as 6 parts of
//! 10–16 minutes. Rates are high and comparatively steady within a part,
//! and the hot working set is extremely persistent — the paper measures
//! ≈87 % of FIM-mined blocks recurring in the next interval.

use super::ServerModel;
use fqos_flashsim::SimTime;

/// Scale knobs for the TPC-E model.
#[derive(Debug, Clone, Copy)]
pub struct TpceConfig {
    /// Scaled length of a nominal 14-minute part. Default 500 ms keeps the
    /// 6-part run around 3 s of simulated time.
    pub part_ns: SimTime,
    /// Mean request rate, requests/second (OLTP: much higher than mail).
    pub rate_per_s: f64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for TpceConfig {
    fn default() -> Self {
        TpceConfig {
            part_ns: 500_000_000,
            rate_per_s: 15_000.0,
            seed: 0x79CE,
        }
    }
}

/// Build the TPC-E workload model: 6 parts with mildly varying rates.
pub fn tpce(cfg: TpceConfig) -> ServerModel {
    // Per-part rate multipliers: steady OLTP load with modest variation
    // (Fig. 6(c) shows all six parts within ~2× of each other).
    let multipliers = [1.0, 1.25, 1.45, 1.1, 0.85, 0.7];
    let rate_per_s: Vec<f64> = multipliers.iter().map(|m| cfg.rate_per_s * m).collect();
    ServerModel {
        name: "tpce".into(),
        num_devices: 13,
        interval_ns: cfg.part_ns,
        rate_per_s,
        burst_sigma: 0.55,
        burst_slot_ns: 300_000, // 0.3 ms burst granularity
        lbn_space: 500_000,
        zipf_s: 0.9,
        pair_fraction: 0.75,
        pair_pool: 600,
        // OLTP hot set barely moves: the paper's ≈87 % re-match.
        pair_churn: 0.04,
        device_skew: 0.7,
        drift_per_interval: 0,
        seed: cfg.seed,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn six_parts_with_steady_rates() {
        let m = tpce(TpceConfig::default());
        assert_eq!(m.rate_per_s.len(), 6);
        let max = m.rate_per_s.iter().cloned().fold(f64::MIN, f64::max);
        let min = m.rate_per_s.iter().cloned().fold(f64::MAX, f64::min);
        assert!(max / min < 2.5);
    }

    #[test]
    fn generates_thirteen_volume_trace() {
        // Shrunk part length keeps the test fast.
        let cfg = TpceConfig {
            part_ns: 50_000_000,
            ..Default::default()
        };
        let t = tpce(cfg).generate();
        assert_eq!(t.num_devices, 13);
        assert_eq!(t.num_intervals(), 6);
        assert!(t.records.iter().all(|r| r.device < 13));
    }

    #[test]
    fn working_set_is_more_persistent_than_exchange() {
        // Structural check on the model parameters that drive the Fig. 11
        // contrast (the behavioural check lives in the fim crate's tests).
        let t = tpce(TpceConfig::default());
        let e = super::super::exchange::exchange(Default::default());
        assert!(t.pair_churn < e.pair_churn / 5.0);
        assert!(t.pair_fraction > e.pair_fraction);
    }
}
