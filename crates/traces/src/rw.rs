//! Read/write mix utilities.
//!
//! The paper replays the read streams of its traces; real deployments also
//! write, and on a replicated layout a write must update **every** replica.
//! This module converts a fraction of a trace's records into writes so the
//! write path of the QoS scheduler can be exercised.

use crate::record::Trace;
use fqos_flashsim::IoOp;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Return a copy of `trace` with approximately `fraction` of its records
/// turned into writes (selected pseudo-randomly, deterministic per seed).
pub fn with_write_fraction(trace: &Trace, fraction: f64, seed: u64) -> Trace {
    assert!((0.0..=1.0).contains(&fraction));
    let mut rng = StdRng::seed_from_u64(seed);
    let records = trace
        .records
        .iter()
        .map(|r| {
            let mut r = *r;
            r.op = if rng.gen_bool(fraction) {
                IoOp::Write
            } else {
                IoOp::Read
            };
            r
        })
        .collect();
    Trace::new(
        format!("{}+w{:.0}%", trace.name, fraction * 100.0),
        records,
        trace.num_devices,
        trace.interval_ns,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::synthetic::SyntheticConfig;

    #[test]
    fn fraction_is_respected() {
        let t = SyntheticConfig::table3(5, 133_000).generate();
        let w = with_write_fraction(&t, 0.3, 1);
        let writes = w.records.iter().filter(|r| r.op == IoOp::Write).count();
        let frac = writes as f64 / w.len() as f64;
        assert!((frac - 0.3).abs() < 0.03, "write fraction {frac}");
        assert_eq!(w.len(), t.len());
    }

    #[test]
    fn extremes() {
        let t = SyntheticConfig::table3(5, 133_000).generate();
        assert!(with_write_fraction(&t, 0.0, 1)
            .records
            .iter()
            .all(|r| r.op == IoOp::Read));
        assert!(with_write_fraction(&t, 1.0, 1)
            .records
            .iter()
            .all(|r| r.op == IoOp::Write));
    }

    #[test]
    fn deterministic_per_seed() {
        let t = SyntheticConfig::table3(5, 133_000).generate();
        let a = with_write_fraction(&t, 0.5, 7);
        let b = with_write_fraction(&t, 0.5, 7);
        assert_eq!(a.records, b.records);
    }
}
