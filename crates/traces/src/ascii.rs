//! DiskSim-style ASCII trace format.
//!
//! The paper feeds DiskSim its default ASCII input: one request per line,
//! five whitespace-separated fields —
//!
//! ```text
//! <arrival-time-ms> <device-number> <block-number> <request-size-blocks> <flags>
//! ```
//!
//! with flag bit `0x1` marking a read. Request size is in 512-byte sectors
//! in stock DiskSim; like the paper we align everything to 8 KiB blocks, so
//! here the size field counts 8 KiB blocks.

use crate::record::{Trace, TraceRecord};
use fqos_flashsim::{time, IoOp, BLOCK_SIZE_BYTES};
use std::fmt::Write as _;

/// Error from parsing an ASCII trace.
#[derive(Debug, Clone, PartialEq)]
pub struct ParseError {
    /// 1-based line number.
    pub line: usize,
    /// What went wrong.
    pub message: String,
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for ParseError {}

/// Parse an ASCII trace. Lines that are empty or start with `#` are skipped.
pub fn parse(
    input: &str,
    name: impl Into<String>,
    num_devices: usize,
    interval_ns: u64,
) -> Result<Trace, ParseError> {
    let mut records = Vec::new();
    for (idx, line) in input.lines().enumerate() {
        let line_no = idx + 1;
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let fields: Vec<&str> = line.split_whitespace().collect();
        if fields.len() != 5 {
            return Err(ParseError {
                line: line_no,
                message: format!("expected 5 fields, found {}", fields.len()),
            });
        }
        let arrival_ms: f64 = fields[0].parse().map_err(|e| ParseError {
            line: line_no,
            message: format!("arrival: {e}"),
        })?;
        let device: usize = fields[1].parse().map_err(|e| ParseError {
            line: line_no,
            message: format!("device: {e}"),
        })?;
        let lbn: u64 = fields[2].parse().map_err(|e| ParseError {
            line: line_no,
            message: format!("block: {e}"),
        })?;
        let blocks: u32 = fields[3].parse().map_err(|e| ParseError {
            line: line_no,
            message: format!("size: {e}"),
        })?;
        let flags: u32 = fields[4].parse().map_err(|e| ParseError {
            line: line_no,
            message: format!("flags: {e}"),
        })?;
        if arrival_ms < 0.0 {
            return Err(ParseError {
                line: line_no,
                message: "negative arrival time".into(),
            });
        }
        records.push(TraceRecord {
            arrival_ns: time::ms_to_ns(arrival_ms),
            device,
            lbn,
            size_bytes: blocks.max(1) * BLOCK_SIZE_BYTES,
            op: if flags & 1 == 1 {
                IoOp::Read
            } else {
                IoOp::Write
            },
        });
    }
    Ok(Trace::new(name, records, num_devices, interval_ns))
}

/// Emit a trace in the ASCII format accepted by [`parse`].
pub fn emit(trace: &Trace) -> String {
    let mut out = String::with_capacity(trace.records.len() * 32);
    let _ = writeln!(
        out,
        "# trace: {} ({} records)",
        trace.name,
        trace.records.len()
    );
    for r in &trace.records {
        let flags = if r.op == IoOp::Read { 1 } else { 0 };
        let _ = writeln!(
            out,
            "{:.6} {} {} {} {}",
            time::ns_to_ms(r.arrival_ns),
            r.device,
            r.lbn,
            r.size_bytes.div_ceil(BLOCK_SIZE_BYTES),
            flags
        );
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_basic_trace() {
        let input = "# comment\n0.0 0 100 1 1\n0.133 2 200 2 0\n\n";
        let t = parse(input, "t", 3, 133_000).unwrap();
        assert_eq!(t.len(), 2);
        assert_eq!(t.records[0].lbn, 100);
        assert_eq!(t.records[0].op, IoOp::Read);
        assert_eq!(t.records[1].op, IoOp::Write);
        assert_eq!(t.records[1].size_bytes, 2 * BLOCK_SIZE_BYTES);
        assert_eq!(t.records[1].arrival_ns, 133_000);
    }

    #[test]
    fn rejects_malformed_lines() {
        assert!(parse("0.0 0 1", "t", 1, 100).is_err());
        assert!(parse("x 0 1 1 1", "t", 1, 100).is_err());
        assert!(parse("-1.0 0 1 1 1", "t", 1, 100).is_err());
        let err = parse("0.0 0 1 1 1\nbroken line here", "t", 1, 100).unwrap_err();
        assert_eq!(err.line, 2);
    }

    #[test]
    fn roundtrip() {
        let input = "0.000000 0 100 1 1\n0.133000 2 200 2 0\n";
        let t = parse(input, "t", 3, 133_000).unwrap();
        let emitted = emit(&t);
        let t2 = parse(&emitted, "t", 3, 133_000).unwrap();
        assert_eq!(t.records, t2.records);
    }
}
