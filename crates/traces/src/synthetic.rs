//! The paper's synthetic workload generator (§V-B1).
//!
//! "It requires the number of devices, interval duration, and the number of
//! blocks to be requested for each interval, and produces the trace by
//! randomly selecting the blocks to be requested from the available design
//! blocks." All requests of an interval are placed at the interval start;
//! the run stops once `total_requests` block requests have been generated.

use crate::record::{Trace, TraceRecord};
use fqos_flashsim::{IoOp, SimTime, BLOCK_SIZE_BYTES};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Parameters of the synthetic generator.
#[derive(Debug, Clone, Copy)]
pub struct SyntheticConfig {
    /// Block requests issued at the start of every interval (5, 14 or 27 in
    /// Table III).
    pub blocks_per_interval: usize,
    /// Interval duration `T` (0.133 / 0.266 / 0.399 ms in Table III).
    pub interval_ns: SimTime,
    /// Total block requests to generate (10 000 in the paper).
    pub total_requests: usize,
    /// Size of the block pool to draw from (36 for the rotated `(9,3,1)`
    /// design).
    pub block_pool: u64,
    /// RNG seed for reproducibility.
    pub seed: u64,
}

impl SyntheticConfig {
    /// The Table III configuration for a given `(blocks, interval)` row.
    pub fn table3(blocks_per_interval: usize, interval_ns: SimTime) -> Self {
        SyntheticConfig {
            blocks_per_interval,
            interval_ns,
            total_requests: 10_000,
            block_pool: 36,
            seed: 0x5EED,
        }
    }

    /// Generate the trace. The `lbn` of each record is the bucket number in
    /// `0..block_pool`; `device` is left 0 (allocation happens downstream).
    ///
    /// Blocks are drawn *distinct within each interval* (a storage system
    /// coalesces duplicate reads of one block; the paper's Table III
    /// maxima are only reachable this way since `S(M)` guarantees apply to
    /// distinct buckets). Requires `blocks_per_interval <= block_pool`.
    pub fn generate(&self) -> Trace {
        assert!(self.blocks_per_interval > 0 && self.block_pool > 0);
        assert!(
            self.blocks_per_interval as u64 <= self.block_pool,
            "cannot draw more distinct blocks than the pool holds"
        );
        let mut rng = StdRng::seed_from_u64(self.seed);
        let mut pool: Vec<u64> = (0..self.block_pool).collect();
        let mut records = Vec::with_capacity(self.total_requests);
        let mut interval = 0u64;
        while records.len() < self.total_requests {
            let n = self
                .blocks_per_interval
                .min(self.total_requests - records.len());
            let arrival = interval * self.interval_ns;
            // Partial Fisher–Yates: the first n pool entries are the draw.
            for i in 0..n {
                let j = rng.gen_range(i..pool.len());
                pool.swap(i, j);
                records.push(TraceRecord {
                    arrival_ns: arrival,
                    device: 0,
                    lbn: pool[i],
                    size_bytes: BLOCK_SIZE_BYTES,
                    op: IoOp::Read,
                });
            }
            interval += 1;
        }
        Trace::new(
            format!(
                "synthetic-{}x{}",
                self.blocks_per_interval, self.total_requests
            ),
            records,
            1,
            self.interval_ns,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fqos_flashsim::time::BASE_INTERVAL_NS;

    #[test]
    fn generates_exact_total() {
        let t = SyntheticConfig::table3(5, BASE_INTERVAL_NS).generate();
        assert_eq!(t.len(), 10_000);
    }

    #[test]
    fn requests_sit_at_interval_starts() {
        let cfg = SyntheticConfig::table3(14, 2 * BASE_INTERVAL_NS);
        let t = cfg.generate();
        for r in &t.records {
            assert_eq!(r.arrival_ns % cfg.interval_ns, 0);
        }
    }

    #[test]
    fn interval_sizes_match_config() {
        let cfg = SyntheticConfig::table3(27, 3 * BASE_INTERVAL_NS);
        let t = cfg.generate();
        let sizes: Vec<usize> = t.intervals().map(<[TraceRecord]>::len).collect();
        // 10000 / 27 = 370 full intervals + remainder 10.
        assert_eq!(sizes.len(), 371);
        assert!(sizes[..370].iter().all(|&s| s == 27));
        assert_eq!(sizes[370], 10);
    }

    #[test]
    fn blocks_stay_in_pool() {
        let t = SyntheticConfig::table3(5, BASE_INTERVAL_NS).generate();
        assert!(t.records.iter().all(|r| r.lbn < 36));
        // All 36 buckets appear across 10 000 draws.
        let mut seen = [false; 36];
        for r in &t.records {
            seen[r.lbn as usize] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn deterministic_for_fixed_seed() {
        let a = SyntheticConfig::table3(5, BASE_INTERVAL_NS).generate();
        let b = SyntheticConfig::table3(5, BASE_INTERVAL_NS).generate();
        assert_eq!(a.records, b.records);
    }
}
