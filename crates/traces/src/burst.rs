//! Flash-crowd burst generator.
//!
//! The synthetic generator (§V-B1) issues a constant number of blocks per
//! interval; GC-storm and graceful-degradation experiments need the
//! opposite — a calm baseline rate punctuated by a *flash crowd* where the
//! arrival rate jumps for a bounded episode, with a tunable share of the
//! traffic being writes (each of which fans out to every replica
//! downstream). The generator is deterministic per seed so scenarios can
//! pin exact admission decisions.

use crate::record::{Trace, TraceRecord};
use fqos_flashsim::{IoOp, SimTime, BLOCK_SIZE_BYTES};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Parameters of the flash-crowd generator.
#[derive(Debug, Clone, Copy)]
pub struct BurstConfig {
    /// Block requests per interval outside the burst episode.
    pub base_blocks_per_interval: usize,
    /// Block requests per interval during the burst (the crowd height).
    pub burst_blocks_per_interval: usize,
    /// First interval of the burst episode.
    pub burst_start_interval: u64,
    /// Length of the burst episode in intervals (0 = no burst).
    pub burst_intervals: u64,
    /// Total intervals generated.
    pub total_intervals: u64,
    /// Interval duration `T`.
    pub interval_ns: SimTime,
    /// Size of the block pool to draw from (blocks are distinct within an
    /// interval, matching [`crate::synthetic::SyntheticConfig`]).
    pub block_pool: u64,
    /// Fraction of records issued as writes (0.0–1.0).
    pub write_fraction: f64,
    /// RNG seed for reproducibility.
    pub seed: u64,
}

impl BurstConfig {
    /// A flash crowd over the rotated `(9,3,1)` design's 36 buckets:
    /// `base` blocks per interval, jumping to `burst` for `burst_len`
    /// intervals starting at `start`.
    pub fn flash_crowd(
        base: usize,
        burst: usize,
        start: u64,
        burst_len: u64,
        total: u64,
        interval_ns: SimTime,
    ) -> Self {
        BurstConfig {
            base_blocks_per_interval: base,
            burst_blocks_per_interval: burst,
            burst_start_interval: start,
            burst_intervals: burst_len,
            total_intervals: total,
            interval_ns,
            block_pool: 36,
            write_fraction: 0.0,
            seed: 0x5EED,
        }
    }

    /// Set the write share of the generated traffic.
    pub fn with_write_fraction(mut self, fraction: f64) -> Self {
        self.write_fraction = fraction;
        self
    }

    /// Requests generated for `interval`.
    pub fn rate_at(&self, interval: u64) -> usize {
        let in_burst = self.burst_intervals > 0
            && interval >= self.burst_start_interval
            && interval < self.burst_start_interval + self.burst_intervals;
        if in_burst {
            self.burst_blocks_per_interval
        } else {
            self.base_blocks_per_interval
        }
    }

    /// Generate the trace: every interval issues its rate's worth of
    /// distinct blocks at the interval start, each independently a write
    /// with probability `write_fraction`.
    pub fn generate(&self) -> Trace {
        assert!(self.base_blocks_per_interval > 0 && self.block_pool > 0);
        assert!(
            (0.0..=1.0).contains(&self.write_fraction),
            "write_fraction {} outside 0.0..=1.0",
            self.write_fraction
        );
        let peak = if self.burst_intervals > 0 {
            self.base_blocks_per_interval
                .max(self.burst_blocks_per_interval)
        } else {
            self.base_blocks_per_interval
        };
        assert!(
            peak as u64 <= self.block_pool,
            "cannot draw more distinct blocks than the pool holds"
        );
        let mut rng = StdRng::seed_from_u64(self.seed);
        let mut pool: Vec<u64> = (0..self.block_pool).collect();
        let mut records = Vec::new();
        for interval in 0..self.total_intervals {
            let n = self.rate_at(interval);
            let arrival = interval * self.interval_ns;
            // Partial Fisher–Yates: the first n pool entries are the draw.
            for i in 0..n {
                let j = rng.gen_range(i..pool.len());
                pool.swap(i, j);
                let op = if rng.gen_bool(self.write_fraction) {
                    IoOp::Write
                } else {
                    IoOp::Read
                };
                records.push(TraceRecord {
                    arrival_ns: arrival,
                    device: 0,
                    lbn: pool[i],
                    size_bytes: BLOCK_SIZE_BYTES,
                    op,
                });
            }
        }
        Trace::new(
            format!(
                "flash-crowd-{}x{}@{}+{}w{:.0}%",
                self.base_blocks_per_interval,
                self.burst_blocks_per_interval,
                self.burst_start_interval,
                self.burst_intervals,
                self.write_fraction * 100.0
            ),
            records,
            1,
            self.interval_ns,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fqos_flashsim::time::BASE_INTERVAL_NS;

    #[test]
    fn burst_episode_has_the_crowd_rate() {
        let cfg = BurstConfig::flash_crowd(3, 12, 5, 4, 20, BASE_INTERVAL_NS);
        let t = cfg.generate();
        let sizes: Vec<usize> = t.intervals().map(<[TraceRecord]>::len).collect();
        assert_eq!(sizes.len(), 20);
        for (i, &s) in sizes.iter().enumerate() {
            let want = if (5..9).contains(&i) { 12 } else { 3 };
            assert_eq!(s, want, "interval {i}");
        }
        assert_eq!(t.len(), 16 * 3 + 4 * 12);
    }

    #[test]
    fn write_fraction_is_respected() {
        let cfg = BurstConfig::flash_crowd(10, 20, 10, 10, 100, BASE_INTERVAL_NS)
            .with_write_fraction(0.4);
        let t = cfg.generate();
        let writes = t.records.iter().filter(|r| r.op == IoOp::Write).count();
        let frac = writes as f64 / t.len() as f64;
        assert!((frac - 0.4).abs() < 0.05, "write fraction {frac}");
    }

    #[test]
    fn blocks_are_distinct_within_each_interval() {
        let cfg = BurstConfig::flash_crowd(8, 30, 2, 3, 10, BASE_INTERVAL_NS);
        let t = cfg.generate();
        for iv in t.intervals() {
            let mut lbns: Vec<u64> = iv.iter().map(|r| r.lbn).collect();
            lbns.sort_unstable();
            lbns.dedup();
            assert_eq!(lbns.len(), iv.len());
        }
    }

    #[test]
    fn deterministic_per_seed() {
        let cfg =
            BurstConfig::flash_crowd(5, 15, 3, 2, 12, BASE_INTERVAL_NS).with_write_fraction(0.3);
        assert_eq!(cfg.generate().records, cfg.generate().records);
        let mut other = cfg;
        other.seed = 1;
        assert_ne!(other.generate().records, cfg.generate().records);
    }

    #[test]
    fn no_burst_degenerates_to_constant_rate() {
        let cfg = BurstConfig::flash_crowd(4, 99, 0, 0, 8, BASE_INTERVAL_NS);
        let t = cfg.generate();
        assert_eq!(t.len(), 32);
        assert!(t.intervals().all(|iv| iv.len() == 4));
    }

    #[test]
    #[should_panic(expected = "distinct blocks")]
    fn crowd_higher_than_the_pool_is_refused() {
        BurstConfig::flash_crowd(5, 40, 0, 1, 2, BASE_INTERVAL_NS).generate();
    }
}
