//! Property-based tests for trace handling and generation.

use fqos_flashsim::IoOp;
use fqos_traces::models::exchange::{exchange, ExchangeConfig};
use fqos_traces::models::tpce::{tpce, TpceConfig};
use fqos_traces::{ascii, SyntheticConfig, Trace, TraceRecord};
use proptest::prelude::*;

fn record_strategy() -> impl Strategy<Value = TraceRecord> {
    (
        0u64..10_000_000,
        0usize..9,
        0u64..100_000,
        1u32..5,
        any::<bool>(),
    )
        .prop_map(|(t, dev, lbn, blocks, read)| TraceRecord {
            arrival_ns: t,
            device: dev,
            lbn,
            size_bytes: blocks * 8192,
            op: if read { IoOp::Read } else { IoOp::Write },
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// ASCII round-trip preserves every record (modulo millisecond arrival
    /// rounding, which the 6-decimal format keeps exact for ns values).
    #[test]
    fn ascii_roundtrip(records in prop::collection::vec(record_strategy(), 0..50)) {
        let t = Trace::new("t", records, 9, 1_000_000);
        let text = ascii::emit(&t);
        let back = ascii::parse(&text, "t", 9, 1_000_000).unwrap();
        prop_assert_eq!(t.records.len(), back.records.len());
        for (a, b) in t.records.iter().zip(&back.records) {
            prop_assert_eq!(a.device, b.device);
            prop_assert_eq!(a.lbn, b.lbn);
            prop_assert_eq!(a.size_bytes, b.size_bytes);
            prop_assert_eq!(a.op, b.op);
            // 6-decimal ms keeps nanosecond precision exactly.
            prop_assert_eq!(a.arrival_ns, b.arrival_ns);
        }
    }

    /// Interval partitioning is a true partition: every record lands in
    /// exactly one interval slice, in order.
    #[test]
    fn intervals_partition_records(
        records in prop::collection::vec(record_strategy(), 1..80),
        interval_ns in 1u64..5_000_000,
    ) {
        let t = Trace::new("t", records, 9, interval_ns);
        let total: usize = t.intervals().map(<[fqos_traces::TraceRecord]>::len).sum();
        prop_assert_eq!(total, t.len());
        for (i, slice) in t.intervals().enumerate() {
            for r in slice {
                prop_assert_eq!(t.interval_of(r), i);
            }
        }
    }

    /// Synthetic generator invariants: exact request count, distinct blocks
    /// per interval, arrivals at interval starts.
    #[test]
    fn synthetic_generator_invariants(
        blocks in 1usize..30,
        total in 1usize..2000,
        seed in any::<u64>(),
    ) {
        let cfg = SyntheticConfig {
            blocks_per_interval: blocks,
            interval_ns: 133_000,
            total_requests: total,
            block_pool: 36,
            seed,
        };
        let t = cfg.generate();
        prop_assert_eq!(t.len(), total);
        for slice in t.intervals() {
            let mut lbns: Vec<u64> = slice.iter().map(|r| r.lbn).collect();
            let n = lbns.len();
            lbns.sort_unstable();
            lbns.dedup();
            prop_assert_eq!(lbns.len(), n, "duplicate block within an interval");
            prop_assert!(n <= blocks);
        }
        for r in &t.records {
            prop_assert_eq!(r.arrival_ns % 133_000, 0);
        }
    }

    /// Workload models are deterministic per seed and honor their device
    /// counts.
    #[test]
    fn models_are_deterministic(seed in any::<u64>()) {
        let cfg = ExchangeConfig {
            intervals: 3,
            interval_ns: 20_000_000,
            peak_rate_per_s: 3_000.0,
            seed,
        };
        let a = exchange(cfg).generate();
        let b = exchange(cfg).generate();
        prop_assert!(a.records.iter().all(|r| r.device < 9));
        prop_assert_eq!(a.records, b.records);
    }
}

#[test]
fn tpce_volume_skew_creates_hotspots() {
    let t = tpce(TpceConfig {
        part_ns: 60_000_000,
        ..Default::default()
    })
    .generate();
    let mut per_device = vec![0usize; t.num_devices];
    for r in &t.records {
        per_device[r.device] += 1;
    }
    let max = *per_device.iter().max().unwrap();
    let min = *per_device.iter().min().unwrap();
    assert!(
        max > 2 * min.max(1),
        "device loads too uniform: {per_device:?}"
    );
}

#[test]
fn exchange_is_diurnal() {
    let t = exchange(ExchangeConfig::default()).generate();
    let sizes: Vec<usize> = t
        .intervals()
        .map(<[fqos_traces::TraceRecord]>::len)
        .collect();
    assert_eq!(sizes.len(), 96);
    // First interval (afternoon) busier than the overnight trough region.
    let peak_zone: usize = sizes[..8].iter().sum();
    let trough_zone: usize = sizes[38..46].iter().sum();
    assert!(
        peak_zone > 2 * trough_zone,
        "peak {peak_zone} vs trough {trough_zone}"
    );
}
