//! Offline stand-in for the `criterion` crate (0.5 API subset).
//!
//! Implements the group/bencher surface this workspace's benches use —
//! `benchmark_group`, `sample_size`, `throughput`, `bench_function`,
//! `bench_with_input`, `Bencher::iter`, `BenchmarkId`, and the
//! `criterion_group!`/`criterion_main!` macros — with a plain wall-clock
//! measurement loop (warmup estimate, then `sample_size` timed samples,
//! median reported). No statistical regression analysis, plots, or saved
//! baselines; output is one line per benchmark on stdout.

use std::fmt::{self, Display};
use std::time::{Duration, Instant};

/// Per-iteration work units, used to derive a throughput line.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// A benchmark label of the form `function/parameter`.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// Label `function/parameter`.
    pub fn new<P: Display>(function: &str, parameter: P) -> Self {
        BenchmarkId {
            id: format!("{function}/{parameter}"),
        }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.id)
    }
}

/// Timing loop handed to benchmark closures.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Run `f` for the pre-computed iteration count, timing the whole batch.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        let start = Instant::now();
        for _ in 0..self.iters {
            std::hint::black_box(f());
        }
        self.elapsed = start.elapsed();
    }
}

/// Target wall-clock time for one measured sample. Small enough that a
/// full `cargo bench` stays interactive on one core, large enough to
/// dominate timer noise for sub-microsecond bodies.
const SAMPLE_BUDGET: Duration = Duration::from_millis(40);

/// Collection of related benchmarks sharing a name prefix and settings.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Number of timed samples per benchmark (upstream semantics; clamped
    /// to at least 3 so the median is meaningful).
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(3);
        self
    }

    /// Declare per-iteration work so a throughput figure is printed.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Run a benchmark with no explicit input.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl Display,
        mut f: F,
    ) -> &mut Self {
        self.run(&id.to_string(), &mut f);
        self
    }

    /// Run a benchmark with a borrowed input value.
    #[allow(clippy::needless_pass_by_value)] // signature mirrors upstream criterion
    pub fn bench_with_input<I: ?Sized, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        self.run(&id.to_string(), &mut |b: &mut Bencher| f(b, input));
        self
    }

    fn run(&mut self, id: &str, f: &mut dyn FnMut(&mut Bencher)) {
        let full = format!("{}/{}", self.name, id);
        // Warmup sample: one iteration, to size the measured batches.
        let mut b = Bencher {
            iters: 1,
            elapsed: Duration::ZERO,
        };
        f(&mut b);
        let per_iter = b.elapsed.max(Duration::from_nanos(1));
        let iters = (SAMPLE_BUDGET.as_nanos() / per_iter.as_nanos()).clamp(1, 10_000_000) as u64;

        let mut samples: Vec<f64> = Vec::with_capacity(self.sample_size);
        for _ in 0..self.sample_size {
            let mut b = Bencher {
                iters,
                elapsed: Duration::ZERO,
            };
            f(&mut b);
            samples.push(b.elapsed.as_nanos() as f64 / iters as f64);
        }
        samples.sort_by(f64::total_cmp);
        let median = samples[samples.len() / 2];
        let best = samples[0];

        let mut line = format!(
            "{full:<48} time: [{} .. {}] (median of {} × {iters} iters)",
            fmt_ns(best),
            fmt_ns(median),
            self.sample_size
        );
        if let Some(t) = self.throughput {
            let (units, label) = match t {
                Throughput::Elements(n) => (n as f64, "elem/s"),
                Throughput::Bytes(n) => (n as f64, "B/s"),
            };
            let rate = units / (median * 1e-9);
            line.push_str(&format!("  thrpt: {rate:.3e} {label}"));
        }
        println!("{line}");
        self.criterion.results.push(BenchResult {
            id: full,
            median_ns: median,
        });
    }

    /// End the group (upstream writes reports here; we only need the
    /// explicit call for API compatibility).
    pub fn finish(&mut self) {}
}

/// One measured benchmark, retained on the parent [`Criterion`].
#[derive(Debug, Clone)]
pub struct BenchResult {
    /// Full `group/benchmark` label.
    pub id: String,
    /// Median nanoseconds per iteration.
    pub median_ns: f64,
}

/// Benchmark harness entry point.
#[derive(Default)]
pub struct Criterion {
    /// Results accumulated across groups, in run order.
    pub results: Vec<BenchResult>,
}

impl Criterion {
    /// Open a named group of benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            sample_size: 10,
            throughput: None,
        }
    }

    /// Run a stand-alone benchmark (implicit group named after itself).
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, f: F) -> &mut Self {
        let mut group = self.benchmark_group(id);
        let mut f = f;
        group.run(id, &mut f);
        self
    }
}

/// Re-export so bench code can use `criterion::black_box` (the workspace
/// currently imports `std::hint::black_box` directly, but upstream exposes
/// both spellings).
pub use std::hint::black_box;

/// Declare a benchmark runner function invoking each target.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declare `main` for a `harness = false` bench binary.
#[macro_export]
macro_rules! criterion_main {
    ($($group:ident),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

/// Format nanoseconds with an adaptive unit, criterion-style.
fn fmt_ns(ns: f64) -> String {
    if ns < 1e3 {
        format!("{ns:.1} ns")
    } else if ns < 1e6 {
        format!("{:.2} µs", ns / 1e3)
    } else if ns < 1e9 {
        format!("{:.2} ms", ns / 1e6)
    } else {
        format!("{:.3} s", ns / 1e9)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn group_runs_and_records_results() {
        let mut c = Criterion::default();
        {
            let mut g = c.benchmark_group("probe");
            g.sample_size(3);
            g.throughput(Throughput::Elements(4));
            g.bench_function("add", |b| b.iter(|| black_box(2u64) + black_box(3u64)));
            g.bench_with_input(BenchmarkId::new("sum", 8usize), &8usize, |b, &n| {
                b.iter(|| (0..n).sum::<usize>());
            });
            g.finish();
        }
        assert_eq!(c.results.len(), 2);
        assert_eq!(c.results[0].id, "probe/add");
        assert_eq!(c.results[1].id, "probe/sum/8");
        assert!(c.results.iter().all(|r| r.median_ns > 0.0));
    }

    #[test]
    fn benchmark_id_formats_like_upstream() {
        assert_eq!(BenchmarkId::new("dinic", 32).to_string(), "dinic/32");
        assert_eq!(
            BenchmarkId::new("apriori", "d20x40").to_string(),
            "apriori/d20x40"
        );
    }
}
