//! Offline stand-in for the `rayon` crate (the iterator subset this
//! workspace uses).
//!
//! `into_par_iter().map(..).collect()` runs **sequentially** here: the CI
//! container exposes a single core, where sequential execution is the
//! optimal schedule anyway. Callers already structure their work as
//! order-independent items with per-item RNG streams, so swapping in real
//! parallelism later changes nothing observable.

/// Conversion into a "parallel" iterator.
pub trait IntoParallelIterator {
    /// Item type.
    type Item;
    /// Iterator type produced.
    type Iter: ParallelIterator<Item = Self::Item>;

    /// Begin iteration.
    fn into_par_iter(self) -> Self::Iter;
}

/// Minimal parallel-iterator interface: `map` and `collect`.
pub trait ParallelIterator: Sized {
    /// Item type.
    type Item;

    /// Underlying sequential iterator (drives `collect`).
    fn into_seq(self) -> impl Iterator<Item = Self::Item>;

    /// Transform each item.
    fn map<O, F: Fn(Self::Item) -> O + Sync + Send>(self, f: F) -> Map<Self, F> {
        Map { inner: self, f }
    }

    /// Gather results in order.
    fn collect<C: FromIterator<Self::Item>>(self) -> C {
        self.into_seq().collect()
    }
}

/// Wrapper marking a sequential iterator as the execution backend.
pub struct Seq<I> {
    inner: I,
}

impl<I: Iterator> ParallelIterator for Seq<I> {
    type Item = I::Item;

    fn into_seq(self) -> impl Iterator<Item = I::Item> {
        self.inner
    }
}

/// `map` adapter.
pub struct Map<P, F> {
    inner: P,
    f: F,
}

impl<P: ParallelIterator, O, F: Fn(P::Item) -> O + Sync + Send> ParallelIterator for Map<P, F> {
    type Item = O;

    fn into_seq(self) -> impl Iterator<Item = O> {
        let f = self.f;
        self.inner.into_seq().map(f)
    }
}

impl<T: IntoIterator> IntoParallelIterator for T {
    type Item = T::Item;
    type Iter = Seq<T::IntoIter>;

    fn into_par_iter(self) -> Seq<T::IntoIter> {
        Seq {
            inner: self.into_iter(),
        }
    }
}

/// Common imports, mirroring `rayon::prelude`.
pub mod prelude {
    pub use crate::{IntoParallelIterator, ParallelIterator};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn range_map_collect_round_trip() {
        let out: Vec<usize> = (1..=5usize).into_par_iter().map(|x| x * x).collect();
        assert_eq!(out, vec![1, 4, 9, 16, 25]);
    }

    #[test]
    fn vec_and_chained_maps() {
        let out: Vec<String> = vec![1, 2, 3]
            .into_par_iter()
            .map(|x| x + 1)
            .map(|x| format!("v{x}"))
            .collect();
        assert_eq!(out, vec!["v2", "v3", "v4"]);
    }
}
